//! Offline shim for `criterion`.
//!
//! Provides the API subset the workspace's benches use (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `iter`, `iter_batched`, throughput
//! annotations) backed by a simple wall-clock harness: each benchmark warms
//! up, then runs timed iterations inside a fixed time budget and reports the
//! mean iteration time (and throughput when declared). No statistics beyond
//! the mean are computed — the numbers are indicative, not criterion-grade.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Logical elements handled per iteration.
    Elements(u64),
}

/// How much setup output `iter_batched` keeps in flight (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A `group/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Drives timed iterations of one benchmark.
pub struct Bencher<'a> {
    samples: u64,
    budget: Duration,
    result: &'a mut Option<MeasuredTime>,
}

#[derive(Debug, Clone, Copy)]
struct MeasuredTime {
    mean_nanos: f64,
}

impl Bencher<'_> {
    /// Times `routine` back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup.
        black_box(routine());
        let mut iters = 0u64;
        let start = Instant::now();
        while iters < self.samples || start.elapsed() < self.budget {
            black_box(routine());
            iters += 1;
            if iters >= self.samples && start.elapsed() >= self.budget {
                break;
            }
            if iters >= 1_000_000 {
                break;
            }
        }
        *self.result = Some(MeasuredTime {
            mean_nanos: start.elapsed().as_nanos() as f64 / iters as f64,
        });
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        while iters < self.samples || spent < self.budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
            if iters >= self.samples && spent >= self.budget {
                break;
            }
            if iters >= 1_000_000 {
                break;
            }
        }
        *self.result = Some(MeasuredTime {
            mean_nanos: spent.as_nanos() as f64 / iters as f64,
        });
    }
}

fn human_nanos(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.3} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.3} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.3} µs", nanos / 1e3)
    } else {
        format!("{nanos:.1} ns")
    }
}

/// True when the bench binary was invoked with `--test` (criterion's smoke
/// mode: execute every benchmark once, skip the timing budget). CI uses it
/// to exercise benches on every push without paying for measurement.
fn test_mode() -> bool {
    use std::sync::OnceLock;
    static TEST_MODE: OnceLock<bool> = OnceLock::new();
    *TEST_MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

fn run_one(
    full_name: &str,
    samples: u64,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher<'_>),
) {
    let (samples, budget) = if test_mode() {
        (1, Duration::ZERO)
    } else {
        (samples, Duration::from_millis(100))
    };
    let mut result = None;
    let mut bencher = Bencher {
        samples: samples.max(1),
        budget,
        result: &mut result,
    };
    f(&mut bencher);
    match result {
        Some(measured) => {
            let mut line = format!(
                "{full_name:<56} time: {:>12}",
                human_nanos(measured.mean_nanos)
            );
            if let Some(throughput) = throughput {
                let per_second = match throughput {
                    Throughput::Bytes(n) => {
                        format!(
                            "{:.1} MiB/s",
                            n as f64 / (measured.mean_nanos / 1e9) / (1 << 20) as f64
                        )
                    }
                    Throughput::Elements(n) => {
                        format!("{:.0} elem/s", n as f64 / (measured.mean_nanos / 1e9))
                    }
                };
                line.push_str(&format!("  thrpt: {per_second}"));
            }
            println!("{line}");
        }
        None => println!("{full_name:<56} (no measurement)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Declares per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: IntoBenchmarkId>(
        &mut self,
        id: I,
        f: impl FnOnce(&mut Bencher<'_>),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized>(
        &mut self,
        id: I,
        input: &T,
        f: impl FnOnce(&mut Bencher<'_>, &T),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the default minimum number of timed iterations (builder form,
    /// used by the `criterion_group! { config = ... }` syntax).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n as u64;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher<'_>),
    ) -> &mut Self {
        run_one(&id.into_id(), self.default_sample_size, None, f);
        self
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
