//! Offline shim for `proptest`.
//!
//! Implements the subset the workspace's property tests use: `Strategy` with
//! `prop_flat_map`, integer-range and tuple strategies, `any`,
//! `collection::vec`, and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros. Each property runs a fixed number of deterministic random cases
//! (no shrinking): a failing case panics with the case number so it can be
//! replayed — case streams are a pure function of the iteration index.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Number of random cases each `proptest!` property runs.
pub const CASES: u64 = 64;

/// Creates the deterministic RNG for one case of one property.
pub fn case_rng(case: u64) -> TestRng {
    StdRng::seed_from_u64(0xC0FF_EE00 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of random values for one property input.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<T, F> {
    inner: T,
    f: F,
}

impl<T, S, F> Strategy for FlatMap<T, F>
where
    T: Strategy,
    S: Strategy,
    F: Fn(T::Value) -> S,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let seed_value = self.inner.sample(rng);
        (self.f)(seed_value).sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(0..=u64::MAX)
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(0..=u8::MAX)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Rng, Strategy, TestRng};

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_inclusive: n,
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import surface the property tests use.
pub mod prelude {
    pub use crate::{any, Arbitrary, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

/// Declares property tests: each `fn name(input in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            for case in 0..$crate::CASES {
                let mut proptest_rng = $crate::case_rng(case);
                $(let $pat = $crate::Strategy::sample(&($strat), &mut proptest_rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property '{}' failed at case {}: {}",
                        stringify!($name),
                        case,
                        err
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #[test]
        fn vec_lengths_respect_bounds(values in vec(0u64..10, 2..5)) {
            prop_assert!(values.len() >= 2 && values.len() < 5, "len {}", values.len());
            prop_assert!(values.iter().all(|&v| v < 10));
        }

        #[test]
        fn flat_map_pins_shared_dimension((a, b) in (1usize..8).prop_flat_map(|n| {
            (vec(any::<u8>(), n..=n), vec(any::<u8>(), n..=n))
        })) {
            prop_assert_eq!(a.len(), b.len());
        }
    }
}
