//! Offline shim for `serde_derive`: the derive macros accept the same
//! surface syntax (including `#[serde(...)]` attributes) but expand to
//! nothing. The workspace derives `Serialize`/`Deserialize` for forward
//! compatibility; nothing in-tree performs actual serialization, so empty
//! expansions keep the seed sources unmodified without the real dependency.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
