//! Offline shim for `serde`.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! real `serde` cannot be vendored. The workspace only *derives*
//! `Serialize`/`Deserialize` (for downstream forward compatibility) and never
//! invokes an actual serializer, so marker traits plus no-op derive macros
//! are sufficient to compile the seed sources unchanged.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
