//! Offline shim for `parking_lot`: the non-poisoning lock API implemented on
//! top of `std::sync`. Poisoned locks only occur after a panic while holding
//! the guard, and the workspace treats any lock-holding panic as fatal, so
//! unwrapping poison errors preserves parking_lot's semantics.

use std::sync::{self, LockResult};

/// `parking_lot::RwLock` stand-in.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

fn unpoison<G>(result: LockResult<G>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// `parking_lot::Mutex` stand-in.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(1u32);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
