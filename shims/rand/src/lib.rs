//! Offline shim for `rand` 0.8.
//!
//! Implements exactly the API subset the workspace uses — `Rng::gen_range`
//! over half-open ranges, `Rng::gen_bool`, `rngs::StdRng`, and
//! `SeedableRng::seed_from_u64` — on top of an xoshiro256++ generator seeded
//! through SplitMix64 (the same seeding scheme the real crate documents).
//! Streams differ from the real `rand`, but every consumer in this workspace
//! only relies on determinism for a fixed seed, which this shim guarantees.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a range (mirrors
/// `rand::distributions::uniform::SampleUniform` closely enough for type
/// inference through `gen_range` to behave like the real crate).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Draws from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as i128 - low as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (low as i128 + offset) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "cannot sample from empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "cannot sample from empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let value = (low as f64 + unit * (high as f64 - low as f64)) as $t;
                // Guard against rounding up to the excluded endpoint.
                if value >= high { low } else { value }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "cannot sample from empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (low as f64 + unit * (high as f64 - low as f64)) as $t
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// A range that values can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let s = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
