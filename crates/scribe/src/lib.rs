//! # recd-scribe
//!
//! A sharded, buffered message-log simulation standing in for Scribe, the
//! distributed message-passing system the paper's inference tier logs into
//! (paper §2.1, §4.1).
//!
//! The piece of Scribe that matters to RecD is small: raw logs are routed to
//! a shard by a hash of some key, each shard buffers and block-compresses its
//! messages, and downstream ETL jobs read the compressed buffers back. RecD's
//! first optimization (O1, *log sharding*) changes the shard key from the
//! default per-message hash to the session id, which co-locates a session's
//! (highly redundant) logs in one shard buffer and therefore raises the
//! black-box compression ratio — reducing both Scribe storage nodes and the
//! network bytes ETL must ingest.
//!
//! [`ScribeCluster`] implements exactly that: pluggable [`ShardKeyPolicy`],
//! per-shard buffering, real block compression via `recd-codec`, and byte
//! accounting in [`ScribeReport`].
//!
//! For the *continuous* pipeline, [`LogTail`] turns a log stream into a
//! replayable arrival process (seeded jitter and stragglers) that the
//! streaming ETL stage tails instead of reading a finished batch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod wire;

pub use cluster::{ScribeCluster, ScribeConfig, ScribeReport, ShardKeyPolicy, ShardStats};
pub use wire::{decode_record, encode_record, LogTail, TailConfig, TailEvent, WireError};
