//! The sharded message cluster: routing, buffering, compression, and byte
//! accounting.

use crate::wire::{decode_all, encode_record, WireError};
use recd_codec::{hash_ids, CompressionStats, Compressor};
use recd_data::LogRecord;
use serde::{Deserialize, Serialize};

/// How messages are routed to shards (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ShardKeyPolicy {
    /// Baseline: hash the message (request id), spreading a session's logs
    /// randomly across shards.
    #[default]
    RandomRequest,
    /// RecD O1: hash the session id so all of a session's logs land in the
    /// same shard buffer.
    SessionId,
}

/// Configuration for a [`ScribeCluster`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScribeConfig {
    /// Number of physical shards (storage nodes).
    pub shards: usize,
    /// How messages are routed to shards.
    pub policy: ShardKeyPolicy,
    /// Block compressor applied to each flushed buffer.
    pub compressor: Compressor,
    /// Buffer size (bytes of encoded records) at which a shard flushes and
    /// compresses a block.
    pub flush_bytes: usize,
}

impl Default for ScribeConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            policy: ShardKeyPolicy::RandomRequest,
            compressor: Compressor::Lz,
            flush_bytes: 256 * 1024,
        }
    }
}

impl ScribeConfig {
    /// Convenience constructor for a cluster using the given shard policy.
    pub fn with_policy(policy: ShardKeyPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }
}

/// Per-shard accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ShardStats {
    /// Records routed to this shard.
    pub records: usize,
    /// Bytes received by this shard (encoded record bytes).
    pub rx_bytes: usize,
    /// Bytes stored after block compression.
    pub stored_bytes: usize,
    /// Number of compressed blocks.
    pub blocks: usize,
}

/// One shard: an in-memory buffer plus its flushed, compressed blocks.
#[derive(Debug, Clone, Default)]
struct Shard {
    buffer: Vec<u8>,
    blocks: Vec<Vec<u8>>,
    stats: ShardStats,
}

/// Aggregate report of a cluster's byte accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScribeReport {
    /// Per-shard statistics.
    pub shards: Vec<ShardStats>,
    /// Total encoded bytes received across all shards (network RX).
    pub total_rx_bytes: usize,
    /// Total bytes stored after compression (and therefore the network TX to
    /// downstream ETL readers).
    pub total_stored_bytes: usize,
    /// Overall compression ratio (RX / stored).
    pub compression_ratio: f64,
}

/// The sharded, buffered, compressing message cluster.
#[derive(Debug, Clone)]
pub struct ScribeCluster {
    config: ScribeConfig,
    shards: Vec<Shard>,
}

impl ScribeCluster {
    /// Creates a cluster with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero.
    pub fn new(config: ScribeConfig) -> Self {
        assert!(
            config.shards > 0,
            "a scribe cluster needs at least one shard"
        );
        Self {
            shards: vec![Shard::default(); config.shards],
            config,
        }
    }

    /// Borrows the configuration.
    pub fn config(&self) -> &ScribeConfig {
        &self.config
    }

    fn shard_for(&self, record: &LogRecord) -> usize {
        let key = match self.config.policy {
            ShardKeyPolicy::RandomRequest => record.request_id().raw(),
            ShardKeyPolicy::SessionId => record.session_id().raw(),
        };
        (hash_ids(&[key]) % self.shards.len() as u64) as usize
    }

    /// Ingests one record: encodes it, routes it to its shard, and flushes
    /// the shard's buffer if it crossed the flush threshold.
    pub fn ingest(&mut self, record: &LogRecord) {
        let shard_idx = self.shard_for(record);
        let flush_bytes = self.config.flush_bytes;
        let compressor = self.config.compressor;
        let shard = &mut self.shards[shard_idx];
        let before = shard.buffer.len();
        encode_record(record, &mut shard.buffer);
        shard.stats.records += 1;
        shard.stats.rx_bytes += shard.buffer.len() - before;
        if shard.buffer.len() >= flush_bytes {
            Self::flush_shard(shard, compressor);
        }
    }

    /// Ingests a batch of records.
    pub fn ingest_all<'a, I: IntoIterator<Item = &'a LogRecord>>(&mut self, records: I) {
        for record in records {
            self.ingest(record);
        }
    }

    fn flush_shard(shard: &mut Shard, compressor: Compressor) {
        if shard.buffer.is_empty() {
            return;
        }
        let compressed = compressor.compress(&shard.buffer);
        shard.stats.stored_bytes += compressed.len();
        shard.stats.blocks += 1;
        shard.blocks.push(compressed);
        shard.buffer.clear();
    }

    /// Flushes every shard's remaining buffer.
    pub fn flush(&mut self) {
        let compressor = self.config.compressor;
        for shard in &mut self.shards {
            Self::flush_shard(shard, compressor);
        }
    }

    /// Produces the byte-accounting report. Call [`ScribeCluster::flush`]
    /// first to account for any buffered tail.
    pub fn report(&self) -> ScribeReport {
        let shards: Vec<ShardStats> = self.shards.iter().map(|s| s.stats).collect();
        let total_rx_bytes = shards.iter().map(|s| s.rx_bytes).sum();
        let total_stored_bytes = shards.iter().map(|s| s.stored_bytes).sum();
        let ratio = CompressionStats::new(total_rx_bytes, total_stored_bytes).ratio();
        ScribeReport {
            shards,
            total_rx_bytes,
            total_stored_bytes,
            compression_ratio: ratio,
        }
    }

    /// Drains every stored block back into decoded records, in shard order —
    /// what a downstream ETL job reads. Buffered-but-unflushed records are
    /// flushed first.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if a stored block fails to decompress or
    /// decode (cannot happen for blocks produced by this cluster).
    pub fn drain(&mut self) -> Result<Vec<LogRecord>, WireError> {
        self.flush();
        let compressor = self.config.compressor;
        let mut records = Vec::new();
        for shard in &mut self.shards {
            for block in shard.blocks.drain(..) {
                let raw = compressor.decompress(&block).map_err(WireError::from)?;
                records.extend(decode_all(&raw)?);
            }
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};

    fn logs() -> Vec<LogRecord> {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        gen.generate_logs().0
    }

    #[test]
    fn routing_is_deterministic_and_covers_shards() {
        let records = logs();
        let mut cluster = ScribeCluster::new(ScribeConfig::default());
        cluster.ingest_all(&records);
        cluster.flush();
        let report = cluster.report();
        assert_eq!(
            report.shards.iter().map(|s| s.records).sum::<usize>(),
            records.len()
        );
        let used_shards = report.shards.iter().filter(|s| s.records > 0).count();
        assert!(used_shards > 1, "records should spread across shards");
        assert!(report.compression_ratio >= 1.0);
    }

    #[test]
    fn session_sharding_keeps_a_session_on_one_shard() {
        let records = logs();
        let mut cluster = ScribeCluster::new(ScribeConfig::with_policy(ShardKeyPolicy::SessionId));
        // Route without flushing, then verify by re-deriving the shard of
        // every record of one session.
        let shards: Vec<usize> = records.iter().map(|r| cluster.shard_for(r)).collect();
        let target_session = records[0].session_id();
        let session_shards: std::collections::HashSet<usize> = records
            .iter()
            .zip(&shards)
            .filter(|(r, _)| r.session_id() == target_session)
            .map(|(_, &s)| s)
            .collect();
        assert_eq!(session_shards.len(), 1);
        cluster.ingest_all(&records);
        assert_eq!(cluster.drain().unwrap().len(), records.len());
    }

    #[test]
    fn session_sharding_improves_compression_ratio() {
        // The O1 claim: sharding by session id raises the black-box
        // compression ratio relative to random sharding (paper: 1.50x->2.25x).
        let records = logs();
        let mut random = ScribeCluster::new(ScribeConfig {
            flush_bytes: 64 * 1024,
            ..ScribeConfig::with_policy(ShardKeyPolicy::RandomRequest)
        });
        let mut session = ScribeCluster::new(ScribeConfig {
            flush_bytes: 64 * 1024,
            ..ScribeConfig::with_policy(ShardKeyPolicy::SessionId)
        });
        random.ingest_all(&records);
        session.ingest_all(&records);
        random.flush();
        session.flush();
        let r = random.report();
        let s = session.report();
        assert_eq!(r.total_rx_bytes, s.total_rx_bytes);
        assert!(
            s.compression_ratio > r.compression_ratio,
            "session sharding should compress better: {:.2} vs {:.2}",
            s.compression_ratio,
            r.compression_ratio
        );
    }

    #[test]
    fn drain_round_trips_every_record() {
        let records = logs();
        let mut cluster = ScribeCluster::new(ScribeConfig {
            flush_bytes: 16 * 1024,
            ..ScribeConfig::default()
        });
        cluster.ingest_all(&records);
        let mut drained = cluster.drain().unwrap();
        assert_eq!(drained.len(), records.len());
        // Order differs (grouped by shard); compare as multisets keyed by
        // request id + kind.
        let key = |r: &LogRecord| (r.request_id(), matches!(r, LogRecord::Feature(_)));
        let mut expected: Vec<_> = records.iter().map(key).collect();
        let mut actual: Vec<_> = drained.iter().map(key).collect();
        expected.sort();
        actual.sort();
        assert_eq!(expected, actual);
        // Draining twice yields nothing new.
        drained = cluster.drain().unwrap();
        assert!(drained.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        ScribeCluster::new(ScribeConfig {
            shards: 0,
            ..ScribeConfig::default()
        });
    }
}
