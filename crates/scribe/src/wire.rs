//! Binary wire encoding for raw log records, so shard buffers hold realistic
//! byte streams for the block compressor to work on.

use recd_codec::varint;
use recd_data::{EventLog, FeatureLog, LogRecord, RequestId, SessionId, Timestamp};
use std::error::Error;
use std::fmt;

/// Errors produced when decoding a malformed wire record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The record ended before a complete field could be decoded.
    Truncated,
    /// The record tag byte was not a known record kind.
    UnknownTag(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire record is truncated"),
            WireError::UnknownTag(tag) => write!(f, "unknown wire record tag {tag}"),
        }
    }
}

impl Error for WireError {}

impl From<recd_codec::CodecError> for WireError {
    fn from(_: recd_codec::CodecError) -> Self {
        WireError::Truncated
    }
}

const TAG_FEATURE: u8 = 1;
const TAG_EVENT: u8 = 2;

/// Appends the wire encoding of a record to `out`.
pub fn encode_record(record: &LogRecord, out: &mut Vec<u8>) {
    match record {
        LogRecord::Feature(f) => {
            out.push(TAG_FEATURE);
            varint::encode_u64(f.request_id.raw(), out);
            varint::encode_u64(f.session_id.raw(), out);
            varint::encode_u64(f.timestamp.as_millis(), out);
            varint::encode_u64(f.dense.len() as u64, out);
            for &v in &f.dense {
                out.extend_from_slice(&v.to_le_bytes());
            }
            varint::encode_u64(f.sparse.len() as u64, out);
            for list in &f.sparse {
                varint::encode_u64(list.len() as u64, out);
                for &id in list {
                    out.extend_from_slice(&id.to_le_bytes());
                }
            }
        }
        LogRecord::Event(e) => {
            out.push(TAG_EVENT);
            varint::encode_u64(e.request_id.raw(), out);
            varint::encode_u64(e.session_id.raw(), out);
            varint::encode_u64(e.timestamp.as_millis(), out);
            out.extend_from_slice(&e.label.to_le_bytes());
        }
    }
}

fn take<'a>(input: &'a [u8], cursor: &mut usize, n: usize) -> Result<&'a [u8], WireError> {
    if *cursor + n > input.len() {
        return Err(WireError::Truncated);
    }
    let slice = &input[*cursor..*cursor + n];
    *cursor += n;
    Ok(slice)
}

fn take_varint(input: &[u8], cursor: &mut usize) -> Result<u64, WireError> {
    let (value, used) = varint::decode_u64(&input[*cursor..])?;
    *cursor += used;
    Ok(value)
}

/// Decodes one record from the front of `input`, returning the record and the
/// number of bytes consumed.
///
/// # Errors
///
/// Returns a [`WireError`] if the record is truncated or has an unknown tag.
pub fn decode_record(input: &[u8]) -> Result<(LogRecord, usize), WireError> {
    let mut cursor = 0usize;
    let tag = *take(input, &mut cursor, 1)?.first().expect("one byte");
    match tag {
        TAG_FEATURE => {
            let request_id = RequestId::new(take_varint(input, &mut cursor)?);
            let session_id = SessionId::new(take_varint(input, &mut cursor)?);
            let timestamp = Timestamp::from_millis(take_varint(input, &mut cursor)?);
            let dense_len = take_varint(input, &mut cursor)? as usize;
            let mut dense = Vec::with_capacity(dense_len);
            for _ in 0..dense_len {
                let bytes = take(input, &mut cursor, 4)?;
                dense.push(f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]));
            }
            let sparse_len = take_varint(input, &mut cursor)? as usize;
            let mut sparse = Vec::with_capacity(sparse_len);
            for _ in 0..sparse_len {
                let list_len = take_varint(input, &mut cursor)? as usize;
                let mut list = Vec::with_capacity(list_len);
                for _ in 0..list_len {
                    let bytes = take(input, &mut cursor, 8)?;
                    list.push(u64::from_le_bytes([
                        bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6],
                        bytes[7],
                    ]));
                }
                sparse.push(list);
            }
            Ok((
                LogRecord::Feature(FeatureLog {
                    request_id,
                    session_id,
                    timestamp,
                    dense,
                    sparse,
                }),
                cursor,
            ))
        }
        TAG_EVENT => {
            let request_id = RequestId::new(take_varint(input, &mut cursor)?);
            let session_id = SessionId::new(take_varint(input, &mut cursor)?);
            let timestamp = Timestamp::from_millis(take_varint(input, &mut cursor)?);
            let bytes = take(input, &mut cursor, 4)?;
            let label = f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
            Ok((
                LogRecord::Event(EventLog {
                    request_id,
                    session_id,
                    timestamp,
                    label,
                }),
                cursor,
            ))
        }
        other => Err(WireError::UnknownTag(other)),
    }
}

/// Decodes every record in a buffer.
///
/// # Errors
///
/// Returns a [`WireError`] if any record is malformed.
pub fn decode_all(input: &[u8]) -> Result<Vec<LogRecord>, WireError> {
    let mut records = Vec::new();
    let mut cursor = 0;
    while cursor < input.len() {
        let (record, used) = decode_record(&input[cursor..])?;
        records.push(record);
        cursor += used;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feature_record() -> LogRecord {
        LogRecord::Feature(FeatureLog {
            request_id: RequestId::new(11),
            session_id: SessionId::new(22),
            timestamp: Timestamp::from_millis(33),
            dense: vec![0.5, -1.5],
            sparse: vec![vec![1, 2, 3], vec![], vec![u64::MAX]],
        })
    }

    fn event_record() -> LogRecord {
        LogRecord::Event(EventLog {
            request_id: RequestId::new(44),
            session_id: SessionId::new(55),
            timestamp: Timestamp::from_millis(66),
            label: 1.0,
        })
    }

    #[test]
    fn round_trip_both_kinds() {
        for record in [feature_record(), event_record()] {
            let mut buf = Vec::new();
            encode_record(&record, &mut buf);
            let (decoded, used) = decode_record(&buf).unwrap();
            assert_eq!(decoded, record);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn decode_all_handles_concatenated_records() {
        let mut buf = Vec::new();
        encode_record(&feature_record(), &mut buf);
        encode_record(&event_record(), &mut buf);
        encode_record(&feature_record(), &mut buf);
        let records = decode_all(&buf).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[1], event_record());
    }

    #[test]
    fn truncation_and_bad_tags_are_errors() {
        let mut buf = Vec::new();
        encode_record(&feature_record(), &mut buf);
        for cut in 1..buf.len() {
            assert!(decode_record(&buf[..cut]).is_err() || cut == buf.len());
        }
        assert!(matches!(decode_record(&[]), Err(WireError::Truncated)));
        assert!(matches!(
            decode_record(&[99, 0, 0]),
            Err(WireError::UnknownTag(99))
        ));
    }
}
