//! Binary wire encoding for raw log records, so shard buffers hold realistic
//! byte streams for the block compressor to work on — plus [`LogTail`], the
//! replayable arrival simulation the continuous ETL stage tails.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recd_codec::varint;
use recd_data::{EventLog, FeatureLog, LogRecord, RequestId, SessionId, Timestamp};
use std::error::Error;
use std::fmt;

/// Errors produced when decoding a malformed wire record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The record ended before a complete field could be decoded.
    Truncated,
    /// The record tag byte was not a known record kind.
    UnknownTag(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire record is truncated"),
            WireError::UnknownTag(tag) => write!(f, "unknown wire record tag {tag}"),
        }
    }
}

impl Error for WireError {}

impl From<recd_codec::CodecError> for WireError {
    fn from(_: recd_codec::CodecError) -> Self {
        WireError::Truncated
    }
}

const TAG_FEATURE: u8 = 1;
const TAG_EVENT: u8 = 2;

/// Appends the wire encoding of a record to `out`.
pub fn encode_record(record: &LogRecord, out: &mut Vec<u8>) {
    match record {
        LogRecord::Feature(f) => {
            out.push(TAG_FEATURE);
            varint::encode_u64(f.request_id.raw(), out);
            varint::encode_u64(f.session_id.raw(), out);
            varint::encode_u64(f.timestamp.as_millis(), out);
            varint::encode_u64(f.dense.len() as u64, out);
            for &v in &f.dense {
                out.extend_from_slice(&v.to_le_bytes());
            }
            varint::encode_u64(f.sparse.len() as u64, out);
            for list in &f.sparse {
                varint::encode_u64(list.len() as u64, out);
                for &id in list {
                    out.extend_from_slice(&id.to_le_bytes());
                }
            }
        }
        LogRecord::Event(e) => {
            out.push(TAG_EVENT);
            varint::encode_u64(e.request_id.raw(), out);
            varint::encode_u64(e.session_id.raw(), out);
            varint::encode_u64(e.timestamp.as_millis(), out);
            out.extend_from_slice(&e.label.to_le_bytes());
        }
    }
}

fn take<'a>(input: &'a [u8], cursor: &mut usize, n: usize) -> Result<&'a [u8], WireError> {
    if *cursor + n > input.len() {
        return Err(WireError::Truncated);
    }
    let slice = &input[*cursor..*cursor + n];
    *cursor += n;
    Ok(slice)
}

fn take_varint(input: &[u8], cursor: &mut usize) -> Result<u64, WireError> {
    let (value, used) = varint::decode_u64(&input[*cursor..])?;
    *cursor += used;
    Ok(value)
}

/// Decodes one record from the front of `input`, returning the record and the
/// number of bytes consumed.
///
/// # Errors
///
/// Returns a [`WireError`] if the record is truncated or has an unknown tag.
pub fn decode_record(input: &[u8]) -> Result<(LogRecord, usize), WireError> {
    let mut cursor = 0usize;
    let tag = *take(input, &mut cursor, 1)?.first().expect("one byte");
    match tag {
        TAG_FEATURE => {
            let request_id = RequestId::new(take_varint(input, &mut cursor)?);
            let session_id = SessionId::new(take_varint(input, &mut cursor)?);
            let timestamp = Timestamp::from_millis(take_varint(input, &mut cursor)?);
            let dense_len = take_varint(input, &mut cursor)? as usize;
            let mut dense = Vec::with_capacity(dense_len);
            for _ in 0..dense_len {
                let bytes = take(input, &mut cursor, 4)?;
                dense.push(f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]));
            }
            let sparse_len = take_varint(input, &mut cursor)? as usize;
            let mut sparse = Vec::with_capacity(sparse_len);
            for _ in 0..sparse_len {
                let list_len = take_varint(input, &mut cursor)? as usize;
                let mut list = Vec::with_capacity(list_len);
                for _ in 0..list_len {
                    let bytes = take(input, &mut cursor, 8)?;
                    list.push(u64::from_le_bytes([
                        bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6],
                        bytes[7],
                    ]));
                }
                sparse.push(list);
            }
            Ok((
                LogRecord::Feature(FeatureLog {
                    request_id,
                    session_id,
                    timestamp,
                    dense,
                    sparse,
                }),
                cursor,
            ))
        }
        TAG_EVENT => {
            let request_id = RequestId::new(take_varint(input, &mut cursor)?);
            let session_id = SessionId::new(take_varint(input, &mut cursor)?);
            let timestamp = Timestamp::from_millis(take_varint(input, &mut cursor)?);
            let bytes = take(input, &mut cursor, 4)?;
            let label = f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
            Ok((
                LogRecord::Event(EventLog {
                    request_id,
                    session_id,
                    timestamp,
                    label,
                }),
                cursor,
            ))
        }
        other => Err(WireError::UnknownTag(other)),
    }
}

/// Decodes every record in a buffer.
///
/// # Errors
///
/// Returns a [`WireError`] if any record is malformed.
pub fn decode_all(input: &[u8]) -> Result<Vec<LogRecord>, WireError> {
    let mut records = Vec::new();
    let mut cursor = 0;
    while cursor < input.len() {
        let (record, used) = decode_record(&input[cursor..])?;
        records.push(record);
        cursor += used;
    }
    Ok(records)
}

/// Arrival-process knobs of a [`LogTail`].
///
/// Log records do not reach the tailing ETL stage in timestamp order: every
/// record's *arrival time* is its timestamp plus a uniformly drawn network
/// jitter, and a configurable fraction of records straggle by an extra
/// delay (a retrying inference host, a slow Scribe shard). The whole
/// process is a pure function of `seed`, so a tail can be replayed —
/// byte-for-byte — as many times as a test harness wants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailConfig {
    /// Uniform arrival jitter: each record arrives within
    /// `[ts, ts + jitter_ms]`.
    pub jitter_ms: u64,
    /// Fraction of records (0.0–1.0) that straggle late.
    pub late_fraction: f64,
    /// Extra arrival delay added to straggling records, beyond the jitter.
    pub late_extra_ms: u64,
    /// Seed of the arrival process.
    pub seed: u64,
}

impl Default for TailConfig {
    fn default() -> Self {
        Self {
            jitter_ms: 2_000,
            late_fraction: 0.0,
            late_extra_ms: 60_000,
            seed: 0,
        }
    }
}

impl TailConfig {
    /// A perfectly punctual tail: every record arrives exactly at its
    /// timestamp, in timestamp order.
    pub fn punctual() -> Self {
        Self {
            jitter_ms: 0,
            late_fraction: 0.0,
            late_extra_ms: 0,
            seed: 0,
        }
    }

    /// Sets the uniform jitter bound.
    #[must_use]
    pub fn with_jitter_ms(mut self, jitter_ms: u64) -> Self {
        self.jitter_ms = jitter_ms;
        self
    }

    /// Sets the straggler fraction (clamped to `[0, 1]`) and extra delay.
    #[must_use]
    pub fn with_lateness(mut self, fraction: f64, extra_ms: u64) -> Self {
        self.late_fraction = fraction.clamp(0.0, 1.0);
        self.late_extra_ms = extra_ms;
        self
    }

    /// Sets the seed of the arrival process.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One record together with the simulated wall-clock time it reaches the
/// tailing consumer.
#[derive(Debug, Clone, PartialEq)]
pub struct TailEvent {
    /// Simulated arrival time (ms).
    pub arrival_ms: u64,
    /// The record that arrived.
    pub record: LogRecord,
}

/// A replayable tail over a log stream: the continuous-ETL analog of
/// `tail -f` on a Scribe category.
///
/// Construction assigns every record a deterministic arrival time from the
/// [`TailConfig`] and orders the stream by arrival. Consumers either
/// [`poll`](LogTail::poll) everything that has arrived by a simulated clock
/// value, or pull one event at a time with [`next_event`](LogTail::next_event).
/// [`rewind`](LogTail::rewind) restarts the identical stream, which is what
/// makes deterministic end-to-end replay tests possible.
#[derive(Debug, Clone)]
pub struct LogTail {
    events: Vec<TailEvent>,
    cursor: usize,
}

impl LogTail {
    /// Builds a tail over `records` with the given arrival process.
    pub fn new(records: Vec<LogRecord>, config: &TailConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut events: Vec<TailEvent> = records
            .into_iter()
            .map(|record| {
                let mut arrival_ms = record.timestamp().as_millis();
                if config.jitter_ms > 0 {
                    arrival_ms += rng.gen_range(0..=config.jitter_ms);
                }
                if config.late_fraction > 0.0 && rng.gen_bool(config.late_fraction) {
                    arrival_ms += config.late_extra_ms;
                }
                TailEvent { arrival_ms, record }
            })
            .collect();
        // Stable: records with equal arrival keep their input order, so the
        // tail is a pure function of (records, config).
        events.sort_by_key(|e| e.arrival_ms);
        Self { events, cursor: 0 }
    }

    /// Returns every event with `arrival_ms <= now_ms` that has not been
    /// consumed yet, advancing the cursor past them.
    pub fn poll(&mut self, now_ms: u64) -> &[TailEvent] {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].arrival_ms <= now_ms {
            self.cursor += 1;
        }
        &self.events[start..self.cursor]
    }

    /// Pulls the next event regardless of clock, or `None` once drained.
    pub fn next_event(&mut self) -> Option<&TailEvent> {
        let event = self.events.get(self.cursor)?;
        self.cursor += 1;
        Some(event)
    }

    /// Arrival time of the next unconsumed event, or `None` once drained.
    pub fn next_arrival_ms(&self) -> Option<u64> {
        self.events.get(self.cursor).map(|e| e.arrival_ms)
    }

    /// Arrival time of the final event (0 for an empty tail).
    pub fn end_ms(&self) -> u64 {
        self.events.last().map_or(0, |e| e.arrival_ms)
    }

    /// Events not yet consumed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Total events in the tail.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns true if the tail holds no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Returns true once every event has been consumed.
    pub fn is_drained(&self) -> bool {
        self.cursor == self.events.len()
    }

    /// Rewinds to the start: the next consumption replays the identical
    /// arrival sequence.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// The replay cursor: number of events already consumed. Recorded in
    /// pipeline checkpoints so a crash-restarted pump can resume the arrival
    /// sequence exactly where the checkpoint left it.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Rewinds (or fast-forwards) to an absolute cursor position previously
    /// obtained from [`cursor`](Self::cursor). Because the arrival sequence
    /// is a pure function of `(records, TailConfig)`, a freshly rebuilt tail
    /// sought to a checkpointed cursor replays the identical remainder.
    ///
    /// # Panics
    ///
    /// Panics if `cursor` exceeds the event count — that checkpoint could not
    /// have come from this tail.
    pub fn rewind_to(&mut self, cursor: usize) {
        assert!(
            cursor <= self.events.len(),
            "cursor {cursor} out of range ({} events)",
            self.events.len()
        );
        self.cursor = cursor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feature_record() -> LogRecord {
        LogRecord::Feature(FeatureLog {
            request_id: RequestId::new(11),
            session_id: SessionId::new(22),
            timestamp: Timestamp::from_millis(33),
            dense: vec![0.5, -1.5],
            sparse: vec![vec![1, 2, 3], vec![], vec![u64::MAX]],
        })
    }

    fn event_record() -> LogRecord {
        LogRecord::Event(EventLog {
            request_id: RequestId::new(44),
            session_id: SessionId::new(55),
            timestamp: Timestamp::from_millis(66),
            label: 1.0,
        })
    }

    #[test]
    fn round_trip_both_kinds() {
        for record in [feature_record(), event_record()] {
            let mut buf = Vec::new();
            encode_record(&record, &mut buf);
            let (decoded, used) = decode_record(&buf).unwrap();
            assert_eq!(decoded, record);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn decode_all_handles_concatenated_records() {
        let mut buf = Vec::new();
        encode_record(&feature_record(), &mut buf);
        encode_record(&event_record(), &mut buf);
        encode_record(&feature_record(), &mut buf);
        let records = decode_all(&buf).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[1], event_record());
    }

    fn numbered_records(n: u64) -> Vec<LogRecord> {
        (0..n)
            .map(|i| {
                LogRecord::Event(EventLog {
                    request_id: RequestId::new(i),
                    session_id: SessionId::new(i / 4),
                    timestamp: Timestamp::from_millis(i * 1_000),
                    label: 0.0,
                })
            })
            .collect()
    }

    #[test]
    fn punctual_tail_preserves_timestamp_order() {
        let mut tail = LogTail::new(numbered_records(10), &TailConfig::punctual());
        assert_eq!(tail.len(), 10);
        assert!(!tail.is_empty());
        let polled = tail.poll(4_000);
        assert_eq!(polled.len(), 5);
        assert!(polled
            .windows(2)
            .all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        assert_eq!(tail.remaining(), 5);
        tail.poll(u64::MAX);
        assert!(tail.is_drained());
    }

    #[test]
    fn jittered_tail_is_replayable_and_bounded() {
        let config = TailConfig::default().with_jitter_ms(5_000).with_seed(42);
        let records = numbered_records(50);
        let mut a = LogTail::new(records.clone(), &config);
        let mut b = LogTail::new(records, &config);
        let mut pulled = 0usize;
        while let (Some(x), Some(y)) = (a.next_event().cloned(), b.next_event()) {
            assert_eq!(&x, y, "same seed must replay the same arrivals");
            let ts = x.record.timestamp().as_millis();
            assert!(x.arrival_ms >= ts && x.arrival_ms <= ts + 5_000);
            pulled += 1;
        }
        assert_eq!(pulled, 50);
        // Rewind replays the identical stream.
        let first = a.events.clone();
        a.rewind();
        assert_eq!(a.remaining(), 50);
        assert_eq!(a.next_arrival_ms(), Some(first[0].arrival_ms));
    }

    #[test]
    fn rewind_to_resumes_a_rebuilt_tail_mid_stream() {
        let config = TailConfig::default().with_jitter_ms(3_000).with_seed(11);
        let records = numbered_records(30);
        let mut original = LogTail::new(records.clone(), &config);
        let mut consumed = Vec::new();
        for _ in 0..12 {
            consumed.push(original.next_event().cloned().unwrap());
        }
        let checkpointed = original.cursor();
        assert_eq!(checkpointed, 12);

        // A crash-restarted pump rebuilds the tail from the same inputs and
        // seeks to the checkpointed cursor: the remainder replays exactly.
        let mut resumed = LogTail::new(records, &config);
        resumed.rewind_to(checkpointed);
        assert_eq!(resumed.remaining(), original.remaining());
        while let Some(expected) = original.next_event().cloned() {
            assert_eq!(resumed.next_event(), Some(&expected));
        }
        assert!(resumed.is_drained());
        // Seeking to the very end is allowed; past it is a logic error.
        resumed.rewind_to(30);
        assert!(resumed.is_drained());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rewind_past_the_end_panics() {
        let mut tail = LogTail::new(numbered_records(3), &TailConfig::punctual());
        tail.rewind_to(7);
    }

    #[test]
    fn stragglers_arrive_with_the_extra_delay() {
        let config = TailConfig::punctual()
            .with_lateness(0.3, 100_000)
            .with_seed(7);
        let tail = LogTail::new(numbered_records(200), &config);
        let late = tail
            .events
            .iter()
            .filter(|e| e.arrival_ms >= e.record.timestamp().as_millis() + 100_000)
            .count();
        assert!(late > 20 && late < 120, "~30% stragglers, got {late}");
        // A different seed produces a different straggler set.
        let other = LogTail::new(numbered_records(200), &config.with_seed(8));
        assert_ne!(tail.events, other.events);
    }

    #[test]
    fn truncation_and_bad_tags_are_errors() {
        let mut buf = Vec::new();
        encode_record(&feature_record(), &mut buf);
        for cut in 1..buf.len() {
            assert!(decode_record(&buf[..cut]).is_err() || cut == buf.len());
        }
        assert!(matches!(decode_record(&[]), Err(WireError::Truncated)));
        assert!(matches!(
            decode_record(&[99, 0, 0]),
            Err(WireError::UnknownTag(99))
        ));
    }
}
