//! The hybrid-parallel performance model of the trainer tier.
//!
//! Absolute GPU-cluster performance cannot be measured in this repository, so
//! the experiments that depend on it (Figures 7–9, Table 2, the single-node
//! study) are driven by a cost model: real byte / lookup / FLOP counts are
//! extracted from converted batches ([`WorkStats`]) and pushed through a
//! hardware model parameterized with the ZionEX numbers from §6.1
//! ([`ClusterSpec`]). The model captures what the paper's measurements hinge
//! on — how much data crosses the network in each all-to-all, how many
//! embedding rows are touched, how much pooling compute runs, and how much of
//! the communication can hide under compute.

use crate::dlrm::DlrmConfig;
use crate::pooling::PoolingKind;
use recd_core::ConvertedBatch;
use serde::{Deserialize, Serialize};

/// Per-GPU hardware characteristics.
///
/// The defaults are *scaled-down* A100 figures: the synthetic workloads in
/// this repository are roughly two orders of magnitude smaller per sample
/// than the production workloads in the paper, so the hardware model is
/// scaled by the same factor (keeping the compute-to-bandwidth ratios in the
/// same regime) so that iterations sit in the same bandwidth-bound /
/// compute-bound balance the paper reports. DESIGN.md records this
/// substitution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Sustainable compute throughput in FLOP/s.
    pub flops: f64,
    /// HBM bandwidth in bytes/s.
    pub hbm_bandwidth: f64,
    /// HBM capacity in bytes.
    pub hbm_capacity: f64,
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self {
            flops: 1.0e12,
            hbm_bandwidth: 20e9,
            hbm_capacity: 0.5e9,
        }
    }
}

/// Cluster-level characteristics (defaults approximate a ZionEX node fleet:
/// 8 A100s per node, NVLink intra-node, 200 Gbps RoCE per GPU inter-node).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Per-GPU characteristics.
    pub gpu: GpuSpec,
    /// Total GPUs participating in training.
    pub gpus: usize,
    /// GPUs per node (all-to-alls within a node ride NVLink).
    pub gpus_per_node: usize,
    /// Per-GPU NVLink bandwidth in bytes/s.
    pub nvlink_bandwidth: f64,
    /// Per-GPU inter-node NIC bandwidth in bytes/s (200 Gbps RoCE = 25 GB/s).
    pub nic_bandwidth: f64,
    /// Fixed latency per collective operation, in seconds.
    pub collective_latency: f64,
    /// Fraction of all-to-all time that can be hidden under compute.
    pub overlap_fraction: f64,
}

impl ClusterSpec {
    /// A multi-node ZionEX-like cluster with the given number of GPUs.
    pub fn zionex(gpus: usize) -> Self {
        Self {
            gpu: GpuSpec::default(),
            gpus: gpus.max(1),
            gpus_per_node: 8,
            nvlink_bandwidth: 8e9,
            nic_bandwidth: 1.0e9,
            collective_latency: 10e-6,
            overlap_fraction: 0.6,
        }
    }

    /// A single ZionEX node (8 GPUs, NVLink-only collectives).
    pub fn single_node() -> Self {
        Self::zionex(8)
    }

    /// Effective per-GPU all-to-all bandwidth: NVLink when the job fits in
    /// one node, the NIC otherwise.
    pub fn a2a_bandwidth(&self) -> f64 {
        if self.gpus <= self.gpus_per_node {
            self.nvlink_bandwidth
        } else {
            self.nic_bandwidth
        }
    }
}

/// Which trainer-side RecD optimizations are active when deriving work
/// counts (the knobs of the Figure 9 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrainerOptimizations {
    /// O5: deduplicated EMB lookups, activations, and EMB-output all-to-all.
    pub dedup_emb: bool,
    /// O6: jagged index select (vs densify-then-select).
    pub jagged_index_select: bool,
    /// O7: deduplicated compute for sequence pooling modules.
    pub dedup_compute: bool,
}

impl TrainerOptimizations {
    /// Every trainer optimization enabled (full RecD).
    pub fn all() -> Self {
        Self {
            dedup_emb: true,
            jagged_index_select: true,
            dedup_compute: true,
        }
    }

    /// No trainer optimization enabled (baseline).
    pub fn none() -> Self {
        Self::default()
    }
}

/// Work counts for one global-batch training iteration, derived from a
/// converted batch and the model architecture.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkStats {
    /// Samples in the global batch.
    pub batch_size: usize,
    /// Bytes of sparse `values`/`offsets` crossing the SDD all-to-all.
    pub sdd_bytes: f64,
    /// Embedding rows looked up.
    pub emb_lookups: f64,
    /// Bytes of embedding activations materialized.
    pub emb_activation_bytes: f64,
    /// FLOPs spent in pooling modules.
    pub pooling_flops: f64,
    /// FLOPs spent in MLPs and the interaction.
    pub mlp_flops: f64,
    /// Bytes of pooled embeddings crossing the second all-to-all.
    pub emb_output_a2a_bytes: f64,
    /// Bytes of transient memory traffic for the IKJT→KJT index select.
    pub index_select_bytes: f64,
    /// Bytes exchanged by the MLP gradient all-reduce.
    pub allreduce_bytes: f64,
}

impl WorkStats {
    /// Derives the iteration work from a converted batch, the model
    /// architecture, and the active trainer optimizations.
    pub fn from_batch(
        batch: &ConvertedBatch,
        model: &DlrmConfig,
        opts: TrainerOptimizations,
    ) -> Self {
        let dim = model.embedding_dim as f64;
        let batch_size = batch.batch_size;
        let rows = batch_size as f64;

        let mut sdd_bytes = batch.kjt.payload_bytes() as f64;
        let mut emb_lookups = batch.kjt.value_count() as f64;
        let mut pooled_outputs = batch.kjt.feature_count() as f64 * rows;
        let mut pooling_flops = 0.0;
        let mut index_select_bytes = 0.0;

        // Pooling FLOPs for KJT features (never deduplicated).
        for (feature, tensor) in batch.kjt.iter() {
            let kind = pooling_kind(model, feature);
            for row in tensor.iter() {
                pooling_flops += kind.flops_per_row(row.len(), model.embedding_dim) as f64;
            }
        }

        for ikjt in &batch.ikjts {
            // SDD ships deduplicated values+offsets (inverse lookup stays local).
            sdd_bytes += ikjt.payload_bytes() as f64;

            let slot_values = ikjt.dedup_value_count() as f64;
            let logical_values = ikjt.original_value_count() as f64;
            let slots = ikjt.slot_count() as f64;
            let features = ikjt.keys().len() as f64;

            // O5: lookups/activations per slot instead of per row.
            if opts.dedup_emb {
                emb_lookups += slot_values;
                pooled_outputs += features * slots;
            } else {
                emb_lookups += logical_values;
                pooled_outputs += features * rows;
            }

            // O7: sequence-module compute per slot instead of per row.
            for &feature in ikjt.keys() {
                let kind = pooling_kind(model, feature);
                let tensor = ikjt.feature(feature).expect("feature in its own group");
                let per_slot: f64 = tensor
                    .iter()
                    .map(|row| kind.flops_per_row(row.len(), model.embedding_dim) as f64)
                    .sum();
                if opts.dedup_compute && kind.is_sequence_module() {
                    pooling_flops += per_slot;
                } else if opts.dedup_emb && !kind.is_sequence_module() {
                    // Element-wise pooling rides the deduplicated lookups.
                    pooling_flops += per_slot;
                } else {
                    // Scale per-slot cost up to per-row cost.
                    let scale = if slots > 0.0 { rows / slots } else { 1.0 };
                    pooling_flops += per_slot * scale;
                }
            }

            // O6: converting IKJTs back to KJTs before interaction.
            for &feature in ikjt.keys() {
                let tensor = ikjt.feature(feature).expect("feature in its own group");
                if opts.jagged_index_select {
                    // Jagged gather touches each logical value once (8 bytes).
                    index_select_bytes += logical_values / features * 8.0;
                    let _ = tensor;
                } else {
                    // Densify to [slots, max_len] then select to [rows, max_len].
                    let max_len = tensor.max_row_len() as f64;
                    index_select_bytes += (slots + rows) * max_len * 8.0;
                }
            }
        }

        let emb_activation_bytes = emb_lookups * dim * 4.0;
        let emb_output_a2a_bytes = pooled_outputs * dim * 4.0;

        // Dense-side FLOPs per sample: bottom MLP, interaction, top MLP.
        let n_vectors = (model.sparse_feature_count() + 1) as f64;
        let bottom_flops: f64 = mlp_flops(model.dense_features, &model.bottom_mlp);
        let interaction_in = dim + n_vectors * (n_vectors - 1.0) / 2.0;
        let top_flops: f64 = mlp_flops(interaction_in as usize, &model.top_mlp);
        let interaction_flops = n_vectors * n_vectors * dim;
        let mlp_total = (bottom_flops + top_flops + interaction_flops) * rows * 3.0; // fwd + bwd

        // All-reduce over data-parallel MLP parameters (2x for ring).
        let mlp_params = mlp_param_count(model.dense_features, &model.bottom_mlp)
            + mlp_param_count(interaction_in as usize, &model.top_mlp);
        let allreduce_bytes = mlp_params as f64 * 4.0 * 2.0;

        Self {
            batch_size,
            sdd_bytes,
            emb_lookups,
            emb_activation_bytes,
            pooling_flops,
            mlp_flops: mlp_total,
            emb_output_a2a_bytes,
            index_select_bytes,
            allreduce_bytes,
        }
    }
}

fn pooling_kind(model: &DlrmConfig, feature: recd_data::FeatureId) -> PoolingKind {
    model
        .feature_pooling
        .iter()
        .find(|(f, _)| *f == feature)
        .map(|&(_, k)| k)
        .unwrap_or(PoolingKind::Sum)
}

fn mlp_flops(input: usize, hidden: &[usize]) -> f64 {
    let mut flops = 0.0;
    let mut prev = input.max(1);
    for &h in hidden {
        flops += 2.0 * prev as f64 * h as f64;
        prev = h;
    }
    flops
}

fn mlp_param_count(input: usize, hidden: &[usize]) -> usize {
    let mut params = 0;
    let mut prev = input.max(1);
    for &h in hidden {
        params += prev * h + h;
        prev = h;
    }
    params
}

/// The per-category exposed-latency breakdown of one iteration (Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IterationBreakdown {
    /// Time spent in embedding lookups (HBM-bandwidth bound), seconds.
    pub emb_lookup: f64,
    /// Time spent in GEMM-style compute (MLPs, pooling, index select),
    /// seconds.
    pub gemm_compute: f64,
    /// Exposed (non-overlapped) all-to-all communication, seconds.
    pub a2a_exposed: f64,
    /// Other exposed time (all-reduce and miscellaneous), seconds.
    pub other: f64,
}

impl IterationBreakdown {
    /// Total exposed iteration latency in seconds.
    pub fn total(&self) -> f64 {
        self.emb_lookup + self.gemm_compute + self.a2a_exposed + self.other
    }
}

/// The modeled cost of one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IterationCost {
    /// Exposed-latency breakdown.
    pub breakdown: IterationBreakdown,
    /// Total raw all-to-all time before overlap, seconds.
    pub a2a_total: f64,
    /// Training throughput in samples per second across the whole job.
    pub throughput: f64,
    /// Realized compute utilization (0–1) relative to peak FLOP/s.
    pub compute_utilization: f64,
}

impl IterationCost {
    /// Evaluates the hardware model for one iteration's work.
    pub fn evaluate(work: &WorkStats, cluster: &ClusterSpec) -> Self {
        let gpus = cluster.gpus.max(1) as f64;
        let a2a_bw = cluster.a2a_bandwidth();

        // Per-GPU shares.
        let sdd_time = work.sdd_bytes / gpus / a2a_bw + cluster.collective_latency;
        let emb_out_time = work.emb_output_a2a_bytes / gpus / a2a_bw + cluster.collective_latency;
        let allreduce_time = work.allreduce_bytes / a2a_bw + cluster.collective_latency;

        let emb_lookup_time = work.emb_activation_bytes / gpus / cluster.gpu.hbm_bandwidth;
        let compute_time = (work.pooling_flops + work.mlp_flops) / gpus / cluster.gpu.flops
            + work.index_select_bytes / gpus / cluster.gpu.hbm_bandwidth;

        let a2a_total = sdd_time + emb_out_time;
        let hidden = (compute_time * cluster.overlap_fraction).min(a2a_total);
        let a2a_exposed = a2a_total - hidden;
        // The MLP gradient all-reduce overlaps almost entirely with the
        // backward pass; only a small tail is exposed.
        let other = allreduce_time * 0.1;

        let breakdown = IterationBreakdown {
            emb_lookup: emb_lookup_time,
            gemm_compute: compute_time,
            a2a_exposed,
            other,
        };
        let total = breakdown.total().max(1e-12);
        let throughput = work.batch_size as f64 / total;
        let compute_utilization =
            ((work.pooling_flops + work.mlp_flops) / gpus / total / cluster.gpu.flops).min(1.0);
        Self {
            breakdown,
            a2a_total,
            throughput,
            compute_utilization,
        }
    }
}

/// GPU memory accounting for one configuration (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Embedding parameter bytes per GPU (model parallel).
    pub emb_param_bytes_per_gpu: f64,
    /// Peak activation bytes per GPU during the iteration.
    pub peak_activation_bytes_per_gpu: f64,
    /// Average activation bytes per GPU across the iteration.
    pub avg_activation_bytes_per_gpu: f64,
    /// Peak memory utilization (0–1).
    pub max_utilization: f64,
    /// Average memory utilization (0–1).
    pub avg_utilization: f64,
}

impl MemoryReport {
    /// Evaluates the memory model.
    ///
    /// `emb_param_bytes` is the total embedding-table parameter footprint of
    /// the model (sharded across GPUs).
    pub fn evaluate(work: &WorkStats, cluster: &ClusterSpec, emb_param_bytes: f64) -> Self {
        let gpus = cluster.gpus.max(1) as f64;
        let emb_param_bytes_per_gpu = emb_param_bytes / gpus;
        // Peak: activations + pooled outputs + index-select transients.
        let peak_activation_bytes_per_gpu =
            (work.emb_activation_bytes + work.emb_output_a2a_bytes + work.index_select_bytes)
                / gpus;
        let avg_activation_bytes_per_gpu = peak_activation_bytes_per_gpu * 0.6;
        let capacity = cluster.gpu.hbm_capacity;
        let max_utilization =
            ((emb_param_bytes_per_gpu + peak_activation_bytes_per_gpu) / capacity).min(1.0);
        let avg_utilization =
            ((emb_param_bytes_per_gpu + avg_activation_bytes_per_gpu) / capacity).min(1.0);
        Self {
            emb_param_bytes_per_gpu,
            peak_activation_bytes_per_gpu,
            avg_activation_bytes_per_gpu,
            max_utilization,
            avg_utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_core::{DataLoaderConfig, FeatureConverter};
    use recd_data::SampleBatch;
    use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
    use recd_etl::cluster_by_session;

    fn batch(dedup: bool) -> (recd_data::Schema, ConvertedBatch) {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        let p = gen.generate_partition();
        let clustered = cluster_by_session(&p.samples);
        let sample_batch = SampleBatch::new(clustered[..128.min(clustered.len())].to_vec());
        let converter = FeatureConverter::new(DataLoaderConfig::from_schema(&p.schema));
        let converted = if dedup {
            converter.convert(&sample_batch).unwrap()
        } else {
            converter.convert_baseline(&sample_batch).unwrap()
        };
        (p.schema, converted)
    }

    #[test]
    fn dedup_work_is_strictly_smaller() {
        let (schema, dedup_batch) = batch(true);
        let (_, baseline_batch) = batch(false);
        let model = DlrmConfig::from_schema(&schema, 64, PoolingKind::Transformer);
        let recd = WorkStats::from_batch(&dedup_batch, &model, TrainerOptimizations::all());
        let base = WorkStats::from_batch(&baseline_batch, &model, TrainerOptimizations::none());
        assert!(recd.sdd_bytes < base.sdd_bytes);
        assert!(recd.emb_lookups < base.emb_lookups);
        assert!(recd.emb_activation_bytes < base.emb_activation_bytes);
        assert!(recd.pooling_flops < base.pooling_flops);
        assert!(recd.emb_output_a2a_bytes < base.emb_output_a2a_bytes);
        assert_eq!(recd.batch_size, base.batch_size);
        assert!(recd.mlp_flops > 0.0 && (recd.mlp_flops - base.mlp_flops).abs() < 1.0);
    }

    #[test]
    fn optimization_flags_govern_the_work_counts() {
        let (schema, dedup_batch) = batch(true);
        let model = DlrmConfig::from_schema(&schema, 64, PoolingKind::Transformer);
        let none = WorkStats::from_batch(&dedup_batch, &model, TrainerOptimizations::none());
        let emb_only = WorkStats::from_batch(
            &dedup_batch,
            &model,
            TrainerOptimizations {
                dedup_emb: true,
                ..TrainerOptimizations::none()
            },
        );
        let all = WorkStats::from_batch(&dedup_batch, &model, TrainerOptimizations::all());
        assert!(emb_only.emb_lookups < none.emb_lookups);
        assert!(all.pooling_flops < emb_only.pooling_flops);
        // Dense index select (no O6) materializes more transient bytes.
        assert!(none.index_select_bytes > all.index_select_bytes);
    }

    #[test]
    fn cost_model_rewards_deduplication_with_higher_throughput() {
        let (schema, dedup_batch) = batch(true);
        let (_, baseline_batch) = batch(false);
        let model = DlrmConfig::from_schema(&schema, 64, PoolingKind::Transformer);
        let cluster = ClusterSpec::zionex(48);
        let recd_cost = IterationCost::evaluate(
            &WorkStats::from_batch(&dedup_batch, &model, TrainerOptimizations::all()),
            &cluster,
        );
        let base_cost = IterationCost::evaluate(
            &WorkStats::from_batch(&baseline_batch, &model, TrainerOptimizations::none()),
            &cluster,
        );
        assert!(recd_cost.throughput > base_cost.throughput);
        assert!(recd_cost.breakdown.a2a_exposed <= base_cost.breakdown.a2a_exposed);
        assert!(recd_cost.breakdown.total() < base_cost.breakdown.total());
        assert!(base_cost.compute_utilization <= 1.0);
    }

    #[test]
    fn single_node_uses_nvlink_and_still_benefits() {
        let (schema, dedup_batch) = batch(true);
        let (_, baseline_batch) = batch(false);
        let model = DlrmConfig::from_schema(&schema, 64, PoolingKind::Transformer);
        let node = ClusterSpec::single_node();
        assert!(node.a2a_bandwidth() > ClusterSpec::zionex(48).a2a_bandwidth());
        let recd = IterationCost::evaluate(
            &WorkStats::from_batch(&dedup_batch, &model, TrainerOptimizations::all()),
            &node,
        );
        let base = IterationCost::evaluate(
            &WorkStats::from_batch(&baseline_batch, &model, TrainerOptimizations::none()),
            &node,
        );
        assert!(recd.throughput > base.throughput);
    }

    #[test]
    fn memory_report_shrinks_with_dedup() {
        let (schema, dedup_batch) = batch(true);
        let (_, baseline_batch) = batch(false);
        let model = DlrmConfig::from_schema(&schema, 64, PoolingKind::Transformer);
        let cluster = ClusterSpec::zionex(48);
        let emb_bytes = 1e9;
        let recd = MemoryReport::evaluate(
            &WorkStats::from_batch(&dedup_batch, &model, TrainerOptimizations::all()),
            &cluster,
            emb_bytes,
        );
        let base = MemoryReport::evaluate(
            &WorkStats::from_batch(&baseline_batch, &model, TrainerOptimizations::none()),
            &cluster,
            emb_bytes,
        );
        assert!(recd.max_utilization < base.max_utilization);
        assert!(recd.avg_utilization <= recd.max_utilization);
        assert!(base.max_utilization <= 1.0);
    }
}
