//! Multi-batch training loops used by the accuracy-neutrality experiments
//! (§6.2, "Impacts to Accuracy").

use crate::dlrm::{Dlrm, DlrmConfig, ExecutionMode};
use crate::nn::bce_loss;
use recd_core::ConvertedBatch;
use serde::{Deserialize, Serialize};

/// Configuration of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Model architecture.
    pub model: DlrmConfig,
    /// Execution mode (baseline KJT path vs deduplicated IKJT path).
    pub mode: ExecutionMode,
    /// Number of passes over the provided batches.
    pub epochs: usize,
}

/// The result of a training run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss after each step, in step order.
    pub step_losses: Vec<f32>,
    /// Mean evaluation loss on the held-out batches after training.
    pub eval_loss: f32,
    /// Total samples trained on.
    pub samples: usize,
}

impl TrainReport {
    /// Mean loss over the final quarter of training steps, a stable summary
    /// of where training converged.
    pub fn final_loss(&self) -> f32 {
        if self.step_losses.is_empty() {
            return 0.0;
        }
        let tail = self.step_losses.len().div_ceil(4);
        let slice = &self.step_losses[self.step_losses.len() - tail..];
        slice.iter().sum::<f32>() / slice.len() as f32
    }
}

/// Drives SGD training of a [`Dlrm`] over pre-converted batches.
#[derive(Debug)]
pub struct Trainer {
    model: Dlrm,
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer (and its model) from a configuration.
    pub fn new(config: TrainerConfig) -> Self {
        Self {
            model: Dlrm::new(config.model.clone()),
            config,
        }
    }

    /// Borrows the underlying model.
    pub fn model(&self) -> &Dlrm {
        &self.model
    }

    /// Trains on `train_batches` and evaluates on `eval_batches`.
    pub fn run(
        &mut self,
        train_batches: &[ConvertedBatch],
        eval_batches: &[ConvertedBatch],
    ) -> TrainReport {
        let mut report = TrainReport::default();
        for _ in 0..self.config.epochs.max(1) {
            for batch in train_batches {
                if batch.batch_size == 0 {
                    continue;
                }
                let loss = self.model.train_step(batch, self.config.mode);
                report.step_losses.push(loss);
                report.samples += batch.batch_size;
            }
        }
        report.eval_loss = self.evaluate(eval_batches);
        report
    }

    /// Mean BCE loss over the given batches without updating parameters.
    pub fn evaluate(&mut self, batches: &[ConvertedBatch]) -> f32 {
        let mut total = 0.0;
        let mut count = 0usize;
        for batch in batches {
            let (probs, _) = self.model.forward(batch, self.config.mode);
            for (p, &label) in probs.iter().zip(&batch.labels) {
                total += bce_loss(*p, label);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pooling::PoolingKind;
    use recd_core::{DataLoaderConfig, FeatureConverter};
    use recd_data::SampleBatch;
    use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
    use recd_etl::cluster_by_session;

    fn batches(dedup: bool) -> (recd_data::Schema, Vec<ConvertedBatch>) {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        let p = gen.generate_partition();
        let clustered = cluster_by_session(&p.samples);
        let converter = FeatureConverter::new(DataLoaderConfig::from_schema(&p.schema));
        let batches = SampleBatch::new(clustered)
            .chunks(64)
            .iter()
            .map(|b| {
                if dedup {
                    converter.convert(b).unwrap()
                } else {
                    converter.convert_baseline(b).unwrap()
                }
            })
            .collect();
        (p.schema, batches)
    }

    fn trainer_config(schema: &recd_data::Schema, mode: ExecutionMode) -> TrainerConfig {
        TrainerConfig {
            model: DlrmConfig::from_schema(schema, 8, PoolingKind::Sum).with_sum_pooling(),
            mode,
            epochs: 2,
        }
    }

    #[test]
    fn training_runs_and_records_losses() {
        let (schema, batches) = batches(true);
        let (train, eval) = batches.split_at(batches.len() - 1);
        let mut trainer = Trainer::new(trainer_config(&schema, ExecutionMode::Deduplicated));
        let report = trainer.run(train, eval);
        assert_eq!(report.step_losses.len(), train.len() * 2);
        assert!(report.samples > 0);
        assert!(report.eval_loss > 0.0);
        assert!(report.final_loss() > 0.0);
    }

    #[test]
    fn dedup_and_baseline_training_converge_identically() {
        // The paper's accuracy claim: IKJTs encode the same data, so training
        // on deduplicated batches matches training on baseline batches.
        let (schema, dedup_batches) = batches(true);
        let (_, baseline_batches) = batches(false);
        let mut dedup_trainer = Trainer::new(trainer_config(&schema, ExecutionMode::Deduplicated));
        let mut baseline_trainer = Trainer::new(trainer_config(&schema, ExecutionMode::Baseline));
        let dedup_report = dedup_trainer.run(&dedup_batches, &dedup_batches);
        let baseline_report = baseline_trainer.run(&baseline_batches, &baseline_batches);
        assert_eq!(
            dedup_report.step_losses.len(),
            baseline_report.step_losses.len()
        );
        for (a, b) in dedup_report
            .step_losses
            .iter()
            .zip(&baseline_report.step_losses)
        {
            assert!((a - b).abs() < 1e-3, "loss curves must match: {a} vs {b}");
        }
        assert!((dedup_report.eval_loss - baseline_report.eval_loss).abs() < 1e-3);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let (schema, _) = batches(true);
        let mut trainer = Trainer::new(trainer_config(&schema, ExecutionMode::Deduplicated));
        let report = trainer.run(&[], &[]);
        assert!(report.step_losses.is_empty());
        assert_eq!(report.eval_loss, 0.0);
        assert_eq!(report.final_loss(), 0.0);
    }
}
