//! # recd-trainer
//!
//! The trainer tier of the RecD reproduction: an executable, CPU-scale DLRM
//! (embedding tables, MLPs, pooling, pairwise-dot feature interaction,
//! SGD training) together with a hybrid-parallel *cost model* of the
//! multi-GPU ZionEX cluster the paper evaluates on.
//!
//! Two things are measured on two different instruments:
//!
//! * **Correctness** is measured on the executable model ([`dlrm`],
//!   [`train`]): the deduplicated execution path (O5–O7: deduplicated EMB
//!   lookups, jagged index select, deduplicated pooling with inverse-lookup
//!   expansion) must produce the same predictions and the same training
//!   trajectory as the baseline KJT path, because IKJTs encode the exact
//!   same logical data.
//! * **Performance shape** is measured on the cost model ([`cost`]): byte,
//!   lookup, FLOP, and memory counts extracted from real batches are pushed
//!   through a ZionEX-parameterized hardware model (HBM bandwidth, NVLink /
//!   RoCE bandwidth, compute throughput, compute/communication overlap) to
//!   produce the iteration-latency breakdowns, throughput ratios, and memory
//!   utilization numbers behind Figures 7–9 and Table 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod dlrm;
pub mod embedding;
pub mod nn;
pub mod pooling;
pub mod train;

pub use cost::{
    ClusterSpec, GpuSpec, IterationBreakdown, IterationCost, MemoryReport, TrainerOptimizations,
    WorkStats,
};
pub use dlrm::{Dlrm, DlrmConfig, ExecutionMode, ForwardStats};
pub use embedding::EmbeddingTable;
pub use nn::{bce_loss, Linear, Mlp};
pub use pooling::{pool_sequence, PoolingCost, PoolingKind};
pub use train::{TrainReport, Trainer, TrainerConfig};
