//! The executable DLRM: bottom MLP over dense features, embedding tables and
//! pooling over sparse features, pairwise-dot feature interaction, and a top
//! MLP producing a click probability (paper §2.2, Figure 2).

use crate::embedding::EmbeddingTable;
use crate::nn::{bce_loss, sigmoid, Mlp};
use crate::pooling::{pool_sequence, PoolingKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use recd_core::{ConvertedBatch, JaggedTensor};
use recd_data::{FeatureId, Schema};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Whether the model executes the baseline (KJT) or deduplicated (IKJT)
/// path for grouped features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Expand every IKJT back to a KJT first, then process one row at a time
    /// (what a pre-RecD trainer does).
    Baseline,
    /// O5–O7: look up, pool, and run sequence modules once per deduplicated
    /// slot, then expand the pooled outputs through the shared inverse
    /// lookup.
    #[default]
    Deduplicated,
}

/// Work counters collected during one forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ForwardStats {
    /// Single-row embedding lookups performed.
    pub emb_lookups: u64,
    /// FLOPs spent in pooling modules.
    pub pooling_flops: u64,
    /// Rows (or slots) run through pooling modules.
    pub pooled_rows: usize,
    /// FLOPs spent in the bottom/top MLPs and the interaction.
    pub mlp_flops: u64,
    /// f32 values materialized for embedding activations (the dynamic GPU
    /// memory O5 reduces).
    pub activation_values: usize,
}

/// Model architecture configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DlrmConfig {
    /// Number of dense input features.
    pub dense_features: usize,
    /// Embedding dimension shared by all tables.
    pub embedding_dim: usize,
    /// Rows per embedding table (hash buckets).
    pub hash_buckets: usize,
    /// Hidden sizes of the bottom MLP (its output is `embedding_dim`).
    pub bottom_mlp: Vec<usize>,
    /// Hidden sizes of the top MLP (its output is 1 logit).
    pub top_mlp: Vec<usize>,
    /// Pooling used for sequence (user-history) features.
    pub sequence_pooling: PoolingKind,
    /// Per-feature pooling assignment.
    pub feature_pooling: Vec<(FeatureId, PoolingKind)>,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// RNG seed for parameter initialization.
    pub seed: u64,
}

impl DlrmConfig {
    /// Builds a model configuration from a dataset schema: features named
    /// `user_seq*` (long histories) get `sequence_pooling`, everything else
    /// gets sum pooling.
    pub fn from_schema(
        schema: &Schema,
        embedding_dim: usize,
        sequence_pooling: PoolingKind,
    ) -> Self {
        let feature_pooling = schema
            .sparse_features()
            .iter()
            .map(|spec| {
                let kind = if spec.avg_len >= 16.0 {
                    sequence_pooling
                } else {
                    PoolingKind::Sum
                };
                (spec.id, kind)
            })
            .collect();
        Self {
            dense_features: schema.dense_count(),
            embedding_dim,
            hash_buckets: 1 << 12,
            bottom_mlp: vec![64, embedding_dim],
            top_mlp: vec![64, 32, 1],
            sequence_pooling,
            feature_pooling,
            learning_rate: 0.05,
            seed: 17,
        }
    }

    /// Replaces the embedding dimension (used by the Table 2 "EMB D256"
    /// configuration).
    #[must_use]
    pub fn with_embedding_dim(mut self, dim: usize) -> Self {
        self.embedding_dim = dim;
        if let Some(last) = self.bottom_mlp.last_mut() {
            *last = dim;
        }
        self
    }

    /// Forces sum pooling everywhere (needed for end-to-end SGD training,
    /// since the sequence modules are forward-only).
    #[must_use]
    pub fn with_sum_pooling(mut self) -> Self {
        self.sequence_pooling = PoolingKind::Sum;
        for (_, kind) in &mut self.feature_pooling {
            *kind = PoolingKind::Sum;
        }
        self
    }

    /// Number of sparse features the model consumes.
    pub fn sparse_feature_count(&self) -> usize {
        self.feature_pooling.len()
    }
}

/// The executable DLRM.
#[derive(Debug, Clone)]
pub struct Dlrm {
    config: DlrmConfig,
    bottom: Mlp,
    top: Mlp,
    tables: HashMap<FeatureId, EmbeddingTable>,
    pooling: HashMap<FeatureId, PoolingKind>,
}

impl Dlrm {
    /// Builds the model from its configuration.
    pub fn new(config: DlrmConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut bottom_dims = vec![config.dense_features.max(1)];
        bottom_dims.extend(&config.bottom_mlp);
        let bottom = Mlp::new(&bottom_dims, &mut rng);

        let n_features = config.feature_pooling.len();
        // Interaction output: bottom vector (d) + pairwise dots among
        // (bottom + n_features) vectors.
        let n_vectors = n_features + 1;
        let interaction_dim = config.embedding_dim + n_vectors * (n_vectors - 1) / 2;
        let mut top_dims = vec![interaction_dim];
        top_dims.extend(&config.top_mlp);
        let top = Mlp::new(&top_dims, &mut rng);

        let tables = config
            .feature_pooling
            .iter()
            .map(|&(feature, _)| {
                (
                    feature,
                    EmbeddingTable::new(
                        config.hash_buckets,
                        config.embedding_dim,
                        config.seed ^ (feature.raw() as u64 + 1),
                    ),
                )
            })
            .collect();
        let pooling = config.feature_pooling.iter().copied().collect();
        Self {
            config,
            bottom,
            top,
            tables,
            pooling,
        }
    }

    /// Borrows the model configuration.
    pub fn config(&self) -> &DlrmConfig {
        &self.config
    }

    /// Total embedding parameter bytes (for the memory report).
    pub fn embedding_parameter_bytes(&self) -> usize {
        self.tables
            .values()
            .map(EmbeddingTable::parameter_bytes)
            .sum()
    }

    /// Total dense (MLP) parameter count.
    pub fn mlp_parameter_count(&self) -> usize {
        self.bottom.parameter_count() + self.top.parameter_count()
    }

    /// Pools one feature for every row of the batch, honoring the execution
    /// mode. Returns the per-row pooled vectors as one flat matrix.
    fn pool_feature(
        &mut self,
        feature: FeatureId,
        batch: &ConvertedBatch,
        mode: ExecutionMode,
        stats: &mut ForwardStats,
    ) -> PooledRows {
        let dim = self.config.embedding_dim;
        let kind = *self.pooling.get(&feature).unwrap_or(&PoolingKind::Sum);
        let table = self
            .tables
            .get_mut(&feature)
            .expect("feature must have a table");

        // Locate the feature: either in the KJT or in one of the IKJTs.
        if let Some(tensor) = batch.kjt.feature(feature) {
            return pool_rows(table, kind, tensor, dim, stats);
        }
        for ikjt in &batch.ikjts {
            let Some(slot_tensor) = ikjt.feature(feature) else {
                continue;
            };
            return match mode {
                ExecutionMode::Baseline => {
                    // Expand first, then process every row.
                    let expanded =
                        recd_core::jagged_index_select(slot_tensor, ikjt.inverse_lookup())
                            .expect("ikjt lookup is valid");
                    pool_rows(table, kind, &expanded, dim, stats)
                }
                ExecutionMode::Deduplicated => {
                    // Process each slot once, then broadcast (O5 + O7). The
                    // expansion is an offset-based slice copy through the
                    // inverse lookup — no per-row Vec is cloned.
                    let per_slot = pool_rows(table, kind, slot_tensor, dim, stats);
                    PooledRows {
                        data: ikjt
                            .expand_per_slot_concat(&per_slot.data, dim)
                            .expect("slot count matches pooled outputs"),
                        dim,
                    }
                }
            };
        }
        // Feature absent from the batch: pool to zeros.
        PooledRows {
            data: vec![0.0; batch.batch_size * dim],
            dim,
        }
    }

    /// Forward pass over a converted batch, returning per-row click
    /// probabilities and work counters.
    pub fn forward(
        &mut self,
        batch: &ConvertedBatch,
        mode: ExecutionMode,
    ) -> (Vec<f32>, ForwardStats) {
        let (probs, _, stats) = self.forward_full(batch, mode);
        (probs, stats)
    }

    /// Forward pass that also returns the interaction-input vectors needed by
    /// the backward pass.
    fn forward_full(
        &mut self,
        batch: &ConvertedBatch,
        mode: ExecutionMode,
    ) -> (Vec<f32>, ForwardCache, ForwardStats) {
        let mut stats = ForwardStats::default();
        let dim = self.config.embedding_dim;
        let batch_size = batch.batch_size;

        // Bottom MLP over dense features, straight off the columnar dense
        // matrix — no per-row copy.
        let zero = [0.0f32];
        let mut bottom_acts = Vec::with_capacity(batch_size);
        for row in 0..batch_size {
            let dense: &[f32] = if batch.dense.cols() == 0 {
                &zero
            } else {
                batch.dense.row(row)
            };
            bottom_acts.push(self.bottom.forward_cached(dense));
        }
        stats.mlp_flops += self.bottom.flops() * batch_size as u64;

        // Pool every sparse feature.
        let features: Vec<FeatureId> = self
            .config
            .feature_pooling
            .iter()
            .map(|&(f, _)| f)
            .collect();
        let mut pooled_per_feature: Vec<PooledRows> = Vec::with_capacity(features.len());
        for &feature in &features {
            pooled_per_feature.push(self.pool_feature(feature, batch, mode, &mut stats));
        }

        // Interaction + top MLP per row. The interaction borrows the bottom
        // activation and the flat pooled matrices in place; the backward
        // pass re-borrows the same rows from the cache instead of cloning
        // them per row.
        let mut probs = Vec::with_capacity(batch_size);
        let mut top_acts = Vec::with_capacity(batch_size);
        for (row, bottom_act) in bottom_acts.iter().enumerate() {
            let bottom_out: &[f32] = bottom_act.last().expect("bottom output");
            let mut vectors: Vec<&[f32]> = Vec::with_capacity(features.len() + 1);
            vectors.push(bottom_out);
            for pooled in &pooled_per_feature {
                vectors.push(pooled.row(row));
            }
            let interaction = pairwise_dot_interaction(&vectors, dim);
            stats.mlp_flops += (vectors.len() * vectors.len() / 2) as u64 * dim as u64;
            let acts = self.top.forward_cached(&interaction);
            let logit = acts.last().expect("top output")[0];
            probs.push(sigmoid(logit));
            top_acts.push(acts);
        }
        stats.mlp_flops += self.top.flops() * batch_size as u64;

        (
            probs,
            ForwardCache {
                bottom_acts,
                top_acts,
                pooled: pooled_per_feature,
                features,
            },
            stats,
        )
    }

    /// One SGD training step over a batch: forward, BCE loss, backward
    /// through the top MLP, the interaction, the bottom MLP, and the
    /// embedding tables of sum/mean-pooled features. Returns the mean loss.
    ///
    /// Sequence pooling modules (attention/transformer) are forward-only in
    /// this reproduction; configure the model with
    /// [`DlrmConfig::with_sum_pooling`] for end-to-end training experiments.
    pub fn train_step(&mut self, batch: &ConvertedBatch, mode: ExecutionMode) -> f32 {
        let lr = self.config.learning_rate;
        let dim = self.config.embedding_dim;
        let (probs, cache, _) = self.forward_full(batch, mode);
        let batch_size = batch.batch_size.max(1);

        let mut total_loss = 0.0;
        for (row, &p) in probs.iter().enumerate() {
            let label = batch.labels[row];
            total_loss += bce_loss(p, label);
            // dL/dlogit for sigmoid + BCE, averaged over the batch.
            let grad_logit = (p - label) / batch_size as f32;

            // Top MLP backward.
            let grad_interaction = self.top.backward(&cache.top_acts[row], &[grad_logit], lr);

            // Interaction backward, over the same borrowed rows the forward
            // pass used.
            let bottom_out: &[f32] = cache.bottom_acts[row].last().expect("bottom output");
            let mut vectors: Vec<&[f32]> = Vec::with_capacity(cache.pooled.len() + 1);
            vectors.push(bottom_out);
            for pooled in &cache.pooled {
                vectors.push(pooled.row(row));
            }
            let grads = pairwise_dot_interaction_backward(&vectors, dim, &grad_interaction);

            // Bottom MLP backward.
            self.bottom.backward(&cache.bottom_acts[row], &grads[0], lr);

            // Embedding backward for sum/mean pooled features.
            for (fi, &feature) in cache.features.iter().enumerate() {
                let kind = *self.pooling.get(&feature).unwrap_or(&PoolingKind::Sum);
                if !matches!(kind, PoolingKind::Sum | PoolingKind::Mean) {
                    continue;
                }
                let ids = row_ids(batch, feature, row);
                if ids.is_empty() {
                    continue;
                }
                let mut grad = grads[fi + 1].clone();
                if matches!(kind, PoolingKind::Mean) {
                    let n = ids.len() as f32;
                    for g in &mut grad {
                        *g /= n;
                    }
                }
                self.tables
                    .get_mut(&feature)
                    .expect("table exists")
                    .apply_pooled_gradient(&ids, &grad, lr);
            }
        }
        total_loss / batch_size as f32
    }
}

/// Per-row cache needed by the backward pass. Pooled activations stay in
/// their flat per-feature [`PooledRows`] matrices; the backward pass borrows
/// rows out of them rather than materializing per-row vectors.
struct ForwardCache {
    bottom_acts: Vec<Vec<Vec<f32>>>,
    top_acts: Vec<Vec<Vec<f32>>>,
    pooled: Vec<PooledRows>,
    features: Vec<FeatureId>,
}

/// Looks up the logical ids of `feature` at `row`, whichever container holds
/// the feature.
fn row_ids(batch: &ConvertedBatch, feature: FeatureId, row: usize) -> Vec<u64> {
    if let Some(tensor) = batch.kjt.feature(feature) {
        return tensor.row(row).to_vec();
    }
    for ikjt in &batch.ikjts {
        if ikjt.feature(feature).is_some() {
            return ikjt
                .row(feature, row)
                .map(<[u64]>::to_vec)
                .unwrap_or_default();
        }
    }
    Vec::new()
}

/// Pooled vectors for a run of rows (or slots), stored as one flat
/// `[rows * dim]` matrix instead of a `Vec` per row.
struct PooledRows {
    data: Vec<f32>,
    dim: usize,
}

impl PooledRows {
    /// Borrows the pooled vector of row `i`.
    fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }
}

/// Pools every row of a jagged tensor through one embedding table.
fn pool_rows(
    table: &mut EmbeddingTable,
    kind: PoolingKind,
    tensor: &JaggedTensor<u64>,
    dim: usize,
    stats: &mut ForwardStats,
) -> PooledRows {
    let mut out = Vec::with_capacity(tensor.row_count() * dim);
    for row in tensor.iter() {
        stats.emb_lookups += row.len() as u64;
        stats.activation_values += row.len() * dim;
        let pooled = match kind {
            PoolingKind::Sum => {
                // Fast path: fused lookup + sum.
                stats.pooling_flops += kind.flops_per_row(row.len(), dim);
                table.lookup_pooled(row)
            }
            _ => {
                let sequence = table.lookup_sequence(row);
                let (pooled, cost) = pool_sequence(kind, &sequence, dim);
                stats.pooling_flops += cost.flops;
                pooled
            }
        };
        stats.pooled_rows += 1;
        out.extend_from_slice(&pooled);
    }
    PooledRows { data: out, dim }
}

/// DLRM pairwise-dot interaction: concatenates the first vector with the dot
/// products of every vector pair.
fn pairwise_dot_interaction(vectors: &[&[f32]], dim: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(dim + vectors.len() * (vectors.len() - 1) / 2);
    out.extend_from_slice(vectors[0]);
    for i in 0..vectors.len() {
        for j in (i + 1)..vectors.len() {
            let dot: f32 = vectors[i].iter().zip(vectors[j]).map(|(a, b)| a * b).sum();
            out.push(dot);
        }
    }
    out
}

/// Backward of [`pairwise_dot_interaction`]: returns the gradient with
/// respect to each input vector.
fn pairwise_dot_interaction_backward(
    vectors: &[&[f32]],
    dim: usize,
    grad_output: &[f32],
) -> Vec<Vec<f32>> {
    let mut grads: Vec<Vec<f32>> = vectors.iter().map(|v| vec![0.0; v.len()]).collect();
    // Pass-through part for the first vector.
    for d in 0..dim.min(grad_output.len()) {
        grads[0][d] += grad_output[d];
    }
    let mut k = dim;
    for i in 0..vectors.len() {
        for j in (i + 1)..vectors.len() {
            if k >= grad_output.len() {
                break;
            }
            let g = grad_output[k];
            k += 1;
            for d in 0..dim {
                grads[i][d] += g * vectors[j][d];
                grads[j][d] += g * vectors[i][d];
            }
        }
    }
    grads
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_core::{DataLoaderConfig, FeatureConverter};
    use recd_data::SampleBatch;
    use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
    use recd_etl::cluster_by_session;

    fn converted_batch(dedup: bool) -> (Schema, ConvertedBatch) {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        let p = gen.generate_partition();
        let clustered = cluster_by_session(&p.samples);
        let batch = SampleBatch::new(clustered[..128.min(clustered.len())].to_vec());
        let config = DataLoaderConfig::from_schema(&p.schema);
        let converter = FeatureConverter::new(config);
        let converted = if dedup {
            converter.convert(&batch).unwrap()
        } else {
            converter.convert_baseline(&batch).unwrap()
        };
        (p.schema, converted)
    }

    #[test]
    fn dedup_and_baseline_paths_produce_identical_predictions() {
        let (schema, batch) = converted_batch(true);
        let config = DlrmConfig::from_schema(&schema, 16, PoolingKind::Attention);
        let mut model_a = Dlrm::new(config.clone());
        let mut model_b = Dlrm::new(config);
        let (probs_dedup, stats_dedup) = model_a.forward(&batch, ExecutionMode::Deduplicated);
        let (probs_base, stats_base) = model_b.forward(&batch, ExecutionMode::Baseline);
        assert_eq!(probs_dedup.len(), batch.batch_size);
        for (a, b) in probs_dedup.iter().zip(&probs_base) {
            assert!(
                (a - b).abs() < 1e-5,
                "IKJT and KJT paths must agree: {a} vs {b}"
            );
        }
        // The deduplicated path does strictly less embedding and pooling work.
        assert!(stats_dedup.emb_lookups < stats_base.emb_lookups);
        assert!(stats_dedup.pooling_flops < stats_base.pooling_flops);
        assert!(stats_dedup.activation_values < stats_base.activation_values);
        assert!(stats_dedup.pooled_rows < stats_base.pooled_rows);
    }

    #[test]
    fn forward_over_baseline_batch_matches_dedup_batch_logically() {
        // The same rows converted with and without dedup must produce the
        // same predictions (IKJTs encode the same logical data).
        let (schema, dedup_batch) = converted_batch(true);
        let (_, baseline_batch) = converted_batch(false);
        let config = DlrmConfig::from_schema(&schema, 16, PoolingKind::Sum);
        let mut model_a = Dlrm::new(config.clone());
        let mut model_b = Dlrm::new(config);
        let (a, _) = model_a.forward(&dedup_batch, ExecutionMode::Deduplicated);
        let (b, _) = model_b.forward(&baseline_batch, ExecutionMode::Baseline);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn training_reduces_loss_on_both_paths_identically() {
        let (schema, batch) = converted_batch(true);
        let config = DlrmConfig::from_schema(&schema, 8, PoolingKind::Sum).with_sum_pooling();
        let mut dedup_model = Dlrm::new(config.clone());
        let mut baseline_model = Dlrm::new(config);
        let mut dedup_losses = Vec::new();
        let mut baseline_losses = Vec::new();
        for _ in 0..10 {
            dedup_losses.push(dedup_model.train_step(&batch, ExecutionMode::Deduplicated));
            baseline_losses.push(baseline_model.train_step(&batch, ExecutionMode::Baseline));
        }
        for (a, b) in dedup_losses.iter().zip(&baseline_losses) {
            assert!(
                (a - b).abs() < 1e-4,
                "training trajectories must match: {a} vs {b}"
            );
        }
        assert!(
            dedup_losses.last().unwrap() < dedup_losses.first().unwrap(),
            "loss should decrease: {dedup_losses:?}"
        );
    }

    #[test]
    fn config_helpers() {
        let (schema, _) = converted_batch(true);
        let config = DlrmConfig::from_schema(&schema, 32, PoolingKind::Transformer);
        assert_eq!(config.sparse_feature_count(), schema.sparse_count());
        assert!(config
            .feature_pooling
            .iter()
            .any(|&(_, k)| k == PoolingKind::Transformer));
        let wide = config.clone().with_embedding_dim(64);
        assert_eq!(wide.embedding_dim, 64);
        assert_eq!(*wide.bottom_mlp.last().unwrap(), 64);
        let summed = config.with_sum_pooling();
        assert!(summed
            .feature_pooling
            .iter()
            .all(|&(_, k)| k == PoolingKind::Sum));

        let model = Dlrm::new(DlrmConfig::from_schema(&schema, 8, PoolingKind::Sum));
        assert!(model.embedding_parameter_bytes() > 0);
        assert!(model.mlp_parameter_count() > 0);
    }

    #[test]
    fn interaction_backward_matches_numerical_gradient() {
        let a = vec![0.3f32, -0.2, 0.5];
        let b = vec![1.0f32, 0.1, -0.4];
        let c = vec![-0.7f32, 0.2, 0.9];
        let vectors: Vec<&[f32]> = vec![&a, &b, &c];
        let out = pairwise_dot_interaction(&vectors, 3);
        let grad_out: Vec<f32> = (0..out.len()).map(|i| 0.1 * (i as f32 + 1.0)).collect();
        let grads = pairwise_dot_interaction_backward(&vectors, 3, &grad_out);

        // Numerical check for vector b, coordinate 1.
        let eps = 1e-3f32;
        let mut b_plus = b.clone();
        b_plus[1] += eps;
        let mut b_minus = b.clone();
        b_minus[1] -= eps;
        let f = |bv: &Vec<f32>| {
            let vs: Vec<&[f32]> = vec![&a, bv, &c];
            pairwise_dot_interaction(&vs, 3)
                .iter()
                .zip(&grad_out)
                .map(|(o, g)| o * g)
                .sum::<f32>()
        };
        let numerical = (f(&b_plus) - f(&b_minus)) / (2.0 * eps);
        assert!((grads[1][1] - numerical).abs() < 1e-2);
    }
}
