//! Embedding tables: the model-parallel half of a DLRM.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A hash-bucketed embedding table.
///
/// Ids are mapped to rows by modulo (the reader's hash-bucketize transform
/// already spreads them), and each row is an `dim`-dimensional vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingTable {
    weights: Vec<f32>,
    rows: usize,
    dim: usize,
    /// Number of single-row lookups performed since creation (the paper's
    /// "EMB lookups" — the quantity O5 reduces).
    lookups: u64,
}

impl EmbeddingTable {
    /// Creates a table of `rows` x `dim` with small random initial values.
    pub fn new(rows: usize, dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = rows.max(1);
        let dim = dim.max(1);
        let weights = (0..rows * dim)
            .map(|_| rng.gen_range(-0.01..0.01))
            .collect();
        Self {
            weights,
            rows,
            dim,
            lookups: 0,
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows (hash buckets).
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Bytes of parameter memory held by the table.
    pub fn parameter_bytes(&self) -> usize {
        self.weights.len() * 4
    }

    /// Number of single-row lookups performed so far.
    pub fn lookup_count(&self) -> u64 {
        self.lookups
    }

    /// Resets the lookup counter.
    pub fn reset_lookup_count(&mut self) {
        self.lookups = 0;
    }

    fn row_index(&self, id: u64) -> usize {
        (id % self.rows as u64) as usize
    }

    /// Looks up one id's embedding row.
    pub fn lookup(&mut self, id: u64) -> &[f32] {
        self.lookups += 1;
        let r = self.row_index(id);
        &self.weights[r * self.dim..(r + 1) * self.dim]
    }

    /// Sum-pools the embeddings of an id list into `out` (which must have
    /// length `dim`). Returns the number of lookups performed.
    pub fn lookup_pooled_into(&mut self, ids: &[u64], out: &mut [f32]) -> usize {
        debug_assert_eq!(out.len(), self.dim);
        out.fill(0.0);
        for &id in ids {
            let r = self.row_index(id);
            let row = &self.weights[r * self.dim..(r + 1) * self.dim];
            for (o, w) in out.iter_mut().zip(row) {
                *o += w;
            }
        }
        self.lookups += ids.len() as u64;
        ids.len()
    }

    /// Sum-pools the embeddings of an id list, returning a fresh vector.
    pub fn lookup_pooled(&mut self, ids: &[u64]) -> Vec<f32> {
        let mut out = vec![0.0; self.dim];
        self.lookup_pooled_into(ids, &mut out);
        out
    }

    /// Looks up every id of a list as separate (unpooled) embedding vectors —
    /// the input of sequence pooling modules.
    pub fn lookup_sequence(&mut self, ids: &[u64]) -> Vec<Vec<f32>> {
        self.lookups += ids.len() as u64;
        ids.iter()
            .map(|&id| {
                let r = self.row_index(id);
                self.weights[r * self.dim..(r + 1) * self.dim].to_vec()
            })
            .collect()
    }

    /// SGD update for a sum-pooled lookup: every id in the list receives the
    /// same gradient (the gradient of the pooled output).
    pub fn apply_pooled_gradient(&mut self, ids: &[u64], grad: &[f32], learning_rate: f32) {
        debug_assert_eq!(grad.len(), self.dim);
        for &id in ids {
            let r = self.row_index(id);
            let row = &mut self.weights[r * self.dim..(r + 1) * self.dim];
            for (w, g) in row.iter_mut().zip(grad) {
                *w -= learning_rate * g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_pooling_are_consistent() {
        let mut table = EmbeddingTable::new(100, 8, 3);
        assert_eq!(table.dim(), 8);
        assert_eq!(table.row_count(), 100);
        assert_eq!(table.parameter_bytes(), 100 * 8 * 4);

        let a = table.lookup(5).to_vec();
        let b = table.lookup(105).to_vec();
        assert_eq!(a, b, "ids map to rows modulo the table size");

        let pooled = table.lookup_pooled(&[5, 5]);
        let expected: Vec<f32> = a.iter().map(|v| v * 2.0).collect();
        for (p, e) in pooled.iter().zip(&expected) {
            assert!((p - e).abs() < 1e-6);
        }
        let seq = table.lookup_sequence(&[5, 7]);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0], a);
    }

    #[test]
    fn lookup_counter_tracks_work() {
        let mut table = EmbeddingTable::new(10, 4, 0);
        table.lookup(1);
        table.lookup_pooled(&[1, 2, 3]);
        table.lookup_sequence(&[4, 5]);
        assert_eq!(table.lookup_count(), 6);
        table.reset_lookup_count();
        assert_eq!(table.lookup_count(), 0);
    }

    #[test]
    fn pooled_gradient_moves_the_rows() {
        let mut table = EmbeddingTable::new(10, 4, 0);
        let before = table.lookup(3).to_vec();
        table.apply_pooled_gradient(&[3], &[1.0, 1.0, 1.0, 1.0], 0.5);
        let after = table.lookup(3).to_vec();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_list_pools_to_zero() {
        let mut table = EmbeddingTable::new(10, 4, 0);
        assert_eq!(table.lookup_pooled(&[]), vec![0.0; 4]);
    }

    #[test]
    fn degenerate_sizes_are_clamped() {
        let table = EmbeddingTable::new(0, 0, 0);
        assert_eq!(table.row_count(), 1);
        assert_eq!(table.dim(), 1);
    }
}
