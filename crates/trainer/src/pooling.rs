//! Pooling modules that aggregate a sequence of embedding vectors into one
//! vector per row.
//!
//! Element-wise pooling (sum/mean/max) is cheap; sequence models pool with
//! attention or small transformers, which is exactly the compute RecD's O7
//! deduplicates by running the module once per IKJT slot instead of once per
//! batch row.

use serde::{Deserialize, Serialize};

/// The pooling function applied to a feature's embedding sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PoolingKind {
    /// Element-wise sum.
    #[default]
    Sum,
    /// Element-wise mean.
    Mean,
    /// Element-wise max.
    Max,
    /// Single-query dot-product attention over the sequence.
    Attention,
    /// One self-attention layer plus a feed-forward layer, mean-pooled — the
    /// "expensive transformer pooling" of RM1.
    Transformer,
}

/// FLOP accounting for one pooling invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PoolingCost {
    /// Multiply-accumulate operations performed.
    pub flops: u64,
    /// Rows (sequences) pooled.
    pub rows: usize,
}

impl PoolingKind {
    /// Analytical FLOPs for pooling one sequence of `len` embeddings of
    /// dimension `dim`. Used by the trainer cost model.
    pub fn flops_per_row(&self, len: usize, dim: usize) -> u64 {
        let len = len as u64;
        let dim = dim as u64;
        match self {
            PoolingKind::Sum | PoolingKind::Mean | PoolingKind::Max => len * dim,
            // score = e_i . q  (len*dim), softmax (~3*len), weighted sum (len*dim)
            PoolingKind::Attention => 2 * len * dim + 3 * len,
            // QKV projections (3*len*dim^2), scores (len^2*dim), weighted sum
            // (len^2*dim), FFN (2*len*dim^2).
            PoolingKind::Transformer => 5 * len * dim * dim + 2 * len * len * dim,
        }
    }

    /// Whether this pooling kind is one of the expensive sequence modules
    /// whose compute O7 deduplicates.
    pub fn is_sequence_module(&self) -> bool {
        matches!(self, PoolingKind::Attention | PoolingKind::Transformer)
    }
}

fn softmax_in_place(scores: &mut [f32]) {
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    if sum > 0.0 {
        for s in scores.iter_mut() {
            *s /= sum;
        }
    }
}

/// Pools one sequence of embedding vectors into a single vector, returning
/// the pooled vector and the FLOPs spent.
///
/// An empty sequence pools to the zero vector.
pub fn pool_sequence(
    kind: PoolingKind,
    sequence: &[Vec<f32>],
    dim: usize,
) -> (Vec<f32>, PoolingCost) {
    let cost = PoolingCost {
        flops: kind.flops_per_row(sequence.len(), dim),
        rows: 1,
    };
    if sequence.is_empty() {
        return (vec![0.0; dim], cost);
    }
    let pooled = match kind {
        PoolingKind::Sum => {
            let mut out = vec![0.0f32; dim];
            for e in sequence {
                for (o, v) in out.iter_mut().zip(e) {
                    *o += v;
                }
            }
            out
        }
        PoolingKind::Mean => {
            let mut out = vec![0.0f32; dim];
            for e in sequence {
                for (o, v) in out.iter_mut().zip(e) {
                    *o += v;
                }
            }
            let n = sequence.len() as f32;
            for o in &mut out {
                *o /= n;
            }
            out
        }
        PoolingKind::Max => {
            let mut out = vec![f32::NEG_INFINITY; dim];
            for e in sequence {
                for (o, v) in out.iter_mut().zip(e) {
                    *o = o.max(*v);
                }
            }
            out
        }
        PoolingKind::Attention => {
            // Query = mean of the sequence; attention weights from dot products.
            let mut query = vec![0.0f32; dim];
            for e in sequence {
                for (q, v) in query.iter_mut().zip(e) {
                    *q += v;
                }
            }
            let n = sequence.len() as f32;
            for q in &mut query {
                *q /= n;
            }
            let scale = 1.0 / (dim as f32).sqrt();
            let mut scores: Vec<f32> = sequence
                .iter()
                .map(|e| e.iter().zip(&query).map(|(a, b)| a * b).sum::<f32>() * scale)
                .collect();
            softmax_in_place(&mut scores);
            let mut out = vec![0.0f32; dim];
            for (e, &w) in sequence.iter().zip(&scores) {
                for (o, v) in out.iter_mut().zip(e) {
                    *o += w * v;
                }
            }
            out
        }
        PoolingKind::Transformer => {
            // One round of scaled dot-product self-attention (weights tied to
            // the identity projection to stay parameter-free), followed by a
            // squared-ReLU feed-forward, then mean pooling.
            let scale = 1.0 / (dim as f32).sqrt();
            let mut attended: Vec<Vec<f32>> = Vec::with_capacity(sequence.len());
            for q in sequence {
                let mut scores: Vec<f32> = sequence
                    .iter()
                    .map(|k| q.iter().zip(k).map(|(a, b)| a * b).sum::<f32>() * scale)
                    .collect();
                softmax_in_place(&mut scores);
                let mut out = vec![0.0f32; dim];
                for (v, &w) in sequence.iter().zip(&scores) {
                    for (o, x) in out.iter_mut().zip(v) {
                        *o += w * x;
                    }
                }
                // Feed-forward: squared ReLU with a residual connection.
                for (o, x) in out.iter_mut().zip(q) {
                    let h = (*o).max(0.0);
                    *o = x + h * h;
                }
                attended.push(out);
            }
            let mut out = vec![0.0f32; dim];
            for e in &attended {
                for (o, v) in out.iter_mut().zip(e) {
                    *o += v;
                }
            }
            let n = attended.len() as f32;
            for o in &mut out {
                *o /= n;
            }
            out
        }
    };
    (pooled, cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sequence() -> Vec<Vec<f32>> {
        vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 0.0]]
    }

    #[test]
    fn elementwise_pooling_values() {
        let (sum, _) = pool_sequence(PoolingKind::Sum, &sequence(), 2);
        assert_eq!(sum, vec![9.0, 6.0]);
        let (mean, _) = pool_sequence(PoolingKind::Mean, &sequence(), 2);
        assert_eq!(mean, vec![3.0, 2.0]);
        let (max, _) = pool_sequence(PoolingKind::Max, &sequence(), 2);
        assert_eq!(max, vec![5.0, 4.0]);
    }

    #[test]
    fn attention_output_is_a_convex_combination() {
        let (out, cost) = pool_sequence(PoolingKind::Attention, &sequence(), 2);
        // Each output coordinate must lie within the min/max of inputs.
        for d in 0..2 {
            let min = sequence()
                .iter()
                .map(|e| e[d])
                .fold(f32::INFINITY, f32::min);
            let max = sequence()
                .iter()
                .map(|e| e[d])
                .fold(f32::NEG_INFINITY, f32::max);
            assert!(out[d] >= min - 1e-5 && out[d] <= max + 1e-5);
        }
        assert!(cost.flops > 0);
    }

    #[test]
    fn transformer_pooling_is_deterministic_and_costly() {
        let (a, cost_a) = pool_sequence(PoolingKind::Transformer, &sequence(), 2);
        let (b, _) = pool_sequence(PoolingKind::Transformer, &sequence(), 2);
        assert_eq!(a, b);
        let sum_cost = PoolingKind::Sum.flops_per_row(3, 2);
        assert!(
            cost_a.flops > sum_cost,
            "transformer must be far more expensive"
        );
        assert!(PoolingKind::Transformer.is_sequence_module());
        assert!(!PoolingKind::Sum.is_sequence_module());
    }

    #[test]
    fn flops_scale_with_length_and_dim() {
        let short = PoolingKind::Transformer.flops_per_row(10, 64);
        let long = PoolingKind::Transformer.flops_per_row(100, 64);
        assert!(long > short * 9);
        let narrow = PoolingKind::Attention.flops_per_row(10, 16);
        let wide = PoolingKind::Attention.flops_per_row(10, 128);
        assert!(wide > narrow);
    }

    #[test]
    fn empty_sequence_pools_to_zero() {
        for kind in [
            PoolingKind::Sum,
            PoolingKind::Mean,
            PoolingKind::Max,
            PoolingKind::Attention,
            PoolingKind::Transformer,
        ] {
            let (out, _) = pool_sequence(kind, &[], 3);
            assert_eq!(out, vec![0.0; 3]);
        }
    }
}
