//! Minimal dense neural-network primitives: linear layers, MLPs, and the
//! binary cross-entropy loss, with enough backward support for SGD training.

use rand::rngs::StdRng;
use rand::Rng;
#[cfg(test)]
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A fully-connected layer `y = relu(W x + b)` (the final layer of an MLP can
/// disable the ReLU).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Weights, row-major `[out, in]`.
    weights: Vec<f32>,
    bias: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
    relu: bool,
}

impl Linear {
    /// Creates a layer with Xavier-style initialization from a seeded RNG.
    pub fn new(in_dim: usize, out_dim: usize, relu: bool, rng: &mut StdRng) -> Self {
        let scale = (2.0 / (in_dim + out_dim) as f32).sqrt();
        let weights = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        let bias = vec![0.0; out_dim];
        Self {
            weights,
            bias,
            in_dim,
            out_dim,
            relu,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass for one input vector.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        debug_assert_eq!(input.len(), self.in_dim);
        let mut out = vec![0.0f32; self.out_dim];
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.bias[o];
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            *out_v = if self.relu { acc.max(0.0) } else { acc };
        }
        out
    }

    /// Backward pass for one example: given the upstream gradient and the
    /// cached input/output, updates weights with SGD and returns the gradient
    /// with respect to the input.
    pub fn backward(
        &mut self,
        input: &[f32],
        output: &[f32],
        grad_output: &[f32],
        learning_rate: f32,
    ) -> Vec<f32> {
        let mut grad_input = vec![0.0f32; self.in_dim];
        for o in 0..self.out_dim {
            // ReLU gate.
            let g = if self.relu && output[o] <= 0.0 {
                0.0
            } else {
                grad_output[o]
            };
            if g == 0.0 {
                continue;
            }
            let row = &mut self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            for (i, (w, &x)) in row.iter_mut().zip(input).enumerate() {
                grad_input[i] += *w * g;
                *w -= learning_rate * g * x;
            }
            self.bias[o] -= learning_rate * g;
        }
        grad_input
    }

    /// Multiply-accumulate count of one forward pass.
    pub fn flops(&self) -> u64 {
        2 * self.in_dim as u64 * self.out_dim as u64
    }

    /// Number of parameters in the layer.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

/// A multi-layer perceptron: a stack of [`Linear`] layers with ReLU between
/// layers and a linear final layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes, e.g. `[64, 32, 1]` builds
    /// two layers `in→64→32→1`... more precisely `dims[0]` is the input size
    /// and each subsequent entry a layer output size.
    pub fn new(dims: &[usize], rng: &mut StdRng) -> Self {
        assert!(dims.len() >= 2, "an mlp needs an input and an output size");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(w[0], w[1], i + 2 < dims.len(), rng))
            .collect();
        Self { layers }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("at least one layer").out_dim()
    }

    /// Forward pass, returning every layer's input plus the final output
    /// (needed for the backward pass).
    pub fn forward_cached(&self, input: &[f32]) -> Vec<Vec<f32>> {
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(input.to_vec());
        for layer in &self.layers {
            let next = layer.forward(activations.last().expect("non-empty"));
            activations.push(next);
        }
        activations
    }

    /// Forward pass returning only the output.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        self.forward_cached(input).pop().expect("non-empty")
    }

    /// Backward pass for one example; updates parameters with SGD and
    /// returns the gradient with respect to the MLP input.
    pub fn backward(
        &mut self,
        activations: &[Vec<f32>],
        grad_output: &[f32],
        learning_rate: f32,
    ) -> Vec<f32> {
        let mut grad = grad_output.to_vec();
        for (idx, layer) in self.layers.iter_mut().enumerate().rev() {
            grad = layer.backward(
                &activations[idx],
                &activations[idx + 1],
                &grad,
                learning_rate,
            );
        }
        grad
    }

    /// Multiply-accumulate count of one forward pass.
    pub fn flops(&self) -> u64 {
        self.layers.iter().map(Linear::flops).sum()
    }

    /// Number of parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Linear::parameter_count).sum()
    }
}

/// Numerically-stable sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Binary cross-entropy loss for one prediction (post-sigmoid probability).
pub fn bce_loss(probability: f32, label: f32) -> f32 {
    let p = probability.clamp(1e-7, 1.0 - 1e-7);
    -(label * p.ln() + (1.0 - label) * (1.0 - p).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn linear_forward_shapes_and_relu() {
        let layer = Linear::new(3, 2, true, &mut rng());
        let out = layer.forward(&[1.0, -2.0, 0.5]);
        assert_eq!(out.len(), 2);
        assert!(
            out.iter().all(|&v| v >= 0.0),
            "relu output must be non-negative"
        );
        assert_eq!(layer.flops(), 12);
        assert_eq!(layer.parameter_count(), 8);
    }

    #[test]
    fn mlp_forward_and_dimensions() {
        let mlp = Mlp::new(&[4, 8, 1], &mut rng());
        assert_eq!(mlp.in_dim(), 4);
        assert_eq!(mlp.out_dim(), 1);
        let out = mlp.forward(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(out.len(), 1);
        assert!(mlp.flops() > 0);
        assert!(mlp.parameter_count() > 0);
    }

    #[test]
    fn sgd_reduces_loss_on_a_learnable_problem() {
        // Learn y = 1 if x0 > x1 else 0.
        let mut mlp = Mlp::new(&[2, 8, 1], &mut rng());
        let mut data_rng = StdRng::seed_from_u64(9);
        let mut initial_loss = 0.0;
        let mut final_loss = 0.0;
        for epoch in 0..300 {
            let mut epoch_loss = 0.0;
            for _ in 0..32 {
                let x = [
                    data_rng.gen_range(0.0..1.0f32),
                    data_rng.gen_range(0.0..1.0f32),
                ];
                let label = if x[0] > x[1] { 1.0 } else { 0.0 };
                let activations = mlp.forward_cached(&x);
                let logit = activations.last().unwrap()[0];
                let p = sigmoid(logit);
                epoch_loss += bce_loss(p, label);
                // dL/dlogit = p - label for sigmoid + BCE.
                mlp.backward(&activations, &[p - label], 0.1);
            }
            if epoch == 0 {
                initial_loss = epoch_loss;
            }
            final_loss = epoch_loss;
        }
        assert!(
            final_loss < initial_loss * 0.6,
            "training should reduce loss: {initial_loss} -> {final_loss}"
        );
    }

    #[test]
    fn sigmoid_and_bce_are_stable_at_extremes() {
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!(bce_loss(1.0, 1.0) < 1e-5);
        assert!(bce_loss(0.0, 1.0) > 10.0);
        assert!(bce_loss(0.0, 0.0) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "an mlp needs an input and an output size")]
    fn mlp_requires_two_dims() {
        Mlp::new(&[4], &mut rng());
    }
}
