//! # recd-core
//!
//! The primary contribution of the RecD paper (MLSys 2023), implemented as a
//! standalone library: deduplicated tensor formats for DLRM sparse features
//! and the operators that produce and consume them.
//!
//! * [`JaggedTensor`] — a tensor with one variable-length (jagged) dimension,
//!   stored as a flat `values` slice plus an `offsets` slice.
//! * [`KeyedJaggedTensor`] (KJT) — the conventional TorchRec-style container
//!   mapping feature keys to jagged tensors; one jagged row per sample.
//! * [`InverseKeyedJaggedTensor`] (IKJT) — RecD's new format: the jagged rows
//!   are *deduplicated slots*, and a shared `inverse_lookup` slice maps each
//!   sample back to its slot (paper §4.2). Grouped IKJTs deduplicate several
//!   synchronously-updated features against one shared `inverse_lookup`.
//!   Partial IKJTs (paper §7) additionally capture shifted lists.
//! * [`FeatureConverter`] — the reader-side feature-conversion step that
//!   turns a batch of rows into KJTs and IKJTs, detecting duplicates by
//!   hashing (O3).
//! * [`jagged_index_select`] — index select directly over jagged tensors,
//!   avoiding the densify-then-select memory blowup (O6).
//! * [`DedupeModel`] — the analytical `DedupeLen` / `DedupeFactor` model used
//!   to decide which features are worth deduplicating (§4.2, §7).
//!
//! # Quickstart
//!
//! ```
//! use recd_core::{DataLoaderConfig, FeatureConverter};
//! use recd_data::{FeatureId, RequestId, Sample, SessionId, Timestamp};
//!
//! // Three samples from one session; feature 0 never changes, feature 1 does.
//! let rows = vec![
//!     (vec![1, 2, 3], vec![10]),
//!     (vec![1, 2, 3], vec![11]),
//!     (vec![1, 2, 3], vec![12]),
//! ];
//! let samples: Vec<Sample> = rows
//!     .into_iter()
//!     .enumerate()
//!     .map(|(i, (f0, f1))| {
//!         Sample::builder(SessionId::new(1), RequestId::new(i as u64), Timestamp::from_millis(i as u64))
//!             .sparse(vec![f0, f1])
//!             .build()
//!     })
//!     .collect();
//!
//! let config = DataLoaderConfig::new()
//!     .with_kjt_features([FeatureId::new(1)])
//!     .with_dedup_group([FeatureId::new(0)]);
//! let converted = FeatureConverter::new(config).convert(&samples.into_iter().collect())?;
//!
//! // The deduplicated feature stores one slot for three rows.
//! let ikjt = &converted.ikjts[0];
//! assert_eq!(ikjt.batch_size(), 3);
//! assert_eq!(ikjt.slot_count(), 1);
//! assert!(ikjt.dedupe_factor() > 2.9);
//! # Ok::<(), recd_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod dedupe_factor;
pub mod dense;
pub mod error;
pub mod ikjt;
pub mod jagged;
pub mod kjt;
pub mod partial;
pub mod select;
pub mod stats;

pub use convert::{ConvertedBatch, DataLoaderConfig, FeatureConverter};
pub use dedupe_factor::{DedupeModel, FeatureDedupeEstimate};
pub use dense::DenseMatrix;
pub use error::CoreError;
pub use ikjt::{DedupScratch, InverseKeyedJaggedTensor};
pub use jagged::JaggedTensor;
pub use kjt::KeyedJaggedTensor;
pub use partial::PartialIkjt;
pub use select::{dense_index_select, jagged_index_select, DenseSelectCost};
pub use stats::{BatchDedupStats, FeatureDedupStats};

/// A convenient result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
