//! The analytical `DedupeLen` / `DedupeFactor` model (paper §4.2).
//!
//! For a feature `f` with average list length `l(f)`, per-batch size `B`,
//! average samples per session `S`, and probability `d(f)` that the feature's
//! value stays the same across adjacent rows:
//!
//! ```text
//! DedupeLen(f)    = l(f) * B * (1 - (S - 1) / S * d(f))
//! DedupeFactor(f) = l(f) * B / DedupeLen(f)
//! ```
//!
//! `DedupeFactor` is the expected shrinkage of the `values` slice when the
//! feature is encoded as an IKJT, and is the heuristic ML engineers use to
//! decide which features to deduplicate (the paper uses a threshold of 1.5).

use recd_data::{Schema, SparseFeatureSpec};
use serde::{Deserialize, Serialize};

/// The DedupeFactor threshold above which the paper's practitioners typically
/// deduplicate a feature (§4.2, §7).
pub const DEFAULT_WORTH_IT_THRESHOLD: f64 = 1.5;

/// Analytical model of deduplication benefit for a given batch size and
/// session length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DedupeModel {
    /// Training batch size `B`.
    pub batch_size: usize,
    /// Average number of samples per session `S` co-located within a batch.
    pub samples_per_session: f64,
}

impl DedupeModel {
    /// Creates a model. `samples_per_session` is clamped to at least 1.
    pub fn new(batch_size: usize, samples_per_session: f64) -> Self {
        Self {
            batch_size,
            samples_per_session: samples_per_session.max(1.0),
        }
    }

    /// Expected size of the deduplicated `values` slice for a feature with
    /// average length `avg_len` and stay-probability `stay_prob`.
    pub fn dedupe_len(&self, avg_len: f64, stay_prob: f64) -> f64 {
        let s = self.samples_per_session;
        let b = self.batch_size as f64;
        let d = stay_prob.clamp(0.0, 1.0);
        avg_len * b * (1.0 - (s - 1.0) / s * d)
    }

    /// Expected deduplication factor for a feature.
    ///
    /// Returns 1.0 when the feature would have no values at all
    /// (`avg_len * B == 0`).
    pub fn dedupe_factor(&self, avg_len: f64, stay_prob: f64) -> f64 {
        let original = avg_len * self.batch_size as f64;
        if original <= 0.0 {
            return 1.0;
        }
        let dedup = self.dedupe_len(avg_len, stay_prob);
        if dedup <= 0.0 {
            f64::INFINITY
        } else {
            original / dedup
        }
    }

    /// Evaluates the model for one schema feature.
    pub fn estimate(&self, spec: &SparseFeatureSpec) -> FeatureDedupeEstimate {
        let dedupe_len = self.dedupe_len(spec.avg_len, spec.stay_prob);
        let dedupe_factor = self.dedupe_factor(spec.avg_len, spec.stay_prob);
        FeatureDedupeEstimate {
            feature: spec.name.clone(),
            avg_len: spec.avg_len,
            stay_prob: spec.stay_prob,
            original_len: spec.avg_len * self.batch_size as f64,
            dedupe_len,
            dedupe_factor,
        }
    }

    /// Evaluates every sparse feature of a schema and returns the estimates
    /// sorted by descending dedupe factor.
    pub fn estimate_schema(&self, schema: &Schema) -> Vec<FeatureDedupeEstimate> {
        let mut estimates: Vec<FeatureDedupeEstimate> = schema
            .sparse_features()
            .iter()
            .map(|spec| self.estimate(spec))
            .collect();
        estimates.sort_by(|a, b| {
            b.dedupe_factor
                .partial_cmp(&a.dedupe_factor)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        estimates
    }

    /// Returns the names of schema features whose estimated dedupe factor
    /// exceeds `threshold` (use [`DEFAULT_WORTH_IT_THRESHOLD`] for the
    /// paper's heuristic).
    pub fn recommend(&self, schema: &Schema, threshold: f64) -> Vec<String> {
        self.estimate_schema(schema)
            .into_iter()
            .filter(|e| e.dedupe_factor > threshold)
            .map(|e| e.feature)
            .collect()
    }
}

/// The analytical estimate for one feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureDedupeEstimate {
    /// Feature name.
    pub feature: String,
    /// Average list length `l(f)`.
    pub avg_len: f64,
    /// Stay probability `d(f)`.
    pub stay_prob: f64,
    /// Expected original `values` length per batch (`l(f) * B`).
    pub original_len: f64,
    /// Expected deduplicated `values` length per batch.
    pub dedupe_len: f64,
    /// Expected deduplication factor.
    pub dedupe_factor: f64,
}

impl FeatureDedupeEstimate {
    /// Whether the feature clears the paper's default "worth it" threshold.
    pub fn is_worth_deduplicating(&self) -> bool {
        self.dedupe_factor > DEFAULT_WORTH_IT_THRESHOLD
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_data::FeatureClass;

    #[test]
    fn paper_worked_example() {
        // Paper §4.2: B = S = 3, l(b) = 3, d(b) = 0.5 gives DedupeLen = 6 and
        // DedupeFactor = 1.5.
        let model = DedupeModel::new(3, 3.0);
        assert!((model.dedupe_len(3.0, 0.5) - 6.0).abs() < 1e-9);
        assert!((model.dedupe_factor(3.0, 0.5) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn factor_increases_with_s_l_and_d() {
        let base = DedupeModel::new(4096, 4.0).dedupe_factor(100.0, 0.8);
        assert!(DedupeModel::new(4096, 16.0).dedupe_factor(100.0, 0.8) > base);
        assert!(DedupeModel::new(4096, 4.0).dedupe_factor(100.0, 0.95) > base);
        // Length cancels in the factor but the absolute savings grow; the
        // factor itself must not decrease with length.
        assert!(DedupeModel::new(4096, 4.0).dedupe_factor(1000.0, 0.8) >= base - 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        let model = DedupeModel::new(0, 1.0);
        assert_eq!(model.dedupe_factor(10.0, 0.9), 1.0);
        let model = DedupeModel::new(4096, 1.0);
        // S = 1: nothing to deduplicate.
        assert!((model.dedupe_factor(10.0, 0.99) - 1.0).abs() < 1e-9);
        // d clamped into [0, 1].
        let model = DedupeModel::new(16, 4.0);
        assert_eq!(model.dedupe_len(1.0, 2.0), model.dedupe_len(1.0, 1.0));
        // Perfect duplication with huge sessions approaches factor S.
        let model = DedupeModel::new(4096, 16.5);
        let f = model.dedupe_factor(100.0, 1.0);
        assert!((f - 16.5).abs() < 1e-9);
    }

    #[test]
    fn schema_estimates_and_recommendation() {
        let schema = Schema::builder()
            .sparse("user_seq", FeatureClass::User, 200.0, 0.95, 1 << 20)
            .sparse("item_id", FeatureClass::Item, 1.0, 0.05, 1 << 24)
            .build()
            .unwrap();
        let model = DedupeModel::new(4096, 16.5);
        let estimates = model.estimate_schema(&schema);
        assert_eq!(estimates.len(), 2);
        assert_eq!(estimates[0].feature, "user_seq");
        assert!(estimates[0].is_worth_deduplicating());
        assert!(!estimates[1].is_worth_deduplicating());
        assert_eq!(
            model.recommend(&schema, DEFAULT_WORTH_IT_THRESHOLD),
            vec!["user_seq".to_string()]
        );
    }
}
