//! Index-select operators over jagged tensors.
//!
//! Before RecD, converting an IKJT back to a KJT required densifying jagged
//! tensors (padding every row to the maximum length) so that
//! `torch.index_select` could operate on them — a large transient memory
//! cost for long-sequence features. RecD's `jagged index select` (O6)
//! gathers rows directly in the jagged representation. Both paths are
//! implemented here so the memory-overhead comparison can be measured.

use crate::jagged::JaggedTensor;
use crate::{CoreError, Result};

/// Gathers rows of a jagged tensor by index, directly in jagged form (O6).
///
/// `indices[i]` selects the row of `tensor` that becomes row `i` of the
/// output; indices may repeat (that is exactly how an IKJT's
/// `inverse_lookup` expands slots back to batch rows).
///
/// # Errors
///
/// Returns [`CoreError::IndexOutOfRange`] if an index exceeds the tensor's
/// row count.
///
/// # Example
///
/// ```
/// use recd_core::{jagged_index_select, JaggedTensor};
///
/// let slots = JaggedTensor::from_lists(&[vec![7u64, 8], vec![10]]);
/// let expanded = jagged_index_select(&slots, &[0, 0, 1])?;
/// assert_eq!(expanded.row(1), &[7, 8]);
/// assert_eq!(expanded.row(2), &[10]);
/// # Ok::<(), recd_core::CoreError>(())
/// ```
pub fn jagged_index_select<T: Clone>(
    tensor: &JaggedTensor<T>,
    indices: &[usize],
) -> Result<JaggedTensor<T>> {
    let rows = tensor.row_count();
    let mut out_values = Vec::with_capacity(
        indices
            .iter()
            .map(|&i| tensor.get(i).map_or(0, <[T]>::len))
            .sum(),
    );
    let mut out_offsets = Vec::with_capacity(indices.len() + 1);
    out_offsets.push(0);
    for &index in indices {
        let row = tensor
            .get(index)
            .ok_or(CoreError::IndexOutOfRange { index, rows })?;
        out_values.extend_from_slice(row);
        out_offsets.push(out_values.len());
    }
    JaggedTensor::from_parts(out_values, out_offsets)
}

/// Accounting for the dense (pre-RecD) index-select path: the jagged tensor
/// is first padded to a dense `[rows, max_len]` matrix, the select runs on
/// the dense matrix, and the result is re-jaggedized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DenseSelectCost {
    /// Elements materialized for the padded dense input matrix.
    pub dense_input_elements: usize,
    /// Elements materialized for the padded dense output matrix.
    pub dense_output_elements: usize,
    /// Elements of real (non-padding) data in the input.
    pub real_input_elements: usize,
}

impl DenseSelectCost {
    /// Total transient elements materialized by the dense path.
    pub fn total_dense_elements(&self) -> usize {
        self.dense_input_elements + self.dense_output_elements
    }

    /// Padding overhead factor: dense elements divided by real elements.
    /// Returns 1.0 when there is no real data.
    pub fn overhead_factor(&self) -> f64 {
        if self.real_input_elements == 0 {
            1.0
        } else {
            self.total_dense_elements() as f64 / self.real_input_elements as f64
        }
    }
}

/// Performs an index select by densifying first (the pre-RecD path), and
/// reports the transient memory it had to materialize.
///
/// The output tensor is identical to [`jagged_index_select`]'s; the point of
/// this function is the [`DenseSelectCost`] it returns, which quantifies the
/// memory overhead that O6 eliminates.
///
/// # Errors
///
/// Returns [`CoreError::IndexOutOfRange`] if an index exceeds the tensor's
/// row count.
pub fn dense_index_select(
    tensor: &JaggedTensor<u64>,
    indices: &[usize],
) -> Result<(JaggedTensor<u64>, DenseSelectCost)> {
    let rows = tensor.row_count();
    let max_len = tensor.max_row_len();

    // Densify: rows x max_len matrix with zero padding, plus a lengths vector.
    let mut dense = vec![0u64; rows * max_len];
    let mut lengths = vec![0usize; rows];
    for (i, row) in tensor.iter().enumerate() {
        dense[i * max_len..i * max_len + row.len()].copy_from_slice(row);
        lengths[i] = row.len();
    }

    // Dense index select.
    let mut selected = vec![0u64; indices.len() * max_len];
    let mut selected_lengths = vec![0usize; indices.len()];
    for (out_row, &index) in indices.iter().enumerate() {
        if index >= rows {
            return Err(CoreError::IndexOutOfRange { index, rows });
        }
        selected[out_row * max_len..(out_row + 1) * max_len]
            .copy_from_slice(&dense[index * max_len..(index + 1) * max_len]);
        selected_lengths[out_row] = lengths[index];
    }

    // Re-jaggedize.
    let mut out = JaggedTensor::new();
    for (out_row, &len) in selected_lengths.iter().enumerate() {
        out.push_row(&selected[out_row * max_len..out_row * max_len + len]);
    }

    let cost = DenseSelectCost {
        dense_input_elements: dense.len(),
        dense_output_elements: selected.len(),
        real_input_elements: tensor.value_count(),
    };
    Ok((out, cost))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slots() -> JaggedTensor<u64> {
        JaggedTensor::from_lists(&[vec![7, 8], vec![10], vec![], vec![1, 2, 3, 4]])
    }

    #[test]
    fn jagged_select_gathers_and_repeats() {
        let out = jagged_index_select(&slots(), &[3, 0, 0, 2]).unwrap();
        assert_eq!(out.row_count(), 4);
        assert_eq!(out.row(0), &[1, 2, 3, 4]);
        assert_eq!(out.row(1), &[7, 8]);
        assert_eq!(out.row(2), &[7, 8]);
        assert_eq!(out.row(3), &[] as &[u64]);
    }

    #[test]
    fn jagged_select_empty_indices() {
        let out = jagged_index_select(&slots(), &[]).unwrap();
        assert_eq!(out.row_count(), 0);
        assert_eq!(out.value_count(), 0);
    }

    #[test]
    fn out_of_range_index_is_an_error() {
        assert!(matches!(
            jagged_index_select(&slots(), &[0, 4]),
            Err(CoreError::IndexOutOfRange { index: 4, rows: 4 })
        ));
        assert!(matches!(
            dense_index_select(&slots(), &[9]),
            Err(CoreError::IndexOutOfRange { index: 9, .. })
        ));
    }

    #[test]
    fn dense_and_jagged_selects_agree() {
        let indices = [0usize, 1, 1, 3, 2, 0];
        let jagged = jagged_index_select(&slots(), &indices).unwrap();
        let (dense, _) = dense_index_select(&slots(), &indices).unwrap();
        assert_eq!(jagged, dense);
    }

    #[test]
    fn dense_select_cost_reflects_padding_blowup() {
        // One long row (1000 ids) and 63 single-id rows: dense padding
        // materializes 64 * 1000 elements for 1063 real ones.
        let mut rows = vec![vec![0u64; 1000]];
        rows.extend((0..63u64).map(|i| vec![i]));
        let tensor = JaggedTensor::from_lists(&rows);
        let indices: Vec<usize> = (0..64).collect();
        let (_, cost) = dense_index_select(&tensor, &indices).unwrap();
        assert_eq!(cost.dense_input_elements, 64 * 1000);
        assert_eq!(cost.dense_output_elements, 64 * 1000);
        assert_eq!(cost.real_input_elements, 1063);
        assert!(cost.overhead_factor() > 100.0);
    }

    #[test]
    fn dense_cost_empty_tensor() {
        let tensor: JaggedTensor<u64> = JaggedTensor::new();
        let (out, cost) = dense_index_select(&tensor, &[]).unwrap();
        assert!(out.is_empty());
        assert_eq!(cost.overhead_factor(), 1.0);
        assert_eq!(cost.total_dense_elements(), 0);
    }
}
