//! Dense feature matrices (batch-major float features).

use crate::{CoreError, Result};
use recd_data::{ColumnarBatch, SampleBatch};
use serde::{Deserialize, Serialize};

/// A row-major `[batch_size, feature_count]` matrix of dense feature values.
///
/// Dense features flow through the pipeline unchanged by RecD (deduplication
/// targets sparse features), but the trainer's bottom MLP consumes them, so
/// the converter materializes them alongside the sparse tensors.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DenseMatrix {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl DenseMatrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BatchSizeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(data: Vec<f32>, rows: usize, cols: usize) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(CoreError::BatchSizeMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self { data, rows, cols })
    }

    /// Extracts the dense features of a batch into a matrix. Samples with
    /// fewer dense values than `cols` are zero-padded; extra values are
    /// ignored.
    pub fn from_batch(batch: &SampleBatch, cols: usize) -> Self {
        let mut m = Self::zeros(batch.len(), cols);
        for (i, sample) in batch.iter().enumerate() {
            let n = sample.dense.len().min(cols);
            m.data[i * cols..i * cols + n].copy_from_slice(&sample.dense[..n]);
        }
        m
    }

    /// Extracts the dense features of a columnar batch. When the batch's
    /// dense width already matches `cols` (the common, schema-driven case)
    /// this is a single flat buffer copy; otherwise rows are zero-padded or
    /// truncated like [`DenseMatrix::from_batch`].
    pub fn from_columnar(batch: &ColumnarBatch, cols: usize) -> Self {
        let mut m = Self::default();
        m.assign_from_columnar(batch, cols);
        m
    }

    /// Refills the matrix from a columnar batch, reusing its existing
    /// buffer — the allocation-free counterpart of
    /// [`DenseMatrix::from_columnar`] for recycled
    /// [`ConvertedBatch`](crate::ConvertedBatch) shells.
    pub fn assign_from_columnar(&mut self, batch: &ColumnarBatch, cols: usize) {
        self.rows = batch.len();
        self.cols = cols;
        self.data.clear();
        if batch.dense_cols() == cols {
            self.data.extend_from_slice(batch.dense_values());
            return;
        }
        self.data.resize(batch.len() * cols, 0.0);
        for i in 0..batch.len() {
            let row = batch.dense_row(i);
            let n = row.len().min(cols);
            self.data[i * cols..i * cols + n].copy_from_slice(&row[..n]);
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns true if the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrows the full row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the full row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Size of the matrix payload in bytes (4 bytes per element).
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_data::{RequestId, Sample, SessionId, Timestamp};

    #[test]
    fn zeros_and_indexing() {
        let mut m = DenseMatrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(!m.is_empty());
        m.row_mut(1)[2] = 5.0;
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.payload_bytes(), 24);
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(DenseMatrix::from_vec(vec![1.0; 6], 2, 3).is_ok());
        assert!(matches!(
            DenseMatrix::from_vec(vec![1.0; 5], 2, 3),
            Err(CoreError::BatchSizeMismatch { .. })
        ));
    }

    #[test]
    fn from_batch_pads_and_truncates() {
        let batch: SampleBatch = vec![
            Sample::builder(
                SessionId::new(1),
                RequestId::new(0),
                Timestamp::from_millis(0),
            )
            .dense(vec![1.0])
            .build(),
            Sample::builder(
                SessionId::new(1),
                RequestId::new(1),
                Timestamp::from_millis(1),
            )
            .dense(vec![2.0, 3.0, 4.0])
            .build(),
        ]
        .into_iter()
        .collect();
        let m = DenseMatrix::from_batch(&batch, 2);
        assert_eq!(m.row(0), &[1.0, 0.0]);
        assert_eq!(m.row(1), &[2.0, 3.0]);
    }
}
