//! Partial IKJTs: deduplication of *shifted* list values (paper §7).
//!
//! Exact-match IKJTs capture the bulk of the duplication in DLRM datasets
//! (81.6% of an estimated 93.9% maximum), but many of the remaining
//! non-exact duplicates are shifts: a user's "last N liked items" list gains
//! one element and drops the oldest, so 99% of its ids are unchanged.
//!
//! A [`PartialIkjt`] removes the per-slot `offsets` slice and instead stores
//! an `[offset, length]` pair per batch row over a shared value pool. A row
//! whose list already appears as a contiguous window of the pool (including
//! windows created by earlier, overlapping rows) stores no new values at all;
//! a row that extends an existing window only stores the non-overlapping
//! suffix.

use crate::jagged::JaggedTensor;
use crate::{CoreError, Result};
use recd_data::FeatureId;
use serde::{Deserialize, Serialize};

/// One row's view into the shared value pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialEntry {
    /// Start of the row's values within the pool.
    pub offset: usize,
    /// Number of values in the row.
    pub len: usize,
}

/// A partially-deduplicated single-feature container.
///
/// # Example
///
/// The paper's Figure 5 feature `b` — `[3,4,5]`, `[4,5,6]`, `[3,4,5]` — packs
/// into the pool `[3,4,5,6]` with entries `[0,3]`, `[1,3]`, `[0,3]`:
///
/// ```
/// use recd_core::PartialIkjt;
/// use recd_data::FeatureId;
///
/// let rows: Vec<Vec<u64>> = vec![vec![3, 4, 5], vec![4, 5, 6], vec![3, 4, 5]];
/// let pikjt = PartialIkjt::dedup_from_rows(FeatureId::new(1), &rows);
/// assert_eq!(pikjt.values(), &[3, 4, 5, 6]);
/// assert_eq!(pikjt.entry(1).unwrap(), (1, 3));
/// assert_eq!(pikjt.row(2), &[3, 4, 5]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialIkjt {
    key: FeatureId,
    values: Vec<u64>,
    entries: Vec<PartialEntry>,
    original_value_count: usize,
}

impl PartialIkjt {
    /// Builds a partial IKJT from a feature's per-row value lists.
    pub fn dedup_from_rows(key: FeatureId, rows: &[Vec<u64>]) -> Self {
        let mut values: Vec<u64> = Vec::new();
        let mut entries = Vec::with_capacity(rows.len());
        let mut original_value_count = 0;

        for row in rows {
            original_value_count += row.len();
            if row.is_empty() {
                entries.push(PartialEntry { offset: 0, len: 0 });
                continue;
            }
            if let Some(offset) = find_subslice(&values, row) {
                entries.push(PartialEntry {
                    offset,
                    len: row.len(),
                });
                continue;
            }
            // Shift case: the longest suffix of the pool that equals a prefix
            // of the row can be reused; only the remainder is appended.
            let overlap = longest_suffix_prefix_overlap(&values, row);
            let offset = values.len() - overlap;
            values.extend_from_slice(&row[overlap..]);
            entries.push(PartialEntry {
                offset,
                len: row.len(),
            });
        }

        Self {
            key,
            values,
            entries,
            original_value_count,
        }
    }

    /// Builds a partial IKJT from one feature of a jagged tensor whose rows
    /// are batch rows.
    pub fn dedup_from_jagged(key: FeatureId, tensor: &JaggedTensor<u64>) -> Self {
        let rows: Vec<Vec<u64>> = tensor.iter().map(<[u64]>::to_vec).collect();
        Self::dedup_from_rows(key, &rows)
    }

    /// The feature this container holds.
    pub fn key(&self) -> FeatureId {
        self.key
    }

    /// Number of batch rows.
    pub fn batch_size(&self) -> usize {
        self.entries.len()
    }

    /// The shared, deduplicated value pool.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The `[offset, length]` entries, one per batch row.
    pub fn entries(&self) -> &[PartialEntry] {
        &self.entries
    }

    /// Returns `(offset, len)` for one row, or `None` if out of range.
    pub fn entry(&self, row: usize) -> Option<(usize, usize)> {
        self.entries.get(row).map(|e| (e.offset, e.len))
    }

    /// The logical value list of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.batch_size()`.
    pub fn row(&self, row: usize) -> &[u64] {
        let e = self.entries[row];
        &self.values[e.offset..e.offset + e.len]
    }

    /// Number of values stored after partial deduplication.
    pub fn dedup_value_count(&self) -> usize {
        self.values.len()
    }

    /// Number of values the raw (KJT) representation would store.
    pub fn original_value_count(&self) -> usize {
        self.original_value_count
    }

    /// Measured deduplication factor (original / stored). Returns 1.0 when
    /// the pool is empty.
    pub fn dedupe_factor(&self) -> f64 {
        if self.values.is_empty() {
            1.0
        } else {
            self.original_value_count as f64 / self.values.len() as f64
        }
    }

    /// Bytes shipped over the network: the value pool plus one
    /// `[offset, len]` pair per row.
    pub fn payload_bytes(&self) -> usize {
        self.values.len() * 8 + self.entries.len() * 16
    }

    /// Expands the container back into a per-row jagged tensor.
    ///
    /// # Errors
    ///
    /// Never fails for a container built by this crate; present for parity
    /// with the exact-match path.
    pub fn to_jagged(&self) -> Result<JaggedTensor<u64>> {
        let mut out = JaggedTensor::new();
        for (i, e) in self.entries.iter().enumerate() {
            if e.offset + e.len > self.values.len() {
                return Err(CoreError::InvalidInverseLookup {
                    row: i,
                    slot: e.offset + e.len,
                    slots: self.values.len(),
                });
            }
            out.push_row(&self.values[e.offset..e.offset + e.len]);
        }
        Ok(out)
    }
}

/// Finds `needle` as a contiguous subslice of `haystack` and returns its
/// starting offset.
fn find_subslice(haystack: &[u64], needle: &[u64]) -> Option<usize> {
    if needle.is_empty() || needle.len() > haystack.len() {
        return None;
    }
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Length of the longest suffix of `pool` that equals a prefix of `row`.
fn longest_suffix_prefix_overlap(pool: &[u64], row: &[u64]) -> usize {
    let max = pool.len().min(row.len());
    for overlap in (1..=max).rev() {
        if pool[pool.len() - overlap..] == row[..overlap] {
            return overlap;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure5_feature_b() {
        let rows = vec![vec![3u64, 4, 5], vec![4, 5, 6], vec![3, 4, 5]];
        let p = PartialIkjt::dedup_from_rows(FeatureId::new(1), &rows);
        assert_eq!(p.values(), &[3, 4, 5, 6]);
        assert_eq!(
            p.entries(),
            &[
                PartialEntry { offset: 0, len: 3 },
                PartialEntry { offset: 1, len: 3 },
                PartialEntry { offset: 0, len: 3 },
            ]
        );
        assert_eq!(p.batch_size(), 3);
        assert_eq!(p.original_value_count(), 9);
        assert_eq!(p.dedup_value_count(), 4);
        assert!((p.dedupe_factor() - 2.25).abs() < 1e-12);
        // Expansion reproduces the original rows exactly.
        let expanded = p.to_jagged().unwrap();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(expanded.row(i), row.as_slice());
            assert_eq!(p.row(i), row.as_slice());
        }
    }

    #[test]
    fn sliding_window_session_history() {
        // A user history of length 5 that shifts by one per impression: each
        // new row adds only one value to the pool.
        let history: Vec<u64> = (0..20).collect();
        let rows: Vec<Vec<u64>> = (0..10).map(|i| history[i..i + 5].to_vec()).collect();
        let p = PartialIkjt::dedup_from_rows(FeatureId::new(0), &rows);
        assert_eq!(p.dedup_value_count(), 14); // 5 + 9 appended singles
        assert_eq!(p.original_value_count(), 50);
        let expanded = p.to_jagged().unwrap();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(expanded.row(i), row.as_slice());
        }
    }

    #[test]
    fn exact_duplicates_store_once() {
        let rows = vec![vec![9u64, 9, 9]; 6];
        let p = PartialIkjt::dedup_from_rows(FeatureId::new(0), &rows);
        assert_eq!(p.dedup_value_count(), 3);
        assert!((p.dedupe_factor() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_rows_fall_back_to_append() {
        let rows = vec![vec![1u64, 2], vec![10, 20], vec![100, 200]];
        let p = PartialIkjt::dedup_from_rows(FeatureId::new(0), &rows);
        assert_eq!(p.dedup_value_count(), 6);
        assert_eq!(p.dedupe_factor(), 1.0);
        assert_eq!(p.row(2), &[100, 200]);
    }

    #[test]
    fn empty_rows_and_empty_batch() {
        let p = PartialIkjt::dedup_from_rows(FeatureId::new(0), &[vec![], vec![1], vec![]]);
        assert_eq!(p.entry(0).unwrap(), (0, 0));
        assert_eq!(p.row(0), &[] as &[u64]);
        assert_eq!(p.row(1), &[1]);
        let empty = PartialIkjt::dedup_from_rows(FeatureId::new(0), &[]);
        assert_eq!(empty.batch_size(), 0);
        assert_eq!(empty.dedupe_factor(), 1.0);
        assert!(empty.to_jagged().unwrap().is_empty());
    }

    #[test]
    fn from_jagged_matches_from_rows() {
        let rows = vec![vec![3u64, 4, 5], vec![4, 5, 6], vec![3, 4, 5]];
        let tensor = JaggedTensor::from_lists(&rows);
        let a = PartialIkjt::dedup_from_jagged(FeatureId::new(1), &tensor);
        let b = PartialIkjt::dedup_from_rows(FeatureId::new(1), &rows);
        assert_eq!(a, b);
    }

    #[test]
    fn payload_accounts_values_and_entries() {
        let rows = vec![vec![1u64, 2, 3], vec![1, 2, 3]];
        let p = PartialIkjt::dedup_from_rows(FeatureId::new(0), &rows);
        assert_eq!(p.payload_bytes(), 3 * 8 + 2 * 16);
    }
}
