//! Jagged tensors: a flat value buffer plus row offsets.

use crate::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// A tensor with one jagged (variable-length) dimension.
///
/// Rows are stored back-to-back in `values`; `offsets` has `rows + 1`
/// entries with `offsets[0] == 0` and `offsets[rows] == values.len()`, so row
/// `i` occupies `values[offsets[i]..offsets[i + 1]]`.
///
/// The paper's figures show the equivalent TorchRec convention where the last
/// offset is implicit; the explicit trailing offset used here removes a
/// special case without changing any of the byte accounting (one extra `u64`
/// per feature per batch).
///
/// # Example
///
/// ```
/// use recd_core::JaggedTensor;
///
/// let jt = JaggedTensor::from_lists(&[vec![1u64, 2], vec![], vec![7, 8, 9]]);
/// assert_eq!(jt.row_count(), 3);
/// assert_eq!(jt.row(2), &[7, 8, 9]);
/// assert_eq!(jt.lengths(), vec![2, 0, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JaggedTensor<T = u64> {
    values: Vec<T>,
    offsets: Vec<usize>,
}

/// The default tensor is a valid empty tensor (zero rows) — important for
/// `std::mem::take`-style buffer stealing, which must leave a tensor every
/// accessor can safely touch.
impl<T> Default for JaggedTensor<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> JaggedTensor<T> {
    /// Creates an empty jagged tensor with zero rows.
    pub fn new() -> Self {
        Self {
            values: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Creates a jagged tensor from raw parts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOffsets`] if the offsets slice is empty,
    /// does not start at zero, is decreasing, or does not end at
    /// `values.len()`.
    pub fn from_parts(values: Vec<T>, offsets: Vec<usize>) -> Result<Self> {
        validate_offsets(&offsets, values.len())?;
        Ok(Self { values, offsets })
    }

    /// Builds a jagged tensor by copying a slice of row lists.
    pub fn from_lists(rows: &[Vec<T>]) -> Self
    where
        T: Clone,
    {
        let mut values = Vec::with_capacity(rows.iter().map(Vec::len).sum());
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        offsets.push(0);
        for row in rows {
            values.extend_from_slice(row);
            offsets.push(values.len());
        }
        Self { values, offsets }
    }

    /// Builds a jagged tensor by copying rows produced by an iterator of
    /// slices.
    pub fn from_rows<'a, I>(rows: I) -> Self
    where
        T: Clone + 'a,
        I: IntoIterator<Item = &'a [T]>,
    {
        let mut tensor = Self::new();
        for row in rows {
            tensor.push_row(row);
        }
        tensor
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: &[T])
    where
        T: Clone,
    {
        self.values.extend_from_slice(row);
        self.offsets.push(self.values.len());
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns true if the tensor has no rows.
    pub fn is_empty(&self) -> bool {
        self.row_count() == 0
    }

    /// Total number of values across all rows.
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.row_count()`.
    pub fn row(&self, i: usize) -> &[T] {
        &self.values[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Returns row `i`, or `None` if it is out of range.
    pub fn get(&self, i: usize) -> Option<&[T]> {
        if i < self.row_count() {
            Some(self.row(i))
        } else {
            None
        }
    }

    /// Borrows the flat value buffer.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutably borrows the flat value buffer — the view value-preserving
    /// in-place transforms (e.g. hash bucketization) write through. The
    /// length cannot change through this view, so the offsets invariants
    /// are safe.
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Borrows the offsets slice (`row_count() + 1` entries).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Removes every row, keeping buffer capacity for reuse.
    pub fn clear(&mut self) {
        self.values.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// Hands the `(values, offsets)` buffers to `edit` for in-place
    /// mutation, then re-validates the jagged invariants — the entry point
    /// for flat in-place transforms, with zero allocation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOffsets`] if the closure leaves the
    /// buffers violating the invariants; the tensor then holds exactly what
    /// the closure produced and must not be read until refilled.
    pub fn edit_flat(&mut self, edit: impl FnOnce(&mut Vec<T>, &mut Vec<usize>)) -> Result<()> {
        edit(&mut self.values, &mut self.offsets);
        validate_offsets(&self.offsets, self.values.len())
    }

    /// Refills the tensor from flat slices, reusing its existing buffers —
    /// the allocation-free counterpart of building a fresh tensor with
    /// [`JaggedTensor::from_parts`] from copies.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOffsets`] under the same conditions as
    /// [`JaggedTensor::from_parts`].
    pub fn assign_flat(&mut self, values: &[T], offsets: &[usize]) -> Result<()>
    where
        T: Clone,
    {
        validate_offsets(offsets, values.len())?;
        self.values.clear();
        self.values.extend_from_slice(values);
        self.offsets.clear();
        self.offsets.extend_from_slice(offsets);
        Ok(())
    }

    /// Returns the per-row lengths.
    pub fn lengths(&self) -> Vec<usize> {
        self.offsets.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Length of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.row_count()`.
    pub fn row_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Length of the longest row, or 0 for an empty tensor.
    pub fn max_row_len(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
    }

    /// Iterates over rows as slices.
    pub fn iter(&self) -> JaggedRows<'_, T> {
        JaggedRows {
            tensor: self,
            next: 0,
        }
    }

    /// Consumes the tensor and returns `(values, offsets)`.
    pub fn into_parts(self) -> (Vec<T>, Vec<usize>) {
        (self.values, self.offsets)
    }
}

impl JaggedTensor<u64> {
    /// Bytes occupied by the `values` and `offsets` slices when shipped over
    /// the network (8 bytes per element), the quantity SDD transfers.
    pub fn payload_bytes(&self) -> usize {
        self.values.len() * 8 + self.offsets.len() * 8
    }
}

impl JaggedTensor<f32> {
    /// Bytes occupied by the `values` and `offsets` slices (4-byte floats,
    /// 8-byte offsets).
    pub fn payload_bytes(&self) -> usize {
        self.values.len() * 4 + self.offsets.len() * 8
    }
}

/// Validates a jagged offsets slice against a value-buffer length — the
/// invariant shared by [`JaggedTensor::from_parts`] and
/// [`JaggedTensor::assign_flat`].
fn validate_offsets(offsets: &[usize], value_len: usize) -> Result<()> {
    if offsets.is_empty() {
        return Err(CoreError::InvalidOffsets {
            reason: "offsets must contain at least one entry",
        });
    }
    if offsets[0] != 0 {
        return Err(CoreError::InvalidOffsets {
            reason: "offsets must start at zero",
        });
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(CoreError::InvalidOffsets {
            reason: "offsets must be non-decreasing",
        });
    }
    if *offsets.last().expect("non-empty") != value_len {
        return Err(CoreError::InvalidOffsets {
            reason: "offsets must end at the values length",
        });
    }
    Ok(())
}

/// Iterator over the rows of a [`JaggedTensor`], produced by
/// [`JaggedTensor::iter`].
#[derive(Debug, Clone)]
pub struct JaggedRows<'a, T> {
    tensor: &'a JaggedTensor<T>,
    next: usize,
}

impl<'a, T> Iterator for JaggedRows<'a, T> {
    type Item = &'a [T];

    fn next(&mut self) -> Option<Self::Item> {
        if self.next < self.tensor.row_count() {
            let row = self.tensor.row(self.next);
            self.next += 1;
            Some(row)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.tensor.row_count() - self.next;
        (remaining, Some(remaining))
    }
}

impl<'a, T> ExactSizeIterator for JaggedRows<'a, T> {}

impl<T: Clone> FromIterator<Vec<T>> for JaggedTensor<T> {
    fn from_iter<I: IntoIterator<Item = Vec<T>>>(iter: I) -> Self {
        let mut tensor = Self::new();
        for row in iter {
            tensor.push_row(&row);
        }
        tensor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lists_and_accessors() {
        let jt = JaggedTensor::from_lists(&[vec![1u64, 2], vec![], vec![7, 8, 9]]);
        assert_eq!(jt.row_count(), 3);
        assert_eq!(jt.value_count(), 5);
        assert_eq!(jt.row(0), &[1, 2]);
        assert_eq!(jt.row(1), &[] as &[u64]);
        assert_eq!(jt.row(2), &[7, 8, 9]);
        assert_eq!(jt.get(3), None);
        assert_eq!(jt.lengths(), vec![2, 0, 3]);
        assert_eq!(jt.row_len(2), 3);
        assert_eq!(jt.max_row_len(), 3);
        assert_eq!(jt.offsets(), &[0, 2, 2, 5]);
        assert!(!jt.is_empty());
    }

    #[test]
    fn empty_tensor() {
        let jt: JaggedTensor<u64> = JaggedTensor::new();
        assert!(jt.is_empty());
        assert_eq!(jt.row_count(), 0);
        assert_eq!(jt.value_count(), 0);
        assert_eq!(jt.max_row_len(), 0);
        assert_eq!(jt.iter().count(), 0);
    }

    #[test]
    fn from_parts_validation() {
        assert!(JaggedTensor::from_parts(vec![1u64, 2], vec![0, 1, 2]).is_ok());
        assert!(matches!(
            JaggedTensor::from_parts(vec![1u64], Vec::new()),
            Err(CoreError::InvalidOffsets { .. })
        ));
        assert!(matches!(
            JaggedTensor::from_parts(vec![1u64], vec![1, 1]),
            Err(CoreError::InvalidOffsets { .. })
        ));
        assert!(matches!(
            JaggedTensor::from_parts(vec![1u64, 2], vec![0, 2, 1]),
            Err(CoreError::InvalidOffsets { .. })
        ));
        assert!(matches!(
            JaggedTensor::from_parts(vec![1u64, 2], vec![0, 1]),
            Err(CoreError::InvalidOffsets { .. })
        ));
    }

    #[test]
    fn push_row_matches_from_lists() {
        let rows = vec![vec![5u64], vec![6, 7], vec![]];
        let mut incremental = JaggedTensor::new();
        for row in &rows {
            incremental.push_row(row);
        }
        assert_eq!(incremental, JaggedTensor::from_lists(&rows));
        let collected: JaggedTensor<u64> = rows.clone().into_iter().collect();
        assert_eq!(collected, incremental);
    }

    #[test]
    fn iterator_and_round_trip_through_parts() {
        let jt = JaggedTensor::from_lists(&[vec![1u64, 2], vec![3]]);
        let rows: Vec<Vec<u64>> = jt.iter().map(|r| r.to_vec()).collect();
        assert_eq!(rows, vec![vec![1, 2], vec![3]]);
        assert_eq!(jt.iter().len(), 2);
        let (values, offsets) = jt.clone().into_parts();
        assert_eq!(JaggedTensor::from_parts(values, offsets).unwrap(), jt);
    }

    #[test]
    fn payload_bytes_accounting() {
        let jt = JaggedTensor::from_lists(&[vec![1u64, 2, 3], vec![4]]);
        // 4 values * 8 + 3 offsets * 8
        assert_eq!(jt.payload_bytes(), 32 + 24);
        let jf = JaggedTensor::from_lists(&[vec![1.0f32, 2.0]]);
        assert_eq!(jf.payload_bytes(), 8 + 16);
    }

    #[test]
    fn generic_over_float_rows() {
        let jt = JaggedTensor::from_lists(&[vec![1.0f32, 2.0], vec![3.0]]);
        assert_eq!(jt.row(1), &[3.0]);
    }
}
