//! InverseKeyedJaggedTensor: RecD's deduplicated sparse-feature container
//! (paper §4.2).

use crate::jagged::JaggedTensor;
use crate::kjt::KeyedJaggedTensor;
use crate::select::jagged_index_select;
use crate::{CoreError, Result};
use recd_codec::Hasher64;
use recd_data::{ColumnarBatch, FeatureId, SampleBatch};
use serde::{Deserialize, Serialize};

/// Sentinel marking an unoccupied [`DedupTable`] bucket.
const EMPTY_SLOT: usize = usize::MAX;

/// Reusable scratch buffers for batch deduplication: the per-row hashers
/// and digests plus the open-addressing table's storage. A compute worker
/// holds one `DedupScratch` for its whole lifetime, so steady-state
/// deduplication allocates nothing beyond buffer growth.
#[derive(Debug, Default, Clone)]
pub struct DedupScratch {
    hashers: Vec<Hasher64>,
    digests: Vec<u64>,
    table_digests: Vec<u64>,
    table_slots: Vec<usize>,
}

/// A flat open-addressing `(digest, slot)` table sized once per batch, over
/// storage borrowed from a [`DedupScratch`].
///
/// This replaces the previous `HashMap<u64, Vec<usize>>` candidate index: no
/// per-digest `Vec` is ever allocated, probing is a linear scan over one
/// contiguous buffer, and because the table is sized to twice the row count
/// up front it never rehashes. Digest collisions are harmless: every
/// candidate is confirmed with a full row-equality check, and a failed check
/// simply continues the probe.
struct DedupTable<'a> {
    digests: &'a mut [u64],
    slots: &'a mut [usize],
    mask: usize,
}

impl<'a> DedupTable<'a> {
    /// Resets the borrowed scratch storage with room for `rows` insertions
    /// at ≤50% load.
    fn for_rows(digests: &'a mut Vec<u64>, slots: &'a mut Vec<usize>, rows: usize) -> Self {
        let capacity = rows.saturating_mul(2).next_power_of_two().max(8);
        digests.clear();
        digests.resize(capacity, 0);
        slots.clear();
        slots.resize(capacity, EMPTY_SLOT);
        Self {
            digests,
            slots,
            mask: capacity - 1,
        }
    }

    /// Probes for a slot whose digest matches and whose content
    /// `rows_equal` confirms. On a hit, returns `Some(existing_slot)`; on a
    /// miss, records `(digest, new_slot)` in the probed bucket and returns
    /// `None`.
    fn find_or_insert(
        &mut self,
        digest: u64,
        new_slot: usize,
        mut rows_equal: impl FnMut(usize) -> bool,
    ) -> Option<usize> {
        let mut idx = (digest as usize) & self.mask;
        loop {
            let slot = self.slots[idx];
            if slot == EMPTY_SLOT {
                self.digests[idx] = digest;
                self.slots[idx] = new_slot;
                return None;
            }
            if self.digests[idx] == digest && rows_equal(slot) {
                return Some(slot);
            }
            idx = (idx + 1) & self.mask;
        }
    }
}

/// A grouped, deduplicated sparse-feature container.
///
/// Where a [`KeyedJaggedTensor`] stores one jagged row per *sample*, an
/// `InverseKeyedJaggedTensor` stores one jagged row per *deduplicated slot*
/// and a shared `inverse_lookup` slice with one entry per sample pointing at
/// that sample's slot. Exact duplicate rows therefore pay for their values
/// exactly once per batch.
///
/// All features grouped into one IKJT share the same `inverse_lookup`
/// (the paper's "grouped IKJT" design): a sample only reuses an existing slot
/// when *every* feature in the group matches that slot, which is what makes
/// deduplicated compute (O7) sound.
///
/// # Example
///
/// ```
/// use recd_core::{InverseKeyedJaggedTensor, KeyedJaggedTensor, JaggedTensor};
/// use recd_data::FeatureId;
///
/// let f = FeatureId::new(0);
/// let kjt = KeyedJaggedTensor::from_tensors(vec![(
///     f,
///     JaggedTensor::from_lists(&[vec![3u64, 4, 5], vec![4, 5, 6], vec![3, 4, 5]]),
/// )])?;
/// let ikjt = InverseKeyedJaggedTensor::dedup_from_kjt(&kjt, &[f])?;
/// assert_eq!(ikjt.slot_count(), 2);
/// assert_eq!(ikjt.inverse_lookup(), &[0, 1, 0]);
/// assert_eq!(ikjt.to_kjt()?, kjt); // lossless
/// # Ok::<(), recd_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InverseKeyedJaggedTensor {
    keys: Vec<FeatureId>,
    tensors: Vec<JaggedTensor<u64>>,
    inverse_lookup: Vec<usize>,
    batch_size: usize,
}

impl InverseKeyedJaggedTensor {
    /// Deduplicates the listed feature group out of an existing KJT.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownFeature`] if a grouped feature is missing
    /// from the KJT.
    pub fn dedup_from_kjt(kjt: &KeyedJaggedTensor, group: &[FeatureId]) -> Result<Self> {
        let tensors: Vec<&JaggedTensor<u64>> = group
            .iter()
            .map(|&key| kjt.feature_required(key))
            .collect::<Result<_>>()?;
        Ok(Self::dedup_rows(group, &tensors, kjt.batch_size()))
    }

    /// Deduplicates the listed feature group directly from a batch of
    /// samples (the row-wise feature-conversion path).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MissingSparseFeature`] if a sample does not carry
    /// one of the grouped features.
    pub fn dedup_from_batch(batch: &SampleBatch, group: &[FeatureId]) -> Result<Self> {
        for sample in batch.iter() {
            for &key in group {
                if key.index() >= sample.sparse.len() {
                    return Err(CoreError::MissingSparseFeature {
                        feature: key,
                        available: sample.sparse.len(),
                    });
                }
            }
        }
        let samples = batch.samples();
        Ok(Self::dedup_core(group, batch.len(), |fi, row| {
            samples[row].sparse[group[fi].index()].as_slice()
        }))
    }

    /// Deduplicates the listed feature group straight off a columnar batch's
    /// sparse columns — the flat fill→convert hot path. Row views are slices
    /// into the batch's contiguous value buffers, so no per-row data is
    /// materialized at any point.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MissingSparseFeature`] if the batch carries
    /// fewer sparse columns than a grouped feature's index.
    pub fn dedup_from_columnar(batch: &ColumnarBatch, group: &[FeatureId]) -> Result<Self> {
        let columns: Vec<&recd_data::SparseColumn> = group
            .iter()
            .map(|&key| {
                batch
                    .sparse_column(key.index())
                    .ok_or(CoreError::MissingSparseFeature {
                        feature: key,
                        available: batch.sparse_cols(),
                    })
            })
            .collect::<Result<_>>()?;
        Ok(Self::dedup_core(group, batch.len(), |fi, row| {
            columns[fi].row(row)
        }))
    }

    /// Deduplicates a feature group off a columnar batch into a
    /// caller-provided (typically recycled) IKJT, reusing its slot-tensor
    /// and inverse-lookup buffers — the buffer-reusing variant of
    /// [`InverseKeyedJaggedTensor::dedup_from_columnar`] that the streaming
    /// compute workers run with a long-lived [`DedupScratch`].
    ///
    /// # Errors
    ///
    /// Same error conditions as
    /// [`InverseKeyedJaggedTensor::dedup_from_columnar`]; on error `out` is
    /// untouched.
    pub fn dedup_from_columnar_into(
        batch: &ColumnarBatch,
        group: &[FeatureId],
        scratch: &mut DedupScratch,
        out: &mut Self,
    ) -> Result<()> {
        // Validate up front so the row view can index the column slice
        // directly — no per-batch Vec of column refs.
        for &key in group {
            if key.index() >= batch.sparse_cols() {
                return Err(CoreError::MissingSparseFeature {
                    feature: key,
                    available: batch.sparse_cols(),
                });
            }
        }
        let columns = batch.sparse_columns();
        Self::dedup_core_into(
            group,
            batch.len(),
            |fi, row| columns[group[fi].index()].row(row),
            scratch,
            out,
        );
        Ok(())
    }

    /// Core dedup routine over per-feature row views.
    fn dedup_rows(
        group: &[FeatureId],
        per_feature: &[&JaggedTensor<u64>],
        batch_size: usize,
    ) -> Self {
        Self::dedup_core(group, batch_size, |fi, row| per_feature[fi].row(row))
    }

    /// One-shot wrapper over [`InverseKeyedJaggedTensor::dedup_core_into`]
    /// with throwaway scratch and output.
    fn dedup_core<'a>(
        group: &[FeatureId],
        batch_size: usize,
        row_view: impl Fn(usize, usize) -> &'a [u64],
    ) -> Self {
        let mut out = Self::default();
        Self::dedup_core_into(
            group,
            batch_size,
            row_view,
            &mut DedupScratch::default(),
            &mut out,
        );
        out
    }

    /// Precomputes one digest per row over the whole feature group, then
    /// assigns slots through a flat [`DedupTable`], writing the result into
    /// `out` whose buffers (slot tensors, inverse lookup) are reused.
    ///
    /// Digests are accumulated feature-major (one sequential sweep per
    /// feature over its contiguous values) and memoized across the group, so
    /// each value is hashed exactly once regardless of how many candidate
    /// comparisons a row later participates in. The hash order per row is
    /// identical to the old row-major loop (group order, length then
    /// values), so digests — and therefore slot assignment order — are
    /// unchanged.
    fn dedup_core_into<'a>(
        group: &[FeatureId],
        batch_size: usize,
        row_view: impl Fn(usize, usize) -> &'a [u64],
        scratch: &mut DedupScratch,
        out: &mut Self,
    ) {
        let DedupScratch {
            hashers,
            digests,
            table_digests,
            table_slots,
        } = scratch;

        hashers.clear();
        hashers.resize(batch_size, Hasher64::new());
        for fi in 0..group.len() {
            for (row, hasher) in hashers.iter_mut().enumerate() {
                let values = row_view(fi, row);
                hasher.mix_u64(values.len() as u64);
                for &v in values {
                    hasher.mix_u64(v);
                }
            }
        }
        digests.clear();
        digests.extend(hashers.iter().map(Hasher64::finish));

        let Self {
            keys,
            tensors: slot_tensors,
            inverse_lookup,
            batch_size: out_batch_size,
        } = out;
        keys.clear();
        keys.extend_from_slice(group);
        slot_tensors.truncate(group.len());
        for tensor in slot_tensors.iter_mut() {
            tensor.clear();
        }
        slot_tensors.resize_with(group.len(), JaggedTensor::new);
        inverse_lookup.clear();
        inverse_lookup.reserve(batch_size);
        *out_batch_size = batch_size;

        let mut table = DedupTable::for_rows(table_digests, table_slots, batch_size);

        for (row, &digest) in digests.iter().enumerate() {
            let next_slot = slot_tensors
                .first()
                .map(JaggedTensor::row_count)
                .unwrap_or(0);
            let matched = table.find_or_insert(digest, next_slot, |slot| {
                (0..group.len()).all(|fi| slot_tensors[fi].row(slot) == row_view(fi, row))
            });
            match matched {
                Some(slot) => inverse_lookup.push(slot),
                None => {
                    for (fi, tensor) in slot_tensors.iter_mut().enumerate() {
                        tensor.push_row(row_view(fi, row));
                    }
                    inverse_lookup.push(next_slot);
                }
            }
        }
    }

    /// Creates an IKJT from raw parts, validating all invariants.
    ///
    /// # Errors
    ///
    /// Returns an error if the per-feature tensors disagree on slot count or
    /// an `inverse_lookup` entry references a non-existent slot.
    pub fn from_parts(
        keys: Vec<FeatureId>,
        tensors: Vec<JaggedTensor<u64>>,
        inverse_lookup: Vec<usize>,
    ) -> Result<Self> {
        if keys.len() != tensors.len() {
            return Err(CoreError::GroupInvariantViolation {
                reason: format!("{} keys but {} tensors", keys.len(), tensors.len()),
            });
        }
        let batch_size = inverse_lookup.len();
        let ikjt = Self {
            keys,
            tensors,
            inverse_lookup,
            batch_size,
        };
        ikjt.check_invariants()?;
        Ok(ikjt)
    }

    /// Validates the shared-inverse-lookup invariant: every feature tensor
    /// has the same slot count and every lookup entry is in range.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::GroupInvariantViolation`] or
    /// [`CoreError::InvalidInverseLookup`] describing the violation.
    pub fn check_invariants(&self) -> Result<()> {
        let slots = self.slot_count();
        for (key, tensor) in self.keys.iter().zip(&self.tensors) {
            if tensor.row_count() != slots {
                return Err(CoreError::GroupInvariantViolation {
                    reason: format!(
                        "feature {key} has {} slots but the group has {slots}",
                        tensor.row_count()
                    ),
                });
            }
        }
        for (row, &slot) in self.inverse_lookup.iter().enumerate() {
            if slot >= slots {
                return Err(CoreError::InvalidInverseLookup { row, slot, slots });
            }
        }
        Ok(())
    }

    /// Feature keys in the group, in configuration order.
    pub fn keys(&self) -> &[FeatureId] {
        &self.keys
    }

    /// Number of samples in the batch.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of deduplicated slots shared by the group.
    pub fn slot_count(&self) -> usize {
        self.tensors
            .first()
            .map(JaggedTensor::row_count)
            .unwrap_or(0)
    }

    /// The shared inverse lookup: `inverse_lookup()[row]` is the slot holding
    /// that row's values for every feature in the group.
    pub fn inverse_lookup(&self) -> &[usize] {
        &self.inverse_lookup
    }

    /// Deduplicated jagged tensor for one feature (rows are slots).
    pub fn feature(&self, key: FeatureId) -> Option<&JaggedTensor<u64>> {
        self.keys
            .iter()
            .position(|&k| k == key)
            .map(|i| &self.tensors[i])
    }

    /// Deduplicated jagged tensor for one feature, or an error if absent.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownFeature`] if the feature is not in the
    /// group.
    pub fn feature_required(&self, key: FeatureId) -> Result<&JaggedTensor<u64>> {
        self.feature(key)
            .ok_or(CoreError::UnknownFeature { feature: key })
    }

    /// Iterates over `(feature, deduplicated tensor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FeatureId, &JaggedTensor<u64>)> {
        self.keys.iter().copied().zip(self.tensors.iter())
    }

    /// Iterates over `(feature, deduplicated tensor)` pairs with mutable
    /// tensor access — the view the O4 wrapper writes through to transform
    /// each feature once per slot.
    ///
    /// The caller must preserve each tensor's row (slot) count so the shared
    /// `inverse_lookup` stays valid; every shipped transform does, since
    /// preprocessing maps rows to rows.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (FeatureId, &mut JaggedTensor<u64>)> {
        self.keys.iter().copied().zip(self.tensors.iter_mut())
    }

    /// The logical (pre-deduplication) value for `key` at batch row `row`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownFeature`] for a feature outside the group
    /// or [`CoreError::IndexOutOfRange`] for a row outside the batch.
    pub fn row(&self, key: FeatureId, row: usize) -> Result<&[u64]> {
        if row >= self.batch_size {
            return Err(CoreError::IndexOutOfRange {
                index: row,
                rows: self.batch_size,
            });
        }
        let tensor = self.feature_required(key)?;
        Ok(tensor.row(self.inverse_lookup[row]))
    }

    /// Number of values stored after deduplication (all features).
    pub fn dedup_value_count(&self) -> usize {
        self.tensors.iter().map(JaggedTensor::value_count).sum()
    }

    /// Number of values the equivalent KJT would store (all features).
    pub fn original_value_count(&self) -> usize {
        self.keys
            .iter()
            .zip(&self.tensors)
            .map(|(_, tensor)| {
                self.inverse_lookup
                    .iter()
                    .map(|&slot| tensor.row_len(slot))
                    .sum::<usize>()
            })
            .sum()
    }

    /// Measured deduplication factor for this batch: original values divided
    /// by deduplicated values. Returns 1.0 when the group stores no values.
    pub fn dedupe_factor(&self) -> f64 {
        let dedup = self.dedup_value_count();
        if dedup == 0 {
            1.0
        } else {
            self.original_value_count() as f64 / dedup as f64
        }
    }

    /// Bytes shipped over the network for this group during SDD: only the
    /// deduplicated `values` and `offsets` slices travel; the
    /// `inverse_lookup` slice stays local to the GPU that produced it
    /// (paper §5, "Sparse Data Distribution").
    pub fn payload_bytes(&self) -> usize {
        self.tensors.iter().map(|t| t.payload_bytes()).sum()
    }

    /// Bytes of the local-only `inverse_lookup` slice (8 bytes per row).
    pub fn inverse_lookup_bytes(&self) -> usize {
        self.inverse_lookup.len() * 8
    }

    /// Expands the IKJT back into a KJT using a jagged index select (O6).
    /// The result is logically identical to the KJT the group was built from.
    ///
    /// # Errors
    ///
    /// Propagates index errors from the underlying select (cannot occur for a
    /// structurally valid IKJT).
    pub fn to_kjt(&self) -> Result<KeyedJaggedTensor> {
        let mut entries = Vec::with_capacity(self.keys.len());
        for (key, tensor) in self.keys.iter().zip(&self.tensors) {
            entries.push((*key, jagged_index_select(tensor, &self.inverse_lookup)?));
        }
        KeyedJaggedTensor::from_tensors(entries)
    }

    /// Expands a per-slot vector to a per-row vector through the shared
    /// inverse lookup. This is the "expand the output" step of deduplicated
    /// pooling (O7): compute on `slot_count()` items, then broadcast to
    /// `batch_size()` rows.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BatchSizeMismatch`] if `per_slot` does not have
    /// exactly `slot_count()` entries.
    pub fn expand_per_slot<T: Clone>(&self, per_slot: &[T]) -> Result<Vec<T>> {
        if per_slot.len() != self.slot_count() {
            return Err(CoreError::BatchSizeMismatch {
                expected: self.slot_count(),
                actual: per_slot.len(),
            });
        }
        Ok(self
            .inverse_lookup
            .iter()
            .map(|&slot| per_slot[slot].clone())
            .collect())
    }

    /// Expands a flat `[slot_count() * width]` per-slot buffer to a flat
    /// `[batch_size() * width]` per-row buffer through the shared inverse
    /// lookup, by offset-based slicing — the allocation-free counterpart of
    /// [`InverseKeyedJaggedTensor::expand_per_slot`] for fixed-width rows
    /// (e.g. pooled embedding vectors). One output buffer is allocated; no
    /// per-row container is ever cloned.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BatchSizeMismatch`] if `per_slot` does not hold
    /// exactly `slot_count() * width` values.
    pub fn expand_per_slot_concat<T: Copy>(&self, per_slot: &[T], width: usize) -> Result<Vec<T>> {
        if per_slot.len() != self.slot_count() * width {
            return Err(CoreError::BatchSizeMismatch {
                expected: self.slot_count() * width,
                actual: per_slot.len(),
            });
        }
        let mut out = Vec::with_capacity(self.batch_size * width);
        for &slot in &self.inverse_lookup {
            out.extend_from_slice(&per_slot[slot * width..(slot + 1) * width]);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FeatureId {
        FeatureId::new(i)
    }

    /// The exact example from the paper's Figure 5: features c and d grouped,
    /// rows 0 and 1 duplicates, row 2 distinct.
    fn figure5_group() -> KeyedJaggedTensor {
        KeyedJaggedTensor::from_tensors(vec![
            (
                f(2), // feature c
                JaggedTensor::from_lists(&[vec![7u64, 8], vec![7, 8], vec![10]]),
            ),
            (
                f(3), // feature d
                JaggedTensor::from_lists(&[vec![9u64], vec![9], vec![11]]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn figure5_grouped_dedup() {
        let kjt = figure5_group();
        let ikjt = InverseKeyedJaggedTensor::dedup_from_kjt(&kjt, &[f(2), f(3)]).unwrap();
        assert_eq!(ikjt.batch_size(), 3);
        assert_eq!(ikjt.slot_count(), 2);
        assert_eq!(ikjt.inverse_lookup(), &[0, 0, 1]);
        assert_eq!(ikjt.feature(f(2)).unwrap().row(0), &[7, 8]);
        assert_eq!(ikjt.feature(f(2)).unwrap().row(1), &[10]);
        assert_eq!(ikjt.feature(f(3)).unwrap().row(0), &[9]);
        assert_eq!(ikjt.feature(f(3)).unwrap().row(1), &[11]);
        assert!(ikjt.check_invariants().is_ok());
        // Round trip back to KJT is lossless.
        assert_eq!(ikjt.to_kjt().unwrap(), kjt);
    }

    #[test]
    fn figure5_single_feature_b() {
        // Feature b: rows 0 and 2 duplicates ([3,4,5]), row 1 distinct.
        let kjt = KeyedJaggedTensor::from_tensors(vec![(
            f(1),
            JaggedTensor::from_lists(&[vec![3u64, 4, 5], vec![4, 5, 6], vec![3, 4, 5]]),
        )])
        .unwrap();
        let ikjt = InverseKeyedJaggedTensor::dedup_from_kjt(&kjt, &[f(1)]).unwrap();
        assert_eq!(ikjt.inverse_lookup(), &[0, 1, 0]);
        assert_eq!(ikjt.feature(f(1)).unwrap().values(), &[3, 4, 5, 4, 5, 6]);
        assert_eq!(ikjt.dedup_value_count(), 6);
        assert_eq!(ikjt.original_value_count(), 9);
        assert!((ikjt.dedupe_factor() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn unsynchronized_group_rows_are_not_deduplicated() {
        // Feature x repeats on rows 0/1 but feature y does not: the group must
        // keep both rows as distinct slots to preserve the shared lookup.
        let kjt = KeyedJaggedTensor::from_tensors(vec![
            (f(0), JaggedTensor::from_lists(&[vec![1u64, 2], vec![1, 2]])),
            (f(1), JaggedTensor::from_lists(&[vec![5u64], vec![6]])),
        ])
        .unwrap();
        let ikjt = InverseKeyedJaggedTensor::dedup_from_kjt(&kjt, &[f(0), f(1)]).unwrap();
        assert_eq!(ikjt.slot_count(), 2);
        assert_eq!(ikjt.inverse_lookup(), &[0, 1]);
        assert_eq!(ikjt.to_kjt().unwrap(), kjt);
    }

    #[test]
    fn row_accessor_reads_through_lookup() {
        let kjt = figure5_group();
        let ikjt = InverseKeyedJaggedTensor::dedup_from_kjt(&kjt, &[f(2), f(3)]).unwrap();
        assert_eq!(ikjt.row(f(2), 1).unwrap(), &[7, 8]);
        assert_eq!(ikjt.row(f(3), 2).unwrap(), &[11]);
        assert!(matches!(
            ikjt.row(f(2), 7),
            Err(CoreError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            ikjt.row(f(9), 0),
            Err(CoreError::UnknownFeature { .. })
        ));
    }

    #[test]
    fn empty_batch_dedup() {
        let kjt = KeyedJaggedTensor::from_tensors(vec![(f(0), JaggedTensor::new())]).unwrap();
        let ikjt = InverseKeyedJaggedTensor::dedup_from_kjt(&kjt, &[f(0)]).unwrap();
        assert_eq!(ikjt.batch_size(), 0);
        assert_eq!(ikjt.slot_count(), 0);
        assert_eq!(ikjt.dedupe_factor(), 1.0);
        assert!(ikjt.to_kjt().unwrap().feature(f(0)).unwrap().is_empty());
    }

    #[test]
    fn payload_bytes_exclude_inverse_lookup() {
        let kjt = figure5_group();
        let ikjt = InverseKeyedJaggedTensor::dedup_from_kjt(&kjt, &[f(2), f(3)]).unwrap();
        let expected: usize = ikjt.iter().map(|(_, t)| t.payload_bytes()).sum();
        assert_eq!(ikjt.payload_bytes(), expected);
        assert_eq!(ikjt.inverse_lookup_bytes(), 3 * 8);
        // Deduplicated payload must be strictly smaller than the original KJT's.
        assert!(ikjt.payload_bytes() < kjt.payload_bytes());
    }

    #[test]
    fn expand_per_slot_broadcasts() {
        let kjt = figure5_group();
        let ikjt = InverseKeyedJaggedTensor::dedup_from_kjt(&kjt, &[f(2), f(3)]).unwrap();
        // Pooled output per slot (paper example: [24, 21]).
        let expanded = ikjt.expand_per_slot(&[24.0f32, 21.0]).unwrap();
        assert_eq!(expanded, vec![24.0, 24.0, 21.0]);
        assert!(matches!(
            ikjt.expand_per_slot(&[1.0f32]),
            Err(CoreError::BatchSizeMismatch { .. })
        ));
    }

    #[test]
    fn from_parts_validates_invariants() {
        let good = InverseKeyedJaggedTensor::from_parts(
            vec![f(0)],
            vec![JaggedTensor::from_lists(&[vec![1u64]])],
            vec![0, 0, 0],
        );
        assert!(good.is_ok());

        let bad_lookup = InverseKeyedJaggedTensor::from_parts(
            vec![f(0)],
            vec![JaggedTensor::from_lists(&[vec![1u64]])],
            vec![0, 1],
        );
        assert!(matches!(
            bad_lookup,
            Err(CoreError::InvalidInverseLookup {
                row: 1,
                slot: 1,
                ..
            })
        ));

        let mismatched_slots = InverseKeyedJaggedTensor::from_parts(
            vec![f(0), f(1)],
            vec![
                JaggedTensor::from_lists(&[vec![1u64]]),
                JaggedTensor::from_lists(&[vec![1u64], vec![2]]),
            ],
            vec![0],
        );
        assert!(matches!(
            mismatched_slots,
            Err(CoreError::GroupInvariantViolation { .. })
        ));

        let wrong_key_count = InverseKeyedJaggedTensor::from_parts(
            vec![f(0), f(1)],
            vec![JaggedTensor::from_lists(&[vec![1u64]])],
            vec![0],
        );
        assert!(wrong_key_count.is_err());
    }

    #[test]
    fn expand_per_slot_concat_slices_by_offset() {
        let kjt = figure5_group();
        let ikjt = InverseKeyedJaggedTensor::dedup_from_kjt(&kjt, &[f(2), f(3)]).unwrap();
        // Two slots of width 2, expanded to three rows.
        let expanded = ikjt
            .expand_per_slot_concat(&[1.0f32, 2.0, 3.0, 4.0], 2)
            .unwrap();
        assert_eq!(expanded, vec![1.0, 2.0, 1.0, 2.0, 3.0, 4.0]);
        assert!(matches!(
            ikjt.expand_per_slot_concat(&[1.0f32], 2),
            Err(CoreError::BatchSizeMismatch { .. })
        ));
    }

    #[test]
    fn columnar_dedup_matches_batch_dedup() {
        use recd_data::{ColumnarBatch, RequestId, Sample, SessionId, Timestamp};
        let rows: Vec<Vec<Vec<u64>>> = vec![
            vec![vec![7, 8], vec![9]],
            vec![vec![7, 8], vec![9]],
            vec![vec![10], vec![11]],
            vec![vec![], vec![9]],
        ];
        let samples: Vec<Sample> = rows
            .into_iter()
            .enumerate()
            .map(|(i, sparse)| {
                Sample::builder(
                    SessionId::new(1),
                    RequestId::new(i as u64),
                    Timestamp::from_millis(i as u64),
                )
                .sparse(sparse)
                .build()
            })
            .collect();
        let batch: SampleBatch = samples.iter().cloned().collect();
        let columnar = ColumnarBatch::from_samples(&samples, 0, 2);
        let group = [f(0), f(1)];
        let from_batch = InverseKeyedJaggedTensor::dedup_from_batch(&batch, &group).unwrap();
        let from_columnar =
            InverseKeyedJaggedTensor::dedup_from_columnar(&columnar, &group).unwrap();
        assert_eq!(from_batch, from_columnar);
        assert_eq!(from_columnar.inverse_lookup(), &[0, 0, 1, 2]);
        assert!(matches!(
            InverseKeyedJaggedTensor::dedup_from_columnar(&columnar, &[f(5)]),
            Err(CoreError::MissingSparseFeature { .. })
        ));
    }

    #[test]
    fn hash_collisions_do_not_merge_distinct_rows() {
        // Many distinct single-id rows: a weak converter that trusted hashes
        // without equality confirmation could merge two of them; dedupe factor
        // must stay exactly 1.0 and the round trip must be lossless.
        let rows: Vec<Vec<u64>> = (0..10_000u64)
            .map(|i| vec![i.wrapping_mul(0x9e37)])
            .collect();
        let kjt =
            KeyedJaggedTensor::from_tensors(vec![(f(0), JaggedTensor::from_lists(&rows))]).unwrap();
        let ikjt = InverseKeyedJaggedTensor::dedup_from_kjt(&kjt, &[f(0)]).unwrap();
        assert_eq!(ikjt.slot_count(), 10_000);
        assert_eq!(ikjt.dedupe_factor(), 1.0);
        assert_eq!(ikjt.to_kjt().unwrap(), kjt);
    }
}
