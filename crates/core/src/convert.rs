//! Feature conversion: the reader-tier step that turns a batch of rows into
//! KJTs and IKJTs according to a DataLoader specification (paper §4.2,
//! Figure 5).

use crate::dense::DenseMatrix;
use crate::ikjt::InverseKeyedJaggedTensor;
use crate::kjt::KeyedJaggedTensor;
use crate::{CoreError, Result};
use recd_data::{ColumnarBatch, FeatureId, SampleBatch, Schema};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The RecD-extended DataLoader specification: which sparse features stay in
/// KJT form and which feature groups are deduplicated into IKJTs.
///
/// Mirrors the paper's
/// `sparse_features: [a], dedup_sparse_features: [[b], [c, d]]` example.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DataLoaderConfig {
    /// Sparse features converted to a conventional KJT.
    pub kjt_features: Vec<FeatureId>,
    /// Groups of sparse features deduplicated into one IKJT each.
    pub dedup_groups: Vec<Vec<FeatureId>>,
    /// Number of dense feature columns to materialize.
    pub dense_features: usize,
}

impl DataLoaderConfig {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds features that stay KJT-encoded.
    #[must_use]
    pub fn with_kjt_features<I: IntoIterator<Item = FeatureId>>(mut self, features: I) -> Self {
        self.kjt_features.extend(features);
        self
    }

    /// Adds one deduplication group (an IKJT).
    #[must_use]
    pub fn with_dedup_group<I: IntoIterator<Item = FeatureId>>(mut self, group: I) -> Self {
        self.dedup_groups.push(group.into_iter().collect());
        self
    }

    /// Sets the number of dense feature columns.
    #[must_use]
    pub fn with_dense_features(mut self, count: usize) -> Self {
        self.dense_features = count;
        self
    }

    /// Builds a configuration from a schema: every declared dedup group
    /// becomes an IKJT group and every remaining sparse feature stays in the
    /// KJT.
    pub fn from_schema(schema: &Schema) -> Self {
        let dedup_groups = schema
            .groups()
            .into_iter()
            .map(|(_, members)| members)
            .filter(|members| !members.is_empty())
            .collect();
        Self {
            kjt_features: schema.undeduplicated_sparse(),
            dedup_groups,
            dense_features: schema.dense_count(),
        }
    }

    /// Builds a *baseline* configuration from a schema: every sparse feature
    /// stays in the KJT and nothing is deduplicated. Used for the paper's
    /// baseline measurements.
    pub fn baseline_from_schema(schema: &Schema) -> Self {
        Self {
            kjt_features: schema.sparse_features().iter().map(|f| f.id).collect(),
            dedup_groups: Vec::new(),
            dense_features: schema.dense_count(),
        }
    }

    /// All sparse features referenced by the configuration, KJT first then
    /// groups in order. Borrowed iterator access — callers that need an
    /// owned list collect it themselves; validation and feature counting
    /// allocate nothing.
    pub fn all_sparse_features(&self) -> impl Iterator<Item = FeatureId> + '_ {
        self.kjt_features
            .iter()
            .copied()
            .chain(self.dedup_groups.iter().flat_map(|g| g.iter().copied()))
    }

    /// Validates that no feature appears twice across the KJT list and the
    /// dedup groups.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateFeatureInConfig`] naming the first
    /// repeated feature.
    pub fn validate(&self) -> Result<()> {
        let mut seen = HashSet::new();
        for feature in self.all_sparse_features() {
            if !seen.insert(feature) {
                return Err(CoreError::DuplicateFeatureInConfig { feature });
            }
        }
        Ok(())
    }
}

/// The output of feature conversion for one batch: dense features, labels,
/// the KJT of non-deduplicated features, and one IKJT per dedup group.
///
/// The `Default` value is an empty zero-row batch — the shell a buffer pool
/// hands to [`FeatureConverter::convert_columnar_into`], which overwrites
/// every field while reusing the underlying allocations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConvertedBatch {
    /// Number of samples in the batch.
    pub batch_size: usize,
    /// Labels in batch order.
    pub labels: Vec<f32>,
    /// Dense features as a `[batch_size, dense_features]` matrix.
    pub dense: DenseMatrix,
    /// Non-deduplicated sparse features.
    pub kjt: KeyedJaggedTensor,
    /// One IKJT per configured dedup group, in configuration order.
    pub ikjts: Vec<InverseKeyedJaggedTensor>,
}

impl ConvertedBatch {
    /// Total sparse ids stored by this converted batch (KJT values plus
    /// deduplicated IKJT values).
    pub fn stored_sparse_values(&self) -> usize {
        self.kjt.value_count()
            + self
                .ikjts
                .iter()
                .map(InverseKeyedJaggedTensor::dedup_value_count)
                .sum::<usize>()
    }

    /// Total sparse ids the batch would store without any deduplication.
    pub fn logical_sparse_values(&self) -> usize {
        self.kjt.value_count()
            + self
                .ikjts
                .iter()
                .map(InverseKeyedJaggedTensor::original_value_count)
                .sum::<usize>()
    }

    /// Bytes shipped from readers to trainers for the sparse part of this
    /// batch: KJT payload plus IKJT payloads plus the (local, but still
    /// transported once from reader to trainer) inverse lookups.
    pub fn sparse_payload_bytes(&self) -> usize {
        self.kjt.payload_bytes()
            + self
                .ikjts
                .iter()
                .map(|i| i.payload_bytes() + i.inverse_lookup_bytes())
                .sum::<usize>()
    }

    /// Bytes the sparse part would occupy with no deduplication at all.
    pub fn baseline_sparse_payload_bytes(&self) -> usize {
        self.kjt.payload_bytes()
            + self
                .ikjts
                .iter()
                .map(|ikjt| {
                    // The equivalent KJT stores every logical value plus one
                    // offsets slice per feature with batch_size + 1 entries.
                    ikjt.original_value_count() * 8
                        + ikjt.keys().len() * (ikjt.batch_size() + 1) * 8
                })
                .sum::<usize>()
    }

    /// Batch-wide deduplication factor over the grouped features.
    pub fn dedupe_factor(&self) -> f64 {
        let stored: usize = self
            .ikjts
            .iter()
            .map(InverseKeyedJaggedTensor::dedup_value_count)
            .sum();
        let logical: usize = self
            .ikjts
            .iter()
            .map(InverseKeyedJaggedTensor::original_value_count)
            .sum();
        if stored == 0 {
            1.0
        } else {
            logical as f64 / stored as f64
        }
    }
}

/// Converts batches of rows into tensors according to a
/// [`DataLoaderConfig`], deduplicating the configured groups (O3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureConverter {
    config: DataLoaderConfig,
    /// Every configured sparse feature, cached once so the baseline
    /// conversion paths don't re-collect the list per batch.
    all_features: Vec<FeatureId>,
}

impl FeatureConverter {
    /// Creates a converter for the given configuration.
    pub fn new(config: DataLoaderConfig) -> Self {
        let all_features = config.all_sparse_features().collect();
        Self {
            config,
            all_features,
        }
    }

    /// Borrows the configuration.
    pub fn config(&self) -> &DataLoaderConfig {
        &self.config
    }

    /// Converts one batch of samples into tensors.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration references a feature twice or a
    /// sample does not carry a configured feature.
    pub fn convert(&self, batch: &SampleBatch) -> Result<ConvertedBatch> {
        self.config.validate()?;
        let labels = batch.iter().map(|s| s.label).collect();
        let dense = DenseMatrix::from_batch(batch, self.config.dense_features);
        let kjt = KeyedJaggedTensor::from_batch(batch, &self.config.kjt_features)?;
        let ikjts = self
            .config
            .dedup_groups
            .iter()
            .map(|group| InverseKeyedJaggedTensor::dedup_from_batch(batch, group))
            .collect::<Result<Vec<_>>>()?;
        Ok(ConvertedBatch {
            batch_size: batch.len(),
            labels,
            dense,
            kjt,
            ikjts,
        })
    }

    /// Converts a batch without any deduplication, regardless of the
    /// configured groups (all features land in the KJT). This is the
    /// baseline conversion path used for comparisons.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`FeatureConverter::convert`].
    pub fn convert_baseline(&self, batch: &SampleBatch) -> Result<ConvertedBatch> {
        let labels = batch.iter().map(|s| s.label).collect();
        let dense = DenseMatrix::from_batch(batch, self.config.dense_features);
        let kjt = KeyedJaggedTensor::from_batch(batch, &self.all_features)?;
        Ok(ConvertedBatch {
            batch_size: batch.len(),
            labels,
            dense,
            kjt,
            ikjts: Vec::new(),
        })
    }

    /// Converts one columnar batch into tensors — the flat counterpart of
    /// [`FeatureConverter::convert`], producing a value-identical
    /// [`ConvertedBatch`]. Labels and dense values copy over as whole
    /// buffers, each KJT feature is two flat copies, and the dedup groups
    /// run the allocation-free columnar IKJT path.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`FeatureConverter::convert`].
    pub fn convert_columnar(&self, batch: &ColumnarBatch) -> Result<ConvertedBatch> {
        let mut out = ConvertedBatch::default();
        self.convert_columnar_into(batch, &mut crate::DedupScratch::default(), &mut out)?;
        Ok(out)
    }

    /// Converts one columnar batch into a caller-provided (typically
    /// recycled) [`ConvertedBatch`], reusing its label, dense, KJT, and
    /// IKJT buffers — the buffer-reusing variant of
    /// [`FeatureConverter::convert_columnar`] that the streaming compute
    /// workers run with a long-lived [`DedupScratch`](crate::DedupScratch).
    /// The result is value-identical to [`FeatureConverter::convert_columnar`]
    /// regardless of what the shell previously held.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`FeatureConverter::convert`]; on error the
    /// shell's contents are unspecified.
    pub fn convert_columnar_into(
        &self,
        batch: &ColumnarBatch,
        scratch: &mut crate::DedupScratch,
        out: &mut ConvertedBatch,
    ) -> Result<()> {
        self.config.validate()?;
        out.batch_size = batch.len();
        out.labels.clear();
        out.labels.extend_from_slice(batch.labels());
        out.dense
            .assign_from_columnar(batch, self.config.dense_features);
        out.kjt
            .assign_from_columnar(batch, &self.config.kjt_features)?;
        out.ikjts
            .resize_with(self.config.dedup_groups.len(), Default::default);
        for (group, ikjt) in self.config.dedup_groups.iter().zip(&mut out.ikjts) {
            InverseKeyedJaggedTensor::dedup_from_columnar_into(batch, group, scratch, ikjt)?;
        }
        Ok(())
    }

    /// Converts a columnar batch without any deduplication — the flat
    /// counterpart of [`FeatureConverter::convert_baseline`].
    ///
    /// # Errors
    ///
    /// Same error conditions as [`FeatureConverter::convert`].
    pub fn convert_columnar_baseline(&self, batch: &ColumnarBatch) -> Result<ConvertedBatch> {
        let mut out = ConvertedBatch::default();
        self.convert_columnar_baseline_into(batch, &mut out)?;
        Ok(out)
    }

    /// Converts a columnar batch without deduplication into a recycled
    /// shell — the buffer-reusing variant of
    /// [`FeatureConverter::convert_columnar_baseline`].
    ///
    /// # Errors
    ///
    /// Same error conditions as [`FeatureConverter::convert`]; on error the
    /// shell's contents are unspecified.
    pub fn convert_columnar_baseline_into(
        &self,
        batch: &ColumnarBatch,
        out: &mut ConvertedBatch,
    ) -> Result<()> {
        out.batch_size = batch.len();
        out.labels.clear();
        out.labels.extend_from_slice(batch.labels());
        out.dense
            .assign_from_columnar(batch, self.config.dense_features);
        out.kjt.assign_from_columnar(batch, &self.all_features)?;
        out.ikjts.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_data::{FeatureClass, RequestId, Sample, SessionId, Timestamp};

    fn f(i: u32) -> FeatureId {
        FeatureId::new(i)
    }

    /// One row of the Figure 5 batch: features a–d plus a label.
    type Figure5Row = (Vec<u64>, Vec<u64>, Vec<u64>, Vec<u64>, f32);

    /// Builds the exact batch of Figure 5: features a, b, c, d over 3 rows.
    fn figure5_batch() -> SampleBatch {
        let rows: Vec<Figure5Row> = vec![
            (vec![1, 2], vec![3, 4, 5], vec![7, 8], vec![9], 1.0),
            (vec![1, 2], vec![4, 5, 6], vec![7, 8], vec![9], 0.0),
            (vec![1, 2], vec![3, 4, 5], vec![10], vec![11], 1.0),
        ];
        rows.into_iter()
            .enumerate()
            .map(|(i, (a, b, c, d, label))| {
                Sample::builder(
                    SessionId::new(1),
                    RequestId::new(i as u64),
                    Timestamp::from_millis(i as u64),
                )
                .label(label)
                .dense(vec![i as f32])
                .sparse(vec![a, b, c, d])
                .build()
            })
            .collect()
    }

    fn figure5_config() -> DataLoaderConfig {
        DataLoaderConfig::new()
            .with_kjt_features([f(0)])
            .with_dedup_group([f(1)])
            .with_dedup_group([f(2), f(3)])
            .with_dense_features(1)
    }

    #[test]
    fn figure5_conversion() {
        let converted = FeatureConverter::new(figure5_config())
            .convert(&figure5_batch())
            .unwrap();
        assert_eq!(converted.batch_size, 3);
        assert_eq!(converted.labels, vec![1.0, 0.0, 1.0]);
        assert_eq!(converted.dense.row(2), &[2.0]);

        // Feature a stays a KJT with duplicate values intact.
        let a = converted.kjt.feature(f(0)).unwrap();
        assert_eq!(a.values(), &[1, 2, 1, 2, 1, 2]);

        // Feature b: rows 0 and 2 deduplicated.
        let b = &converted.ikjts[0];
        assert_eq!(b.inverse_lookup(), &[0, 1, 0]);
        assert_eq!(b.feature(f(1)).unwrap().values(), &[3, 4, 5, 4, 5, 6]);

        // Features c and d grouped: rows 0 and 1 share a slot.
        let cd = &converted.ikjts[1];
        assert_eq!(cd.inverse_lookup(), &[0, 0, 1]);
        assert_eq!(cd.feature(f(2)).unwrap().values(), &[7, 8, 10]);
        assert_eq!(cd.feature(f(3)).unwrap().values(), &[9, 11]);

        // Logical content is preserved: expanding every IKJT gives back the
        // original per-row values.
        assert_eq!(cd.to_kjt().unwrap().feature(f(2)).unwrap().row(1), &[7, 8]);
        assert!(converted.stored_sparse_values() < converted.logical_sparse_values());
        assert!(converted.dedupe_factor() > 1.0);
    }

    #[test]
    fn columnar_conversion_is_value_identical_to_row_wise() {
        let batch = figure5_batch();
        let columnar = ColumnarBatch::from_samples(batch.samples(), 1, 4);
        let converter = FeatureConverter::new(figure5_config());

        let row_wise = converter.convert(&batch).unwrap();
        let col_wise = converter.convert_columnar(&columnar).unwrap();
        assert_eq!(row_wise, col_wise);

        let row_base = converter.convert_baseline(&batch).unwrap();
        let col_base = converter.convert_columnar_baseline(&columnar).unwrap();
        assert_eq!(row_base, col_base);

        // Empty columnar batches convert cleanly too.
        let empty = converter
            .convert_columnar(&ColumnarBatch::new(1, 4))
            .unwrap();
        assert_eq!(empty.batch_size, 0);
        assert_eq!(empty.dedupe_factor(), 1.0);
    }

    #[test]
    fn baseline_conversion_keeps_everything_in_kjt() {
        let converter = FeatureConverter::new(figure5_config());
        let baseline = converter.convert_baseline(&figure5_batch()).unwrap();
        assert!(baseline.ikjts.is_empty());
        assert_eq!(baseline.kjt.feature_count(), 4);
        assert_eq!(baseline.dedupe_factor(), 1.0);

        let recd = converter.convert(&figure5_batch()).unwrap();
        assert_eq!(
            baseline.logical_sparse_values(),
            recd.logical_sparse_values(),
            "deduplication must not change the logical data"
        );
        assert!(recd.sparse_payload_bytes() <= baseline.sparse_payload_bytes());
    }

    #[test]
    fn duplicate_feature_across_config_sections_is_rejected() {
        let config = DataLoaderConfig::new()
            .with_kjt_features([f(1)])
            .with_dedup_group([f(1)]);
        assert!(matches!(
            config.validate(),
            Err(CoreError::DuplicateFeatureInConfig { .. })
        ));
        let err = FeatureConverter::new(config)
            .convert(&figure5_batch())
            .unwrap_err();
        assert!(matches!(err, CoreError::DuplicateFeatureInConfig { .. }));
    }

    #[test]
    fn config_from_schema_uses_declared_groups() {
        let schema = Schema::builder()
            .dense("d0")
            .dedup_groups(1)
            .sparse_with(
                "user_hist",
                FeatureClass::User,
                50.0,
                0.9,
                1 << 20,
                64,
                Some(recd_data::DedupGroupId::new(0)),
            )
            .sparse("item", FeatureClass::Item, 1.0, 0.1, 1 << 20)
            .build()
            .unwrap();
        let config = DataLoaderConfig::from_schema(&schema);
        assert_eq!(config.dense_features, 1);
        assert_eq!(config.kjt_features, vec![f(1)]);
        assert_eq!(config.dedup_groups, vec![vec![f(0)]]);
        assert!(config.validate().is_ok());

        let baseline = DataLoaderConfig::baseline_from_schema(&schema);
        assert!(baseline.dedup_groups.is_empty());
        assert_eq!(baseline.kjt_features.len(), 2);
    }

    #[test]
    fn empty_batch_conversion() {
        let converted = FeatureConverter::new(figure5_config())
            .convert(&SampleBatch::empty())
            .unwrap();
        assert_eq!(converted.batch_size, 0);
        assert!(converted.labels.is_empty());
        assert_eq!(converted.dedupe_factor(), 1.0);
    }
}
