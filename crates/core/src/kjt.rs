//! KeyedJaggedTensor: the conventional (non-deduplicated) sparse-feature
//! container, equivalent to TorchRec's `KeyedJaggedTensor`.

use crate::jagged::JaggedTensor;
use crate::{CoreError, Result};
use recd_data::{ColumnarBatch, FeatureId, SampleBatch};
use serde::{Deserialize, Serialize};

/// A keyed collection of jagged tensors, one per sparse feature, each with
/// one row per sample in the batch (paper §4.2, Figure 5).
///
/// # Example
///
/// ```
/// use recd_core::KeyedJaggedTensor;
/// use recd_data::{FeatureId, RequestId, Sample, SessionId, Timestamp};
///
/// let samples: recd_data::SampleBatch = (0..2)
///     .map(|i| {
///         Sample::builder(SessionId::new(1), RequestId::new(i), Timestamp::from_millis(i))
///             .sparse(vec![vec![i, i + 1]])
///             .build()
///     })
///     .collect();
/// let kjt = KeyedJaggedTensor::from_batch(&samples, &[FeatureId::new(0)])?;
/// assert_eq!(kjt.batch_size(), 2);
/// assert_eq!(kjt.feature(FeatureId::new(0)).unwrap().row(1), &[1, 2]);
/// # Ok::<(), recd_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KeyedJaggedTensor {
    keys: Vec<FeatureId>,
    tensors: Vec<JaggedTensor<u64>>,
    batch_size: usize,
}

impl KeyedJaggedTensor {
    /// Creates an empty KJT for a batch of `batch_size` rows.
    pub fn empty(batch_size: usize) -> Self {
        Self {
            keys: Vec::new(),
            tensors: Vec::new(),
            batch_size,
        }
    }

    /// Creates a KJT from per-feature jagged tensors.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BatchSizeMismatch`] if the tensors do not all
    /// have the same row count, or [`CoreError::DuplicateFeatureInConfig`]
    /// if a key repeats.
    pub fn from_tensors(entries: Vec<(FeatureId, JaggedTensor<u64>)>) -> Result<Self> {
        let batch_size = entries.first().map(|(_, t)| t.row_count()).unwrap_or(0);
        let mut kjt = Self::empty(batch_size);
        for (key, tensor) in entries {
            kjt.insert(key, tensor)?;
        }
        Ok(kjt)
    }

    /// Extracts the listed sparse features from a batch of samples.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MissingSparseFeature`] if a sample does not carry
    /// one of the requested features.
    pub fn from_batch(batch: &SampleBatch, features: &[FeatureId]) -> Result<Self> {
        let mut kjt = Self::empty(batch.len());
        for &feature in features {
            let mut tensor = JaggedTensor::new();
            for sample in batch.iter() {
                if feature.index() >= sample.sparse.len() {
                    return Err(CoreError::MissingSparseFeature {
                        feature,
                        available: sample.sparse.len(),
                    });
                }
                tensor.push_row(&sample.sparse[feature.index()]);
            }
            kjt.insert(feature, tensor)?;
        }
        Ok(kjt)
    }

    /// Extracts the listed sparse features from a columnar batch. Each
    /// feature's jagged tensor is built from two flat buffer copies (values
    /// and offsets) instead of one `push_row` per sample — the columnar
    /// convert path's KJT constructor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MissingSparseFeature`] if the batch carries
    /// fewer sparse columns than a requested feature's index.
    pub fn from_columnar(batch: &ColumnarBatch, features: &[FeatureId]) -> Result<Self> {
        let mut kjt = Self::empty(batch.len());
        for &feature in features {
            let column =
                batch
                    .sparse_column(feature.index())
                    .ok_or(CoreError::MissingSparseFeature {
                        feature,
                        available: batch.sparse_cols(),
                    })?;
            let tensor =
                JaggedTensor::from_parts(column.values().to_vec(), column.offsets().to_vec())
                    .expect("a valid sparse column is a valid jagged tensor");
            kjt.insert(feature, tensor)?;
        }
        Ok(kjt)
    }

    /// Adds a feature tensor to the KJT.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BatchSizeMismatch`] if the tensor's row count
    /// differs from the KJT's batch size, or
    /// [`CoreError::DuplicateFeatureInConfig`] if the key is already present.
    pub fn insert(&mut self, key: FeatureId, tensor: JaggedTensor<u64>) -> Result<()> {
        if tensor.row_count() != self.batch_size {
            return Err(CoreError::BatchSizeMismatch {
                expected: self.batch_size,
                actual: tensor.row_count(),
            });
        }
        if self.keys.contains(&key) {
            return Err(CoreError::DuplicateFeatureInConfig { feature: key });
        }
        self.keys.push(key);
        self.tensors.push(tensor);
        Ok(())
    }

    /// Number of rows (samples) in the batch.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Feature keys in insertion order.
    pub fn keys(&self) -> &[FeatureId] {
        &self.keys
    }

    /// Number of features.
    pub fn feature_count(&self) -> usize {
        self.keys.len()
    }

    /// Returns true if the KJT holds no features.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Looks up a feature's jagged tensor.
    pub fn feature(&self, key: FeatureId) -> Option<&JaggedTensor<u64>> {
        self.keys
            .iter()
            .position(|&k| k == key)
            .map(|i| &self.tensors[i])
    }

    /// Looks up a feature's jagged tensor, returning an error if absent.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownFeature`] if the feature is not present.
    pub fn feature_required(&self, key: FeatureId) -> Result<&JaggedTensor<u64>> {
        self.feature(key)
            .ok_or(CoreError::UnknownFeature { feature: key })
    }

    /// Iterates over `(feature, tensor)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (FeatureId, &JaggedTensor<u64>)> {
        self.keys.iter().copied().zip(self.tensors.iter())
    }

    /// Iterates over `(feature, tensor)` pairs with mutable tensor access —
    /// the view in-place preprocessing transforms write through.
    ///
    /// The caller must preserve each tensor's row count (the KJT's
    /// batch-size invariant); every shipped transform does, since
    /// preprocessing maps rows to rows.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (FeatureId, &mut JaggedTensor<u64>)> {
        self.keys.iter().copied().zip(self.tensors.iter_mut())
    }

    /// Refills the KJT from a columnar batch, reusing the existing tensor
    /// buffers when the feature list is unchanged (the steady-state case of
    /// a recycled [`ConvertedBatch`](crate::ConvertedBatch) shell) and
    /// rebuilding from scratch otherwise.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`KeyedJaggedTensor::from_columnar`].
    pub fn assign_from_columnar(
        &mut self,
        batch: &ColumnarBatch,
        features: &[FeatureId],
    ) -> Result<()> {
        if self.keys != features {
            *self = Self::from_columnar(batch, features)?;
            return Ok(());
        }
        self.batch_size = batch.len();
        for (&feature, tensor) in features.iter().zip(&mut self.tensors) {
            let column =
                batch
                    .sparse_column(feature.index())
                    .ok_or(CoreError::MissingSparseFeature {
                        feature,
                        available: batch.sparse_cols(),
                    })?;
            tensor
                .assign_flat(column.values(), column.offsets())
                .expect("a valid sparse column is a valid jagged tensor");
        }
        Ok(())
    }

    /// Total number of sparse values across all features.
    pub fn value_count(&self) -> usize {
        self.tensors.iter().map(JaggedTensor::value_count).sum()
    }

    /// Bytes transferred when this KJT's `values` and `offsets` slices are
    /// shipped over the network (e.g. reader→trainer, or the SDD all-to-all).
    pub fn payload_bytes(&self) -> usize {
        self.tensors.iter().map(|t| t.payload_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_data::{RequestId, Sample, SessionId, Timestamp};

    fn batch() -> SampleBatch {
        (0..3u64)
            .map(|i| {
                Sample::builder(
                    SessionId::new(1),
                    RequestId::new(i),
                    Timestamp::from_millis(i),
                )
                .sparse(vec![vec![i, i + 1], vec![100 + i]])
                .build()
            })
            .collect()
    }

    #[test]
    fn from_batch_extracts_features_in_order() {
        let kjt = KeyedJaggedTensor::from_batch(&batch(), &[FeatureId::new(1), FeatureId::new(0)])
            .unwrap();
        assert_eq!(kjt.batch_size(), 3);
        assert_eq!(kjt.feature_count(), 2);
        assert_eq!(kjt.keys(), &[FeatureId::new(1), FeatureId::new(0)]);
        assert_eq!(kjt.feature(FeatureId::new(1)).unwrap().row(2), &[102]);
        assert_eq!(kjt.feature(FeatureId::new(0)).unwrap().row(0), &[0, 1]);
        assert_eq!(kjt.value_count(), 3 + 6);
        assert!(!kjt.is_empty());
    }

    #[test]
    fn missing_feature_is_an_error() {
        let err = KeyedJaggedTensor::from_batch(&batch(), &[FeatureId::new(9)]).unwrap_err();
        assert!(matches!(err, CoreError::MissingSparseFeature { .. }));
    }

    #[test]
    fn insert_validates_batch_size_and_duplicates() {
        let mut kjt = KeyedJaggedTensor::empty(2);
        let t = JaggedTensor::from_lists(&[vec![1u64], vec![2]]);
        kjt.insert(FeatureId::new(0), t.clone()).unwrap();
        assert!(matches!(
            kjt.insert(FeatureId::new(0), t.clone()),
            Err(CoreError::DuplicateFeatureInConfig { .. })
        ));
        let wrong = JaggedTensor::from_lists(&[vec![1u64]]);
        assert!(matches!(
            kjt.insert(FeatureId::new(1), wrong),
            Err(CoreError::BatchSizeMismatch { .. })
        ));
    }

    #[test]
    fn feature_required_and_iter() {
        let kjt = KeyedJaggedTensor::from_batch(&batch(), &[FeatureId::new(0)]).unwrap();
        assert!(kjt.feature_required(FeatureId::new(0)).is_ok());
        assert!(matches!(
            kjt.feature_required(FeatureId::new(5)),
            Err(CoreError::UnknownFeature { .. })
        ));
        let pairs: Vec<_> = kjt.iter().collect();
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn payload_bytes_sums_feature_tensors() {
        let kjt = KeyedJaggedTensor::from_batch(&batch(), &[FeatureId::new(0), FeatureId::new(1)])
            .unwrap();
        let expected: usize = kjt.iter().map(|(_, t)| t.payload_bytes()).sum();
        assert_eq!(kjt.payload_bytes(), expected);
    }

    #[test]
    fn from_tensors_round_trip() {
        let entries = vec![
            (
                FeatureId::new(3),
                JaggedTensor::from_lists(&[vec![1u64], vec![]]),
            ),
            (
                FeatureId::new(5),
                JaggedTensor::from_lists(&[vec![2u64, 3], vec![4]]),
            ),
        ];
        let kjt = KeyedJaggedTensor::from_tensors(entries).unwrap();
        assert_eq!(kjt.batch_size(), 2);
        assert_eq!(kjt.feature(FeatureId::new(5)).unwrap().row(0), &[2, 3]);
    }
}
