//! Error type for tensor-format violations.

use recd_data::FeatureId;
use std::error::Error;
use std::fmt;

/// Errors produced when constructing or manipulating jagged tensor formats.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An offsets slice was malformed (not starting at zero, decreasing, or
    /// not ending at the values length).
    InvalidOffsets {
        /// Human-readable description of the violation.
        reason: &'static str,
    },
    /// An `inverse_lookup` entry referenced a slot that does not exist.
    InvalidInverseLookup {
        /// Row whose lookup entry is invalid.
        row: usize,
        /// The offending slot index.
        slot: usize,
        /// Number of slots available.
        slots: usize,
    },
    /// A feature id was not found in the tensor or configuration.
    UnknownFeature {
        /// The feature that was looked up.
        feature: FeatureId,
    },
    /// Two containers that must agree on batch size did not.
    BatchSizeMismatch {
        /// Expected batch size.
        expected: usize,
        /// Actual batch size.
        actual: usize,
    },
    /// The features grouped into one IKJT did not have the same slot count,
    /// violating the shared-inverse-lookup invariant.
    GroupInvariantViolation {
        /// Description of the violation.
        reason: String,
    },
    /// A sample carried fewer sparse features than the converter expected.
    MissingSparseFeature {
        /// The feature that was expected.
        feature: FeatureId,
        /// Number of sparse features the sample actually carried.
        available: usize,
    },
    /// A data-loader configuration listed the same feature more than once.
    DuplicateFeatureInConfig {
        /// The duplicated feature.
        feature: FeatureId,
    },
    /// An index-select index was out of range.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of rows available.
        rows: usize,
    },
    /// An operation that requires a non-empty batch received an empty one.
    EmptyBatch,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidOffsets { reason } => write!(f, "invalid offsets slice: {reason}"),
            CoreError::InvalidInverseLookup { row, slot, slots } => write!(
                f,
                "inverse_lookup[{row}] = {slot} is out of range for {slots} slots"
            ),
            CoreError::UnknownFeature { feature } => {
                write!(f, "feature {feature} not present in this container")
            }
            CoreError::BatchSizeMismatch { expected, actual } => {
                write!(f, "batch size {actual} does not match expected {expected}")
            }
            CoreError::GroupInvariantViolation { reason } => {
                write!(f, "grouped ikjt invariant violated: {reason}")
            }
            CoreError::MissingSparseFeature { feature, available } => write!(
                f,
                "sample carries {available} sparse features but {feature} was requested"
            ),
            CoreError::DuplicateFeatureInConfig { feature } => {
                write!(
                    f,
                    "feature {feature} appears more than once in the dataloader config"
                )
            }
            CoreError::IndexOutOfRange { index, rows } => {
                write!(f, "index {index} out of range for {rows} rows")
            }
            CoreError::EmptyBatch => write!(f, "operation requires a non-empty batch"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = CoreError::InvalidInverseLookup {
            row: 3,
            slot: 9,
            slots: 2,
        };
        let msg = err.to_string();
        assert!(msg.contains('3') && msg.contains('9') && msg.contains('2'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CoreError>();
    }
}
