//! Measured per-batch deduplication statistics.
//!
//! These are the quantities the paper characterizes in §3 (exact duplicate
//! fractions per feature) restricted to a single batch, and the measured
//! counterpart of the analytical [`DedupeModel`](crate::DedupeModel).

use crate::kjt::KeyedJaggedTensor;
use recd_codec::hash_ids;
use recd_data::FeatureId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Exact-duplication statistics for one feature within one batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureDedupStats {
    /// The feature measured.
    pub feature: FeatureId,
    /// Number of batch rows.
    pub rows: usize,
    /// Rows whose value exactly equals the value of an earlier row in the
    /// batch.
    pub exact_duplicate_rows: usize,
    /// Total ids carried by the feature across all rows.
    pub original_values: usize,
    /// Ids carried after exact-match deduplication.
    pub dedup_values: usize,
}

impl FeatureDedupStats {
    /// Fraction of rows that are exact duplicates of an earlier row.
    pub fn exact_duplicate_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.exact_duplicate_rows as f64 / self.rows as f64
        }
    }

    /// Fraction of ids (bytes) eliminated by exact-match deduplication.
    pub fn duplicate_value_fraction(&self) -> f64 {
        if self.original_values == 0 {
            0.0
        } else {
            (self.original_values - self.dedup_values) as f64 / self.original_values as f64
        }
    }

    /// Measured deduplication factor for the feature in this batch.
    pub fn dedupe_factor(&self) -> f64 {
        if self.dedup_values == 0 {
            1.0
        } else {
            self.original_values as f64 / self.dedup_values as f64
        }
    }
}

/// Exact-duplication statistics for every feature of a batch.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BatchDedupStats {
    /// Per-feature statistics, in KJT key order.
    pub per_feature: Vec<FeatureDedupStats>,
}

impl BatchDedupStats {
    /// Measures exact duplication for every feature of a KJT.
    pub fn measure(kjt: &KeyedJaggedTensor) -> Self {
        let per_feature = kjt
            .iter()
            .map(|(feature, tensor)| {
                let mut seen: HashMap<u64, Vec<usize>> = HashMap::new();
                let mut exact_duplicate_rows = 0;
                let mut dedup_values = 0;
                for (row_idx, row) in tensor.iter().enumerate() {
                    let digest = hash_ids(row);
                    let candidates = seen.entry(digest).or_default();
                    let duplicate = candidates.iter().any(|&earlier| tensor.row(earlier) == row);
                    if duplicate {
                        exact_duplicate_rows += 1;
                    } else {
                        dedup_values += row.len();
                        candidates.push(row_idx);
                    }
                }
                FeatureDedupStats {
                    feature,
                    rows: tensor.row_count(),
                    exact_duplicate_rows,
                    original_values: tensor.value_count(),
                    dedup_values,
                }
            })
            .collect();
        Self { per_feature }
    }

    /// Total ids across all features before deduplication.
    pub fn total_original_values(&self) -> usize {
        self.per_feature.iter().map(|f| f.original_values).sum()
    }

    /// Total ids across all features after deduplication.
    pub fn total_dedup_values(&self) -> usize {
        self.per_feature.iter().map(|f| f.dedup_values).sum()
    }

    /// Value-weighted (byte-weighted) exact-duplicate fraction across all
    /// features — the quantity the paper reports as 81.6% for the full
    /// partition.
    pub fn weighted_duplicate_fraction(&self) -> f64 {
        let original = self.total_original_values();
        if original == 0 {
            0.0
        } else {
            (original - self.total_dedup_values()) as f64 / original as f64
        }
    }

    /// Batch-level deduplication factor across all measured features.
    pub fn overall_dedupe_factor(&self) -> f64 {
        let dedup = self.total_dedup_values();
        if dedup == 0 {
            1.0
        } else {
            self.total_original_values() as f64 / dedup as f64
        }
    }

    /// Looks up the statistics for one feature.
    pub fn feature(&self, feature: FeatureId) -> Option<&FeatureDedupStats> {
        self.per_feature.iter().find(|f| f.feature == feature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jagged::JaggedTensor;

    fn f(i: u32) -> FeatureId {
        FeatureId::new(i)
    }

    #[test]
    fn measures_duplicates_per_feature() {
        let kjt = KeyedJaggedTensor::from_tensors(vec![
            (
                f(0),
                JaggedTensor::from_lists(&[vec![1u64, 2], vec![1, 2], vec![1, 2], vec![9]]),
            ),
            (
                f(1),
                JaggedTensor::from_lists(&[vec![5u64], vec![6], vec![7], vec![8]]),
            ),
        ])
        .unwrap();
        let stats = BatchDedupStats::measure(&kjt);
        let s0 = stats.feature(f(0)).unwrap();
        assert_eq!(s0.rows, 4);
        assert_eq!(s0.exact_duplicate_rows, 2);
        assert_eq!(s0.original_values, 7);
        assert_eq!(s0.dedup_values, 3);
        assert!((s0.exact_duplicate_fraction() - 0.5).abs() < 1e-12);
        assert!((s0.dedupe_factor() - 7.0 / 3.0).abs() < 1e-12);

        let s1 = stats.feature(f(1)).unwrap();
        assert_eq!(s1.exact_duplicate_rows, 0);
        assert_eq!(s1.dedupe_factor(), 1.0);

        assert_eq!(stats.total_original_values(), 11);
        assert_eq!(stats.total_dedup_values(), 7);
        assert!((stats.weighted_duplicate_fraction() - 4.0 / 11.0).abs() < 1e-12);
        assert!(stats.overall_dedupe_factor() > 1.0);
        assert!(stats.feature(f(9)).is_none());
    }

    #[test]
    fn empty_batch_statistics() {
        let kjt = KeyedJaggedTensor::from_tensors(vec![(f(0), JaggedTensor::new())]).unwrap();
        let stats = BatchDedupStats::measure(&kjt);
        let s = stats.feature(f(0)).unwrap();
        assert_eq!(s.exact_duplicate_fraction(), 0.0);
        assert_eq!(s.duplicate_value_fraction(), 0.0);
        assert_eq!(stats.weighted_duplicate_fraction(), 0.0);
        assert_eq!(stats.overall_dedupe_factor(), 1.0);
    }

    #[test]
    fn empty_value_lists_count_as_duplicates_but_contribute_no_bytes() {
        let kjt = KeyedJaggedTensor::from_tensors(vec![(
            f(0),
            JaggedTensor::from_lists(&[vec![], vec![], vec![1u64]]),
        )])
        .unwrap();
        let stats = BatchDedupStats::measure(&kjt);
        let s = stats.feature(f(0)).unwrap();
        assert_eq!(s.exact_duplicate_rows, 1);
        assert_eq!(s.original_values, 1);
        assert_eq!(s.dedup_values, 1);
    }
}
