//! Whole-pipeline checkpoint: the ETL-tier and DPP-tier checkpoints framed
//! as one serializable blob.
//!
//! The continuous runner takes a [`PipelineCheckpoint`] at every barrier
//! boundary — right after `DppHandle::flush_partition` resolves, when the
//! ETL sealed queue is drained and every routed row has been delivered — so
//! the two halves are mutually consistent: the DPP dedup set covers exactly
//! the partitions the ETL landing record says were landed. A crash-restart
//! rebuilds the ETL service with
//! [`EtlService::resume_from`](recd_etl::EtlService::resume_from) from the
//! `etl` half; the replayed partitions the rewound tail re-lands are then
//! absorbed by the DPP service's ingest dedup, which composes at-least-once
//! replay into an exactly-once trainer feed.
//!
//! The framing reuses the tiers' own wire formats: a `"RPCK"` magic +
//! version header followed by the two length-prefixed nested blobs, each
//! validated by its own magic on decode.

use recd_codec::{ByteReader, ByteWriter};
use recd_dpp::DppCheckpoint;
use recd_etl::{CheckpointError, EtlCheckpoint};

/// Magic prefix of a serialized pipeline checkpoint (`"RPCK"`).
const MAGIC: u32 = u32::from_le_bytes(*b"RPCK");
/// Current wire-format version.
const VERSION: u16 = 1;

/// The continuous pipeline's complete durable state at a barrier boundary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PipelineCheckpoint {
    /// The streaming ETL service's state (tail cursor, join/clustering
    /// state machine, landing record).
    pub etl: EtlCheckpoint,
    /// The DPP service's state (rotation baseline, barrier sequence,
    /// cumulative counters, ingest dedup set).
    pub dpp: DppCheckpoint,
}

impl PipelineCheckpoint {
    /// Serializes both halves into one self-describing blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(MAGIC);
        w.put_u64(u64::from(VERSION));
        w.put_bytes(&self.etl.to_bytes());
        w.put_bytes(&self.dpp.to_bytes());
        w.into_bytes()
    }

    /// Decodes a blob produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on a wrong magic, an unsupported version,
    /// a malformed nested checkpoint, or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_u32()?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic { found: magic });
        }
        let version = r.get_u64()?;
        if version != u64::from(VERSION) {
            return Err(CheckpointError::UnsupportedVersion {
                found: version.min(u64::from(u16::MAX)) as u16,
            });
        }
        let etl = EtlCheckpoint::from_bytes(&r.get_bytes()?)?;
        let dpp = DppCheckpoint::from_bytes(&r.get_bytes()?)?;
        if !r.is_exhausted() {
            return Err(CheckpointError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(Self { etl, dpp })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> PipelineCheckpoint {
        PipelineCheckpoint {
            etl: EtlCheckpoint {
                tail_cursor: 12,
                peak_tail_lag_ms: 4_200,
                hour_seal_counts: vec![(0, 1), (1, 1)],
                ..EtlCheckpoint::default()
            },
            dpp: DppCheckpoint {
                files_routed: 10,
                partitions_ingested: 2,
                duplicate_ingests: 0,
                next_barrier_id: 3,
                ingested: vec!["rm1/hour=0/".into(), "rm1/hour=1/".into()],
            },
        }
    }

    #[test]
    fn round_trips_byte_exactly() {
        let checkpoint = fixture();
        let bytes = checkpoint.to_bytes();
        let back = PipelineCheckpoint::from_bytes(&bytes).expect("decode");
        assert_eq!(back, checkpoint);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let checkpoint = PipelineCheckpoint::default();
        let back = PipelineCheckpoint::from_bytes(&checkpoint.to_bytes()).expect("decode");
        assert_eq!(back, checkpoint);
    }

    #[test]
    fn bad_magic_and_trailing_bytes_fail_loudly() {
        let good = fixture().to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            PipelineCheckpoint::from_bytes(&bad_magic),
            Err(CheckpointError::BadMagic { .. })
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 0xEE;
        assert!(matches!(
            PipelineCheckpoint::from_bytes(&bad_version),
            Err(CheckpointError::UnsupportedVersion { .. })
        ));

        assert!(PipelineCheckpoint::from_bytes(&good[..good.len() - 1]).is_err());

        let mut trailing = good;
        trailing.push(7);
        assert!(matches!(
            PipelineCheckpoint::from_bytes(&trailing),
            Err(CheckpointError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn nested_blob_corruption_is_detected_by_the_inner_magic() {
        let mut bytes = fixture().to_bytes();
        // The ETL blob starts after magic(4) + version(8) + length prefix(8);
        // flipping its first byte corrupts the nested magic.
        bytes[20] ^= 0xFF;
        assert!(matches!(
            PipelineCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::BadMagic { .. })
        ));
    }
}
