//! The end-to-end pipeline runner.

use crate::checkpoint::PipelineCheckpoint;
use crate::config::{RecdConfig, RmSpec};
use recd_chaos::{ChaosReport, FaultAction, FaultInjector, FaultPlan, RetryPolicy};
use recd_core::{ConvertedBatch, DataLoaderConfig};
use recd_data::{LogRecord, Schema};
use recd_datagen::DatasetGenerator;
use recd_dpp::{
    CtrlConfig, DppConfig, DppFleet, DppReport, DppService, FleetConfig, FleetReport, RecvTimeout,
    ShardPolicy, TrainerAssignPolicy, TrainerBatch, TrainerHandle,
};
use recd_etl::{EtlJob, EtlService, EtlServiceReport, EtlStreamConfig, ManualClock, TableLayout};
use recd_obs::{AggregatorConfig, MetricsAggregator, MetricsRegistry, RegistryFederation};
use recd_reader::{PreprocessPipeline, ReaderConfig, ReaderTier, TierReport};
use recd_scribe::{LogTail, ScribeCluster, ScribeConfig, ScribeReport, ShardKeyPolicy, TailConfig};
use recd_storage::{NodeConfig, StorageReport, TableStore, TectonicSim};
use recd_trainer::{
    ClusterSpec, DlrmConfig, IterationCost, MemoryReport, TrainerOptimizations, WorkStats,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Everything measured by one end-to-end pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// RM preset name.
    pub rm: String,
    /// The optimization switches used.
    pub config: RecdConfig,
    /// Global batch size used for reading and training.
    pub batch_size: usize,
    /// Samples that flowed through the pipeline.
    pub samples: usize,
    /// Scribe tier byte accounting (O1).
    pub scribe: ScribeReport,
    /// Storage byte accounting (O2).
    pub storage: StorageReport,
    /// Reader tier accounting (O3, O4).
    pub reader: TierReport,
    /// Modeled training iteration cost (O5–O7).
    pub trainer: IterationCost,
    /// Modeled GPU memory usage.
    pub memory: MemoryReport,
    /// Measured average in-batch deduplication factor over grouped features.
    pub dedupe_factor: f64,
    /// Total bytes readers fetched from storage.
    pub read_bytes: usize,
    /// Total bytes readers sent toward trainers.
    pub egress_bytes: usize,
    /// Streaming DPP service accounting (wall-clock throughput, queue
    /// peaks), present when the runner was configured with
    /// [`PipelineRunner::with_streaming`].
    pub streaming: Option<DppReport>,
    /// Continuous-pipeline accounting (log tail → streaming ETL → land →
    /// `recd-dpp` ingest), present when the runner was configured with
    /// [`PipelineRunner::with_continuous`].
    pub continuous: Option<ContinuousReport>,
    /// Chaos-engine accounting (faults fired, retries, backoff, pump
    /// crash/recovery), present when the runner was configured with
    /// [`PipelineRunner::with_chaos`].
    pub chaos: Option<ChaosReport>,
}

/// Accounting of one continuous (tail-fed) pipeline run: the streaming ETL
/// stage's join/seal/land report plus the `recd-dpp` service report of the
/// run that consumed its landed partitions as they appeared.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContinuousReport {
    /// Streaming ETL accounting (join, watermark, seals, landing).
    pub etl: EtlServiceReport,
    /// The consuming `recd-dpp` service's accounting
    /// (`partitions_ingested` counts the hand-offs). In fleet mode this is
    /// the fleet-level aggregate: `samples`/`batches` count unique forwarded
    /// work, pool/queue/reader fields aggregate over host incarnations.
    pub dpp: DppReport,
    /// Fleet control-plane accounting (heartbeats, deaths, replay,
    /// rebalance), present when the runner was configured with
    /// [`PipelineRunner::with_hosts`].
    #[serde(default)]
    pub fleet: Option<FleetReport>,
    /// Derived metrics captured by the observability plane's aggregator,
    /// which polled the cross-tier registry between pump steps.
    pub derived: ContinuousDerived,
}

/// A serializable mirror of the aggregator's
/// [`DerivedMetrics`](recd_obs::DerivedMetrics) plus how many time series
/// were tracked (`recd-obs` is dependency-free, so the serde projection
/// lives here).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ContinuousDerived {
    /// Samples emitted toward trainers per wall-clock second over the
    /// aggregation window.
    pub records_per_second: Option<f64>,
    /// Trend of the ETL tail lag in ms per second of wall time; negative
    /// means the streaming ETL is catching up.
    pub tail_lag_trend_ms_per_s: Option<f64>,
    /// Batch-pool hit ratio at the end of the run.
    pub pool_hit_ratio: Option<f64>,
    /// Worst per-pool hit ratio at the end of the run (the pool to look at
    /// first when the aggregate dips).
    #[serde(default)]
    pub min_pool_hit_ratio: Option<f64>,
    /// Sustained end-to-end throughput: samples that reached the trainer
    /// side divided by the run's wall-clock seconds. Unlike
    /// [`records_per_second`](Self::records_per_second) (an aggregation-
    /// window rate), this is the whole-run number the bench gate tracks.
    #[serde(default)]
    pub pipeline_records_per_second: Option<f64>,
    /// Distinct time series retained by the aggregator.
    pub series_tracked: usize,
}

/// The report plus the artifacts downstream experiments reuse.
#[derive(Debug)]
pub struct PipelineArtifacts {
    /// The dataset schema.
    pub schema: Schema,
    /// Preprocessed batches, in storage order.
    pub batches: Vec<ConvertedBatch>,
    /// The model configuration derived from the RM spec.
    pub model: DlrmConfig,
    /// The run's measurements.
    pub report: PipelineReport,
    /// Every batch the continuous fan-out lanes delivered, as collected by
    /// the simulated trainer consumers. Empty unless the runner was
    /// configured with both [`PipelineRunner::with_continuous`] (or
    /// [`PipelineRunner::with_chaos`]) and
    /// [`PipelineRunner::with_continuous_trainers`]. The chaos convergence
    /// tests compare these unions across faulted and fault-free runs.
    pub continuous_batches: Vec<TrainerBatch>,
}

/// Storage-tier knobs for every blob store a run builds: node count, the
/// optional per-node queue model, and the optional blob cache tier. The
/// defaults reproduce the historical flat store (8 nodes, no queueing, no
/// cache).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageSimConfig {
    /// Storage nodes backing the simulated blob store.
    pub nodes: usize,
    /// Per-node service model; `None` keeps the flat-latency store.
    pub node: Option<NodeConfig>,
    /// Blob cache byte budget; `0` disables the cache tier.
    pub cache_bytes: usize,
}

impl Default for StorageSimConfig {
    fn default() -> Self {
        Self {
            nodes: 8,
            node: None,
            cache_bytes: 0,
        }
    }
}

impl StorageSimConfig {
    /// Builds a blob store with these knobs applied.
    pub fn build(&self) -> TectonicSim {
        let mut store = TectonicSim::new(self.nodes.max(1));
        if let Some(node) = self.node {
            store = store.with_node_config(node);
        }
        if self.cache_bytes > 0 {
            store = store.with_cache(self.cache_bytes);
        }
        store
    }
}

/// Runs one RM workload through the full pipeline under a given
/// [`RecdConfig`].
#[derive(Debug, Clone)]
pub struct PipelineRunner {
    spec: RmSpec,
    config: RecdConfig,
    readers: usize,
    streaming_workers: Option<usize>,
    streaming_trainers: usize,
    continuous_workers: Option<usize>,
    continuous_trainers: usize,
    hosts: usize,
    chaos: Option<FaultPlan>,
    storage: StorageSimConfig,
    ctrl: Option<CtrlConfig>,
    continuous_queue_depth: Option<usize>,
    continuous_file_shape: Option<(usize, usize)>,
}

impl PipelineRunner {
    /// Creates a runner.
    pub fn new(spec: RmSpec, config: RecdConfig) -> Self {
        Self {
            spec,
            config,
            readers: 2,
            streaming_workers: None,
            streaming_trainers: 0,
            continuous_workers: None,
            continuous_trainers: 0,
            hosts: 0,
            chaos: None,
            storage: StorageSimConfig::default(),
            ctrl: None,
            continuous_queue_depth: None,
            continuous_file_shape: None,
        }
    }

    /// Overrides the storage-tier knobs (node queueing, cache) for every
    /// blob store the run builds — batch, continuous, and fleet modes alike.
    #[must_use]
    pub fn with_storage(mut self, storage: StorageSimConfig) -> Self {
        self.storage = storage;
        self
    }

    /// Overrides the number of reader nodes.
    #[must_use]
    pub fn with_readers(mut self, readers: usize) -> Self {
        self.readers = readers.max(1);
        self
    }

    /// Additionally drives the streaming `recd-dpp` service (with the given
    /// compute worker count) over the landed partitions and records its
    /// wall-clock throughput in [`PipelineReport::streaming`].
    #[must_use]
    pub fn with_streaming(mut self, compute_workers: usize) -> Self {
        self.streaming_workers = Some(compute_workers.max(1));
        self
    }

    /// In streaming mode, fans preprocessed batches out to `trainers`
    /// simulated trainer endpoints (shard-pinned assignment), each consuming
    /// its own bounded lane concurrently. The per-trainer delivery and
    /// consumption accounting lands in
    /// [`DppReport::trainers`](recd_dpp::DppReport) inside
    /// [`PipelineReport::streaming`]. Passing `0` keeps the collect sink
    /// (the default); no effect unless [`PipelineRunner::with_streaming`] is
    /// also set.
    #[must_use]
    pub fn with_streaming_trainers(mut self, trainers: usize) -> Self {
        self.streaming_trainers = trainers;
        self
    }

    /// Additionally drives the *continuous* pipeline over the same log
    /// stream: a jittered [`LogTail`] of the Scribe drain feeds a streaming
    /// [`EtlService`] (incremental join → per-session clustering → hourly
    /// seal → land), and every landed partition is handed straight to a
    /// running `recd-dpp` service via
    /// [`ingest_partition`](recd_dpp::DppHandle::ingest_partition). The
    /// combined accounting lands in [`PipelineReport::continuous`].
    #[must_use]
    pub fn with_continuous(mut self, compute_workers: usize) -> Self {
        self.continuous_workers = Some(compute_workers.max(1));
        self
    }

    /// In continuous mode, fans preprocessed batches out to `trainers`
    /// simulated trainer lanes, each drained by its own consumer thread.
    /// Lanes are assigned least-loaded (not shard-pinned) so a killed lane's
    /// traffic re-routes to the survivors instead of being dropped — the
    /// behavior the chaos engine's `kill-trainer` fault exercises. Passing
    /// `0` keeps the collect sink (the default).
    #[must_use]
    pub fn with_continuous_trainers(mut self, trainers: usize) -> Self {
        self.continuous_trainers = trainers;
        self
    }

    /// In continuous mode, runs the DPP tier as a *disaggregated fleet* of
    /// `hosts` simulated preprocessing hosts behind the fault-tolerant
    /// control plane ([`DppFleet`]): the coordinator owns the global
    /// file → shard placement, heartbeats every host on the pump clock, and
    /// heals `kill-host`/`partition-host`/`rejoin-host` chaos faults with
    /// bounded replay from the per-pump barrier cuts. The global shard count
    /// is fixed by the compute-worker count alone, so the union of trainer
    /// batches is byte-identical for every fleet size and failure schedule.
    /// Passing `0` (the default) keeps the original in-process single
    /// service; the control-plane accounting lands in
    /// [`ContinuousReport::fleet`].
    #[must_use]
    pub fn with_hosts(mut self, hosts: usize) -> Self {
        self.hosts = hosts;
        self
    }

    /// Runs the continuous pipeline under the given chaos [`FaultPlan`]:
    /// storage faults apply directly to the continuous blob store, trainer
    /// stall/kill faults apply to the fan-out lanes, and `crash-pump` tears
    /// the ETL service down and resumes it from the latest
    /// [`PipelineCheckpoint`] — replayed partitions are absorbed by the DPP
    /// service's ingest dedup, so the trainer-batch union stays byte-
    /// identical to a fault-free run. Implies continuous mode (with two
    /// compute workers unless [`PipelineRunner::with_continuous`] overrides
    /// it); the run's chaos accounting lands in [`PipelineReport::chaos`].
    ///
    /// An *empty* plan is the canonical fault-free reference: it runs the
    /// identical barrier/checkpoint schedule with no faults, which is what
    /// the convergence tests compare against.
    #[must_use]
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        if self.continuous_workers.is_none() {
            self.continuous_workers = Some(2);
        }
        self.chaos = Some(plan);
        self
    }

    /// In continuous mode, runs the DPP tier under the unified PID
    /// backpressure controller: the controller samples trainer-lane depths,
    /// the DPP queues, and the ETL tail lag, resizes the fill/compute pools
    /// toward its queue setpoint, and holds the ETL pump while trainer
    /// lanes are the bottleneck. The controller only changes *when* work
    /// happens, never what is produced — trainer-batch unions stay
    /// byte-identical to an uncontrolled run. The controller's accounting
    /// lands in [`DppReport::ctrl`](recd_dpp::DppReport).
    #[must_use]
    pub fn with_ctrl(mut self, ctrl: CtrlConfig) -> Self {
        self.ctrl = Some(ctrl);
        self
    }

    /// Overrides the continuous DPP tier's bounded queue depth (stage queues
    /// and trainer lanes alike). Queue depth only changes when submissions
    /// block, never what is produced — the control-loop tests shrink it so
    /// backpressure dynamics are observable on small workloads.
    #[must_use]
    pub fn with_continuous_queue_depth(mut self, depth: usize) -> Self {
        self.continuous_queue_depth = Some(depth.max(1));
        self
    }

    /// Overrides the continuous table store's file shape
    /// (`rows_per_stripe`, `stripes_per_file`; default `(64, 4)`). Smaller
    /// files mean each sealed partition lands as a longer submission burst —
    /// how the control-loop tests make input-queue dynamics observable on
    /// small workloads. Both runs of an equivalence pair must share the
    /// shape: file boundaries feed shard routing, so the shape participates
    /// in batch composition.
    #[must_use]
    pub fn with_continuous_file_shape(
        mut self,
        rows_per_stripe: usize,
        stripes_per_file: usize,
    ) -> Self {
        self.continuous_file_shape = Some((rows_per_stripe.max(1), stripes_per_file.max(1)));
        self
    }

    /// Borrows the RM spec.
    pub fn spec(&self) -> &RmSpec {
        &self.spec
    }

    /// Runs the pipeline with the given global batch size.
    pub fn run(&self, batch_size: usize) -> PipelineArtifacts {
        let spec = &self.spec;
        let config = self.config;

        // 1. Data generation: raw inference-time logs.
        let generator = DatasetGenerator::new(spec.sized_workload());
        let schema = generator.schema().clone();
        let (records, _) = generator.generate_logs();

        // 2. Scribe (O1): shard, buffer, compress, then drain for ETL.
        let policy = if config.o1_log_sharding {
            ShardKeyPolicy::SessionId
        } else {
            ShardKeyPolicy::RandomRequest
        };
        let mut scribe = ScribeCluster::new(ScribeConfig {
            flush_bytes: 128 * 1024,
            ..ScribeConfig::with_policy(policy)
        });
        scribe.ingest_all(&records);
        scribe.flush();
        let scribe_report = scribe.report();
        let drained = scribe
            .drain()
            .expect("scribe blocks written by this run decode");

        // 3. ETL (O2): join, partition hourly, lay out rows.
        let layout = if config.o2_cluster_by_session {
            TableLayout::ClusteredBySession
        } else {
            TableLayout::TimeOrdered
        };
        let partitions = EtlJob::new(layout).run(&schema, &drained);

        // 4. Storage: land every partition as DWRF-like files in Tectonic.
        let table_store = TableStore::new(self.storage.build(), 64, 4);
        let mut storage_report = StorageReport::default();
        let mut stored_partitions = Vec::new();
        for partition in &partitions {
            let (stored, report) = table_store.land_partition(
                &schema,
                spec.preset.name(),
                partition.hour,
                &partition.samples,
            );
            merge_storage(&mut storage_report, &report);
            stored_partitions.push(stored);
        }
        table_store.blob_store().reset_read_counters();

        // 5. Reader tier (O3, O4): fill, convert, preprocess.
        let dataloader = if config.o3_ikjt {
            DataLoaderConfig::from_schema(&schema)
        } else {
            DataLoaderConfig::baseline_from_schema(&schema)
        };
        let mut reader_config = ReaderConfig::new(batch_size, dataloader);
        if !config.o3_ikjt {
            reader_config = reader_config.without_dedup();
        }
        let tier = ReaderTier::new(self.readers, reader_config.clone(), PreprocessPipeline::new);
        let mut reader_report = TierReport {
            readers: self.readers,
            ..TierReport::default()
        };
        let mut batches = Vec::new();
        for stored in &stored_partitions {
            let (outputs, report) = tier
                .run(&table_store, &schema, stored)
                .expect("reader tier over freshly-landed partitions succeeds");
            reader_report.metrics += report.metrics;
            for output in outputs {
                batches.extend(output.batches);
            }
        }
        let read_bytes = table_store.blob_store().stats().read_bytes;
        let egress_bytes = reader_report.metrics.egress_bytes;

        // 5b. Optional streaming mode: run the recd-dpp service over the same
        // landed partitions and record its wall-clock throughput. (After the
        // read_bytes capture so the one-shot accounting stays untouched.)
        let streaming = self.streaming_workers.map(|workers| {
            let mut dpp_config = DppConfig::new(reader_config.clone())
                .with_policy(ShardPolicy::SessionAffine)
                .with_shards(workers)
                .with_compute_workers(workers)
                .with_fill_workers(2);
            if self.streaming_trainers > 0 {
                dpp_config = dpp_config.with_trainers(self.streaming_trainers);
            }
            let mut handle = DppService::start(
                dpp_config,
                std::sync::Arc::new(table_store.clone()),
                schema.clone(),
            );
            // Simulated trainers: each drains its own lane concurrently so
            // per-trainer flow control (not the runner) paces delivery.
            let consumers: Vec<_> = handle
                .take_trainers()
                .into_iter()
                .map(|trainer| std::thread::spawn(move || trainer.drain().len()))
                .collect();
            for stored in &stored_partitions {
                handle.submit_partition(stored);
            }
            let report = handle
                .finish()
                .expect("streaming over freshly-landed partitions succeeds")
                .report;
            for consumer in consumers {
                consumer.join().expect("trainer consumer thread");
            }
            report
        });

        // 5c. Optional continuous mode: tail the same drained log stream
        // through the streaming ETL service (incremental join, watermarked
        // hourly seals, landing) and hand every landed partition straight to
        // a running recd-dpp service — under the chaos engine when a fault
        // plan was configured.
        let mut chaos_report = None;
        let mut continuous_batches = Vec::new();
        let continuous = self.continuous_workers.map(|workers| {
            let (report, chaos, batches) = if self.hosts > 0 {
                self.run_continuous_fleet(workers, &drained, layout, &schema, &reader_config)
            } else {
                self.run_continuous(workers, &drained, layout, &schema, &reader_config)
            };
            chaos_report = chaos;
            continuous_batches = batches;
            report
        });

        // 6. Trainer cost model (O5–O7) over the produced batches.
        let model = DlrmConfig::from_schema(&schema, spec.embedding_dim, spec.sequence_pooling);
        let opts = TrainerOptimizations {
            dedup_emb: config.o5_dedup_emb,
            jagged_index_select: config.o6_jagged_index_select,
            dedup_compute: config.o7_dedup_compute,
        };
        let cluster = spec.cluster();
        let (trainer, memory, dedupe_factor) =
            evaluate_trainer(&batches, &model, opts, &cluster, batch_size);

        let samples = batches.iter().map(|b| b.batch_size).sum();
        let report = PipelineReport {
            rm: spec.preset.name().to_string(),
            config,
            batch_size,
            samples,
            scribe: scribe_report,
            storage: storage_report,
            reader: reader_report,
            trainer,
            memory,
            dedupe_factor,
            read_bytes,
            egress_bytes,
            streaming,
            continuous,
            chaos: chaos_report,
        };

        PipelineArtifacts {
            schema,
            batches,
            model,
            report,
            continuous_batches,
        }
    }

    /// Drives the continuous tier: a jittered [`LogTail`] of the Scribe
    /// drain feeds a streaming [`EtlService`] whose landed partitions are
    /// ingested by a running `recd-dpp` service, pumped on a shared manual
    /// clock in one-minute steps.
    ///
    /// With a chaos plan configured the loop additionally (a) polls a
    /// [`FaultInjector`] on the same clock before every pump, (b) resolves a
    /// partition barrier after every pump so batch boundaries are a pure
    /// function of the landing schedule, (c) takes a [`PipelineCheckpoint`]
    /// at a fixed barrier cadence, and (d) on `crash-pump` discards the ETL
    /// service and resumes it from the latest checkpoint — the rewound tail
    /// replays at-least-once, and the DPP ingest dedup makes the trainer
    /// feed exactly-once.
    fn run_continuous(
        &self,
        workers: usize,
        drained: &[LogRecord],
        layout: TableLayout,
        schema: &Schema,
        reader_config: &ReaderConfig,
    ) -> (ContinuousReport, Option<ChaosReport>, Vec<TrainerBatch>) {
        let spec = &self.spec;
        let table = spec.preset.name();
        let tail_config = TailConfig::default()
            .with_jitter_ms(2_000)
            .with_seed(spec.sized_workload().seed);
        let stream_config = EtlStreamConfig::new(layout).with_window_ms(10_000);
        let (rows_per_stripe, stripes_per_file) = self.continuous_file_shape.unwrap_or((64, 4));
        let store = Arc::new(TableStore::new(
            self.storage.build(),
            rows_per_stripe,
            stripes_per_file,
        ));

        // Chaos plumbing: the injector owns the storage knobs; the shared
        // counters feed both retry paths and the recd_chaos_* export.
        let mut injector = self
            .chaos
            .as_ref()
            .map(|plan| FaultInjector::new(plan, store.blob_store().clone()));
        let chaos_retry = injector
            .as_ref()
            .map(|inj| (RetryPolicy::storage_default(), inj.counters()));

        let mut etl = EtlService::new(
            LogTail::new(drained.to_vec(), &tail_config),
            stream_config,
            Arc::clone(&store),
            schema.clone(),
            table,
        );
        let mut dpp_config = DppConfig::new(reader_config.clone())
            .with_policy(ShardPolicy::SessionAffine)
            .with_shards(workers)
            .with_compute_workers(workers)
            .with_fill_workers(2);
        if let Some(depth) = self.continuous_queue_depth {
            dpp_config = dpp_config
                .with_queue_depth(depth)
                .with_trainer_queue_depth(depth);
        }
        if self.continuous_trainers > 0 {
            dpp_config = dpp_config
                .with_trainers(self.continuous_trainers)
                .with_assign_policy(TrainerAssignPolicy::LeastLoaded);
        }
        if let Some((policy, counters)) = &chaos_retry {
            etl = etl.with_chaos_retry(*policy, Arc::clone(counters));
            dpp_config = dpp_config.with_chaos_retry(*policy, Arc::clone(counters));
        }
        if let Some(ctrl) = &self.ctrl {
            // The controller's escape hatch reads the live ETL tail lag, so
            // lane backpressure never holds the pump while the stream falls
            // behind its log tail.
            let gauges = etl.gauges();
            dpp_config =
                dpp_config.with_ctrl(ctrl.clone().with_tail_lag_probe(Arc::new(move || {
                    gauges
                        .tail_lag_ms
                        .load(std::sync::atomic::Ordering::Relaxed)
                })));
        }
        let mut handle = DppService::start(dpp_config, Arc::clone(&store), schema.clone());
        let pump_gate = handle.pump_gate();

        // Simulated trainer lanes: each is drained by a consumer thread that
        // interleaves consumption with the chaos harness's stall/kill
        // commands.
        let mut lanes: Vec<Option<Lane>> = handle
            .take_trainers()
            .into_iter()
            .map(|trainer| Some(Lane::spawn(trainer)))
            .collect();
        let mut killed = Vec::new();

        // The observability plane over the continuous run: the ETL gauges,
        // the dpp service snapshot, the blob store, and (under chaos) the
        // chaos counters register into one registry, and the aggregator
        // samples it after every pump step (time axis = wall clock, so rates
        // are real).
        let registry = Arc::new(MetricsRegistry::new());
        registry.register(Arc::new(handle.snapshot_source()));
        registry.register(etl.gauges());
        registry.register(Arc::new(store.blob_store().clone()));
        if let Some((_, counters)) = &chaos_retry {
            let counters: Arc<dyn recd_obs::Collector> = Arc::clone(counters) as _;
            registry.register(counters);
        }
        let aggregator = MetricsAggregator::new(registry, AggregatorConfig::default());
        let started = std::time::Instant::now();
        aggregator.poll_at(0.0);

        // Pump the tail in one-minute simulated steps; every sealed
        // partition lands and is ingested the moment it appears. Under
        // chaos, every pump ends in a partition barrier and every
        // CHECKPOINT_EVERY_PUMPS-th barrier snapshots the pipeline — a
        // crash between checkpoints therefore genuinely replays tail
        // events, which is what the dedup path must absorb.
        const CHECKPOINT_EVERY_PUMPS: u64 = 4;
        let mut clock = ManualClock::new();
        let mut checkpoint = PipelineCheckpoint {
            etl: etl.checkpoint(),
            dpp: handle.checkpoint(),
        };
        let mut pumps = 0u64;
        while !etl.tail_drained() {
            let now = clock.advance(60_000);
            if let Some(inj) = injector.as_mut() {
                for action in inj.poll(now) {
                    match action {
                        FaultAction::StallTrainer { lane, ms } => {
                            if let Some(Some(lane)) = lanes.get(lane) {
                                lane.stall(ms);
                            }
                        }
                        FaultAction::KillTrainer { lane } => {
                            if let Some(slot) = lanes.get_mut(lane) {
                                if let Some(lane) = slot.take() {
                                    killed.push(lane.kill());
                                }
                            }
                        }
                        FaultAction::CrashEtlPump => {
                            let (policy, counters) =
                                chaos_retry.as_ref().expect("injector implies chaos");
                            counters.note_pump_crash();
                            let recovery_started = std::time::Instant::now();
                            // The in-memory service dies; the rewound tail
                            // replays everything since the last checkpoint.
                            // Re-landed partitions are idempotent and the
                            // DPP ingest dedup skips the re-offers. (The
                            // registry keeps the dead service's gauges — a
                            // second registration would duplicate series.)
                            etl = EtlService::resume_from(
                                LogTail::new(drained.to_vec(), &tail_config),
                                stream_config,
                                Arc::clone(&store),
                                schema.clone(),
                                table,
                                checkpoint.etl.clone(),
                            )
                            .with_chaos_retry(*policy, Arc::clone(counters));
                            counters.note_resume(recovery_started.elapsed());
                        }
                        // Host faults only mean something to the fleet loop
                        // (`run_continuous_fleet`); a single-service plan
                        // that schedules them has no host to act on.
                        FaultAction::KillHost { .. }
                        | FaultAction::PartitionHost { .. }
                        | FaultAction::RejoinHost { .. } => {}
                    }
                }
            }
            if let Some(gate) = &pump_gate {
                // Unified backpressure: hold the ETL pump while the PID
                // controller says trainer lanes are the bottleneck. Bounded
                // so a chaos-stalled lane degrades to a delay, never a
                // deadlock; the wait changes when work happens, not what is
                // produced.
                let waited = std::time::Instant::now();
                while !gate.pump_allowed() && waited.elapsed() < Duration::from_secs(2) {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            etl.pump(
                now,
                &mut |stored: &recd_storage::StoredPartition,
                      _sealed: &recd_etl::TablePartition| {
                    handle.ingest_partition(stored);
                },
            );
            pumps += 1;
            if self.chaos.is_some() {
                assert!(handle.flush_partition(), "pump barrier must resolve");
                if pumps.is_multiple_of(CHECKPOINT_EVERY_PUMPS) {
                    checkpoint = PipelineCheckpoint {
                        etl: etl.checkpoint(),
                        dpp: handle.checkpoint(),
                    };
                }
            }
            aggregator.poll_at(started.elapsed().as_secs_f64());
        }
        let output =
            etl.finish(&mut |stored: &recd_storage::StoredPartition,
                             _sealed: &recd_etl::TablePartition| {
                handle.ingest_partition(stored);
            });
        if self.chaos.is_some() {
            assert!(handle.flush_partition(), "final barrier must resolve");
        }
        let dpp = handle
            .finish()
            .expect("continuous run over freshly-landed partitions succeeds")
            .report;
        // Surviving lanes drain to end-of-stream once the service shuts
        // down; killed lanes already returned their collected batches.
        let mut batches: Vec<TrainerBatch> = Vec::new();
        for join in killed {
            batches.extend(join.join().expect("killed lane consumer"));
        }
        for lane in lanes.into_iter().flatten() {
            batches.extend(lane.join.join().expect("lane consumer"));
        }
        let wall_seconds = started.elapsed().as_secs_f64();
        aggregator.poll_at(wall_seconds);
        let derived = aggregator.derived();
        let chaos = injector.as_mut().map(|inj| inj.finish());
        let report = ContinuousReport {
            etl: output.report,
            fleet: None,
            derived: ContinuousDerived {
                records_per_second: derived.records_per_second,
                tail_lag_trend_ms_per_s: derived.tail_lag_trend_ms_per_s,
                pool_hit_ratio: derived.pool_hit_ratio,
                min_pool_hit_ratio: derived.min_pool_hit_ratio,
                pipeline_records_per_second: Some(dpp.samples as f64 / wall_seconds.max(1e-9)),
                series_tracked: aggregator.series_count(),
            },
            dpp,
        };
        (report, chaos, batches)
    }

    /// The fleet variant of [`run_continuous`](Self::run_continuous): the
    /// same tail → streaming-ETL → land schedule, but every landed partition
    /// is ingested by a [`DppFleet`] of `self.hosts` simulated hosts instead
    /// of one in-process service.
    ///
    /// Differences from the single-service loop:
    ///
    /// * the coordinator is ticked on the pump clock (heartbeats, death
    ///   detection, partition healing) before faults fire;
    /// * host faults (`kill-host`, `partition-host`, `rejoin-host`) route to
    ///   the coordinator instead of being ignored;
    /// * every pump ends in a fleet-wide barrier *unconditionally* — the
    ///   barrier schedule (and with it batch composition) must be a pure
    ///   function of the landing schedule so fault-free and faulted runs of
    ///   any fleet size stay byte-identical;
    /// * the observability registry federates the per-host registries under
    ///   `host="h<i>"` labels next to the fleet control-plane counters.
    ///
    /// The pipeline checkpoint's DPP half stays empty: the coordinator keeps
    /// its own per-host checkpoints at every barrier, and a `crash-pump`
    /// replay is absorbed by the fleet-level ingest dedup.
    fn run_continuous_fleet(
        &self,
        workers: usize,
        drained: &[LogRecord],
        layout: TableLayout,
        schema: &Schema,
        reader_config: &ReaderConfig,
    ) -> (ContinuousReport, Option<ChaosReport>, Vec<TrainerBatch>) {
        let spec = &self.spec;
        let table = spec.preset.name();
        let tail_config = TailConfig::default()
            .with_jitter_ms(2_000)
            .with_seed(spec.sized_workload().seed);
        let stream_config = EtlStreamConfig::new(layout).with_window_ms(10_000);
        let (rows_per_stripe, stripes_per_file) = self.continuous_file_shape.unwrap_or((64, 4));
        let store = Arc::new(TableStore::new(
            self.storage.build(),
            rows_per_stripe,
            stripes_per_file,
        ));

        let mut injector = self
            .chaos
            .as_ref()
            .map(|plan| FaultInjector::new(plan, store.blob_store().clone()));
        let chaos_retry = injector
            .as_ref()
            .map(|inj| (RetryPolicy::storage_default(), inj.counters()));

        let mut etl = EtlService::new(
            LogTail::new(drained.to_vec(), &tail_config),
            stream_config,
            Arc::clone(&store),
            schema.clone(),
            table,
        );
        // Host template. The global shard count is fixed at 3× the compute
        // workers *independently of the fleet size*, so the coordinator's
        // file → shard placement — and therefore batch composition — is
        // identical for every M; that is the byte-identity the fleet
        // convergence tests assert. (The shard policy is irrelevant here:
        // the coordinator routes every file with an explicit shard
        // override.)
        let mut host_config = DppConfig::new(reader_config.clone())
            .with_policy(ShardPolicy::FileRoundRobin)
            .with_shards(workers * 3)
            .with_compute_workers(workers)
            .with_fill_workers(2);
        if let Some(depth) = self.continuous_queue_depth {
            host_config = host_config
                .with_queue_depth(depth)
                .with_trainer_queue_depth(depth);
        }
        if let Some((policy, counters)) = &chaos_retry {
            etl = etl.with_chaos_retry(*policy, Arc::clone(counters));
            host_config = host_config.with_chaos_retry(*policy, Arc::clone(counters));
        }
        if let Some(ctrl) = &self.ctrl {
            // Every host incarnation runs its own controller over its local
            // queues; they share the ETL tail-lag probe.
            let gauges = etl.gauges();
            host_config =
                host_config.with_ctrl(ctrl.clone().with_tail_lag_probe(Arc::new(move || {
                    gauges
                        .tail_lag_ms
                        .load(std::sync::atomic::Ordering::Relaxed)
                })));
        }
        // The fleet always fans out to real lanes; without requested
        // trainers a single lane is drained and discarded.
        let fleet_config = FleetConfig::new(host_config)
            .with_hosts(self.hosts)
            .with_trainers(self.continuous_trainers.max(1));
        let mut fleet = DppFleet::start(fleet_config, Arc::clone(&store), schema.clone());

        let mut lanes: Vec<Option<Lane>> = fleet
            .take_trainers()
            .into_iter()
            .map(|trainer| Some(Lane::spawn(trainer)))
            .collect();
        let mut killed = Vec::new();

        // The fleet observability plane: every per-host registry federates
        // under its `host="h<i>"` label next to the coordinator's
        // recd_fleet_* counters, the ETL gauges, the blob store, and (under
        // chaos) the chaos counters. Host registries are stable across
        // incarnations — a rejoined host keeps its label.
        let federation = Arc::new(RegistryFederation::new());
        for (label, host_registry) in fleet.host_registries() {
            federation.set_member(label, host_registry);
        }
        let registry = Arc::new(MetricsRegistry::new());
        registry.register(federation as Arc<dyn recd_obs::Collector>);
        registry.register(fleet.counters() as Arc<dyn recd_obs::Collector>);
        registry.register(etl.gauges());
        registry.register(Arc::new(store.blob_store().clone()));
        if let Some((_, counters)) = &chaos_retry {
            let counters: Arc<dyn recd_obs::Collector> = Arc::clone(counters) as _;
            registry.register(counters);
        }
        let aggregator = MetricsAggregator::new(registry, AggregatorConfig::default());
        let started = std::time::Instant::now();
        aggregator.poll_at(0.0);

        const CHECKPOINT_EVERY_PUMPS: u64 = 4;
        let mut clock = ManualClock::new();
        let mut checkpoint = PipelineCheckpoint {
            etl: etl.checkpoint(),
            ..PipelineCheckpoint::default()
        };
        let mut pumps = 0u64;
        while !etl.tail_drained() {
            let now = clock.advance(60_000);
            fleet.tick(now);
            if let Some(inj) = injector.as_mut() {
                for action in inj.poll(now) {
                    match action {
                        FaultAction::StallTrainer { lane, ms } => {
                            if let Some(Some(lane)) = lanes.get(lane) {
                                lane.stall(ms);
                            }
                        }
                        FaultAction::KillTrainer { lane } => {
                            if let Some(slot) = lanes.get_mut(lane) {
                                if let Some(lane) = slot.take() {
                                    killed.push(lane.kill());
                                }
                            }
                        }
                        FaultAction::CrashEtlPump => {
                            let (policy, counters) =
                                chaos_retry.as_ref().expect("injector implies chaos");
                            counters.note_pump_crash();
                            let recovery_started = std::time::Instant::now();
                            etl = EtlService::resume_from(
                                LogTail::new(drained.to_vec(), &tail_config),
                                stream_config,
                                Arc::clone(&store),
                                schema.clone(),
                                table,
                                checkpoint.etl.clone(),
                            )
                            .with_chaos_retry(*policy, Arc::clone(counters));
                            counters.note_resume(recovery_started.elapsed());
                        }
                        FaultAction::KillHost { host } => fleet.kill_host(host),
                        FaultAction::PartitionHost { host, ms } => fleet.partition_host(host, ms),
                        FaultAction::RejoinHost { host } => fleet.rejoin_host(host),
                    }
                }
            }
            etl.pump(
                now,
                &mut |stored: &recd_storage::StoredPartition,
                      _sealed: &recd_etl::TablePartition| {
                    fleet.ingest_partition(stored);
                },
            );
            pumps += 1;
            assert!(fleet.flush_partition(), "fleet pump barrier must resolve");
            if self.chaos.is_some() && pumps.is_multiple_of(CHECKPOINT_EVERY_PUMPS) {
                checkpoint = PipelineCheckpoint {
                    etl: etl.checkpoint(),
                    ..PipelineCheckpoint::default()
                };
            }
            aggregator.poll_at(started.elapsed().as_secs_f64());
        }
        let output =
            etl.finish(&mut |stored: &recd_storage::StoredPartition,
                             _sealed: &recd_etl::TablePartition| {
                fleet.ingest_partition(stored);
            });
        assert!(fleet.flush_partition(), "final fleet barrier must resolve");
        let fleet_output = fleet.finish();
        assert!(
            fleet_output.errors.is_empty(),
            "fleet hosts errored: {:?}",
            fleet_output.errors
        );
        let mut batches: Vec<TrainerBatch> = Vec::new();
        for join in killed {
            batches.extend(join.join().expect("killed lane consumer"));
        }
        for lane in lanes.into_iter().flatten() {
            batches.extend(lane.join.join().expect("lane consumer"));
        }
        if self.continuous_trainers == 0 {
            // The implicit single lane only existed to drain the fleet.
            batches.clear();
        }
        let wall_seconds = started.elapsed().as_secs_f64();
        aggregator.poll_at(wall_seconds);
        let derived = aggregator.derived();
        let chaos = injector.as_mut().map(|inj| inj.finish());
        let report = ContinuousReport {
            etl: output.report,
            fleet: Some(fleet_output.report),
            derived: ContinuousDerived {
                records_per_second: derived.records_per_second,
                tail_lag_trend_ms_per_s: derived.tail_lag_trend_ms_per_s,
                pool_hit_ratio: derived.pool_hit_ratio,
                min_pool_hit_ratio: derived.min_pool_hit_ratio,
                pipeline_records_per_second: Some(
                    fleet_output.dpp.samples as f64 / wall_seconds.max(1e-9),
                ),
                series_tracked: aggregator.series_count(),
            },
            dpp: fleet_output.dpp,
        };
        (report, chaos, batches)
    }
}

/// A control command for a simulated trainer-lane consumer.
enum LaneCmd {
    /// Stop consuming for the given duration (backpressure builds).
    Stall(Duration),
    /// Drain whatever is queued, drop the handle (tombstoning the lane),
    /// acknowledge, and exit.
    Kill(std::sync::mpsc::Sender<()>),
}

/// One simulated trainer: a consumer thread pulling its lane with a short
/// timeout so chaos commands interleave with consumption.
struct Lane {
    cmd: std::sync::mpsc::Sender<LaneCmd>,
    join: std::thread::JoinHandle<Vec<TrainerBatch>>,
}

impl Lane {
    fn spawn(trainer: TrainerHandle) -> Self {
        let (cmd, cmd_rx) = std::sync::mpsc::channel::<LaneCmd>();
        let join = std::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                match cmd_rx.try_recv() {
                    Ok(LaneCmd::Stall(pause)) => std::thread::sleep(pause),
                    Ok(LaneCmd::Kill(ack)) => {
                        while let Some(item) = trainer.try_recv() {
                            got.push(item);
                        }
                        drop(trainer);
                        let _ = ack.send(());
                        return got;
                    }
                    Err(_) => {}
                }
                match trainer.recv_timeout(Duration::from_millis(1)) {
                    RecvTimeout::Item(item) => got.push(item),
                    RecvTimeout::Timeout => {}
                    RecvTimeout::Disconnected => return got,
                }
            }
        });
        Self { cmd, join }
    }

    /// Pauses consumption for `ms` of wall time (asynchronous).
    fn stall(&self, ms: u64) {
        let _ = self.cmd.send(LaneCmd::Stall(Duration::from_millis(ms)));
    }

    /// Kills the lane and waits for the consumer to acknowledge the drop —
    /// called only at pump boundaries, when the sink is quiescent, so no
    /// delivery races the teardown. Returns the join handle holding the
    /// batches consumed before death.
    fn kill(self) -> std::thread::JoinHandle<Vec<TrainerBatch>> {
        let (ack, ack_rx) = std::sync::mpsc::channel();
        let _ = self.cmd.send(LaneCmd::Kill(ack));
        let _ = ack_rx.recv();
        self.join
    }
}

fn merge_storage(total: &mut StorageReport, part: &StorageReport) {
    total.absorb(part);
}

/// Averages the trainer cost model over the full-size batches of a run.
pub fn evaluate_trainer(
    batches: &[ConvertedBatch],
    model: &DlrmConfig,
    opts: TrainerOptimizations,
    cluster: &ClusterSpec,
    batch_size: usize,
) -> (IterationCost, MemoryReport, f64) {
    // Prefer full batches (the trailing batch is usually short).
    let full: Vec<&ConvertedBatch> = batches
        .iter()
        .filter(|b| b.batch_size == batch_size)
        .collect();
    let considered: Vec<&ConvertedBatch> = if full.is_empty() {
        batches.iter().collect()
    } else {
        full
    };
    if considered.is_empty() {
        return (IterationCost::default(), MemoryReport::default(), 1.0);
    }

    let mut avg = WorkStats::default();
    let mut dedupe = 0.0;
    for batch in &considered {
        let work = WorkStats::from_batch(batch, model, opts);
        avg.batch_size += work.batch_size;
        avg.sdd_bytes += work.sdd_bytes;
        avg.emb_lookups += work.emb_lookups;
        avg.emb_activation_bytes += work.emb_activation_bytes;
        avg.pooling_flops += work.pooling_flops;
        avg.mlp_flops += work.mlp_flops;
        avg.emb_output_a2a_bytes += work.emb_output_a2a_bytes;
        avg.index_select_bytes += work.index_select_bytes;
        avg.allreduce_bytes = work.allreduce_bytes;
        dedupe += batch.dedupe_factor();
    }
    let n = considered.len() as f64;
    avg.batch_size = (avg.batch_size as f64 / n).round() as usize;
    avg.sdd_bytes /= n;
    avg.emb_lookups /= n;
    avg.emb_activation_bytes /= n;
    avg.pooling_flops /= n;
    avg.mlp_flops /= n;
    avg.emb_output_a2a_bytes /= n;
    avg.index_select_bytes /= n;

    let emb_param_bytes = model.sparse_feature_count() as f64
        * model.hash_buckets as f64
        * model.embedding_dim as f64
        * 4.0;
    let cost = IterationCost::evaluate(&avg, cluster);
    let memory = MemoryReport::evaluate(&avg, cluster, emb_param_bytes);
    (cost, memory, dedupe / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RmPreset;

    fn small_spec() -> RmSpec {
        RmPreset::Rm1.spec().scaled_down(60)
    }

    #[test]
    fn full_pipeline_beats_baseline_on_every_axis() {
        let spec = small_spec();
        let baseline = PipelineRunner::new(spec.clone(), RecdConfig::baseline()).run(128);
        let recd = PipelineRunner::new(spec, RecdConfig::full()).run(128);

        let b = &baseline.report;
        let r = &recd.report;
        assert_eq!(b.samples, r.samples, "both runs must see the same samples");

        // O1: better Scribe compression.
        assert!(r.scribe.compression_ratio > b.scribe.compression_ratio);
        // O2: better table compression, fewer stored bytes.
        assert!(r.storage.compression_ratio() > b.storage.compression_ratio());
        assert!(r.read_bytes < b.read_bytes);
        // O3/O4: smaller reader egress and real dedupe factor.
        assert!(r.egress_bytes < b.egress_bytes);
        assert!(r.dedupe_factor > 1.2);
        assert!((b.dedupe_factor - 1.0).abs() < 1e-9);
        // O5–O7: higher modeled training throughput and lower memory.
        assert!(r.trainer.throughput > b.trainer.throughput);
        assert!(r.memory.max_utilization < b.memory.max_utilization);
    }

    #[test]
    fn artifacts_contain_usable_batches() {
        let artifacts = PipelineRunner::new(small_spec(), RecdConfig::full()).run(128);
        assert!(!artifacts.batches.is_empty());
        assert!(artifacts.batches.iter().all(|b| b.batch_size > 0));
        assert_eq!(
            artifacts.model.dense_features,
            artifacts.schema.dense_count()
        );
        // Most batches carry IKJTs under the full config.
        assert!(artifacts.batches.iter().any(|b| !b.ikjts.is_empty()));
    }

    #[test]
    fn streaming_mode_reports_live_throughput() {
        let artifacts = PipelineRunner::new(small_spec(), RecdConfig::full())
            .with_streaming(2)
            .run(128);
        let report = artifacts.report;
        let streaming = report.streaming.expect("streaming report requested");
        assert_eq!(streaming.compute_workers, 2);
        assert_eq!(streaming.samples, report.samples);
        assert!(streaming.samples_per_second > 0.0);
        assert!(
            streaming.dedupe_factor > 1.0,
            "session-affine sharding must preserve dedup"
        );
        // Streaming egress uses the same dedup path, so it stays in the same
        // ballpark as the one-shot reader's.
        assert!(streaming.egress_bytes > 0);

        let without = PipelineRunner::new(small_spec(), RecdConfig::full()).run(128);
        assert!(without.report.streaming.is_none());
    }

    #[test]
    fn streaming_fan_out_reports_per_trainer_sections() {
        let artifacts = PipelineRunner::new(small_spec(), RecdConfig::full())
            .with_streaming(2)
            .with_streaming_trainers(3)
            .run(128);
        let report = artifacts.report;
        let streaming = report.streaming.expect("streaming report requested");
        assert_eq!(
            streaming.trainers.len(),
            3,
            "one report section per trainer"
        );
        assert_eq!(streaming.assign_policy, "shard_pinned");
        // Every emitted sample was delivered to (and consumed by) exactly
        // one trainer.
        let delivered: u64 = streaming.trainers.iter().map(|t| t.delivered_samples).sum();
        let consumed: u64 = streaming.trainers.iter().map(|t| t.consumed_samples).sum();
        assert_eq!(delivered as usize, report.samples);
        assert_eq!(consumed, delivered, "trainers drained everything");
        assert!(streaming
            .trainers
            .iter()
            .all(|t| t.dropped_batches == 0 && t.consumed_batches == t.delivered_batches));
    }

    #[test]
    fn continuous_mode_matches_the_batch_pipeline() {
        let artifacts = PipelineRunner::new(small_spec(), RecdConfig::full())
            .with_continuous(2)
            .run(128);
        let report = artifacts.report;
        let continuous = report.continuous.expect("continuous report requested");

        // The tail-fed ETL joined every record (the window covers the
        // tail's jitter) and sealed the same rows the batch path landed.
        let c = continuous.etl.etl.counters;
        assert_eq!(c.late_drops, 0);
        assert_eq!(c.orphaned_features, 0);
        assert_eq!(c.orphaned_events, 0);
        assert_eq!(c.sealed_rows as usize, report.samples);
        assert!(continuous.etl.landed_partitions > 0);
        assert_eq!(continuous.etl.storage.rows, report.storage.rows);
        assert_eq!(
            continuous.etl.storage.stored_bytes,
            report.storage.stored_bytes
        );

        // Every landed partition was handed to the running dpp service, and
        // the trainer-side sample count equals the batch pipeline's.
        assert_eq!(
            continuous.dpp.partitions_ingested,
            continuous.etl.landed_partitions
        );
        assert_eq!(continuous.dpp.samples, report.samples);
        assert!(continuous.dpp.dedupe_factor > 1.0);
        assert!(
            continuous.fleet.is_none(),
            "single-service mode carries no fleet report"
        );

        let without = PipelineRunner::new(small_spec(), RecdConfig::full()).run(128);
        assert!(without.report.continuous.is_none());
    }

    #[test]
    fn evaluate_trainer_handles_empty_input() {
        let spec = small_spec();
        let schema = spec.sized_workload().schema();
        let model = DlrmConfig::from_schema(&schema, 16, recd_trainer::PoolingKind::Sum);
        let (cost, memory, dedupe) = evaluate_trainer(
            &[],
            &model,
            TrainerOptimizations::all(),
            &spec.cluster(),
            128,
        );
        assert_eq!(cost.throughput, 0.0);
        assert_eq!(memory.max_utilization, 0.0);
        assert_eq!(dedupe, 1.0);
    }
}
