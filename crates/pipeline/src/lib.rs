//! # recd-pipeline
//!
//! End-to-end orchestration of the RecD training pipeline and the experiment
//! drivers that regenerate every table and figure of the paper's evaluation.
//!
//! The pipeline glues the substrates together exactly as Figure 1 of the
//! paper draws them:
//!
//! ```text
//! datagen ──logs──▶ scribe (O1) ──▶ etl (O2) ──▶ storage ──▶ reader tier (O3, O4)
//!                                                              │
//!                                                              ▼
//!                                              trainer cost model + executable DLRM (O5–O7)
//! ```
//!
//! * [`RecdConfig`] switches each optimization on or off (the ablation axes).
//! * [`RmPreset`] provides scaled-down analogues of the paper's RM1/RM2/RM3
//!   production models.
//! * [`PipelineRunner`] runs one configuration end to end and produces a
//!   [`PipelineReport`] with storage, reader, and trainer measurements.
//!   `with_continuous` swaps the batch reader for the streaming tail → ETL →
//!   DPP pipeline, and `with_hosts` disaggregates that DPP tier over a
//!   multi-host fleet with a fault-tolerant control plane
//!   (`ContinuousReport::fleet` carries the accounting).
//! * [`experiments`] packages the paper's evaluation: Figures 3, 4, 7, 8, 9,
//!   10 and Tables 2, 3, 4, plus the Scribe compression study, the
//!   single-node study, the DedupeFactor sweep, and the accuracy-neutrality
//!   check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod experiments;
pub mod run;

pub use checkpoint::PipelineCheckpoint;
pub use config::{RecdConfig, RmPreset, RmSpec};
pub use run::{
    ContinuousDerived, ContinuousReport, PipelineReport, PipelineRunner, StorageSimConfig,
};
