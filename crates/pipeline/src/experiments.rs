//! Experiment drivers: one function per table/figure of the paper's
//! evaluation (§3 and §6).
//!
//! Every driver returns a serializable report struct with a `render()`
//! method that prints the same rows/series the paper reports, so the
//! `experiments` binary (and the benches) can regenerate each artifact.
//! Absolute values differ from the paper (the substrate is a simulator, not
//! a ZionEX fleet); the *shape* — who wins and by roughly what factor — is
//! the reproduction target recorded in `EXPERIMENTS.md`.

use crate::config::{RecdConfig, RmPreset, RmSpec};
use crate::run::{evaluate_trainer, PipelineRunner};
use recd_core::{DataLoaderConfig, DedupeModel, FeatureConverter};
use recd_data::SampleBatch;
use recd_datagen::{
    characterize, CharacterizationReport, DatasetGenerator, WorkloadConfig, WorkloadPreset,
};
use recd_etl::cluster_by_session;
use recd_obs::ManualClock;
use recd_scribe::{ScribeCluster, ScribeConfig, ShardKeyPolicy};
use recd_storage::{NodeConfig, PlacementPolicy, TableStore, TectonicSim};
use recd_trainer::{
    Dlrm, DlrmConfig, ExecutionMode, IterationCost, PoolingKind, TrainerOptimizations, WorkStats,
};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::Arc;

/// How large the experiment workloads are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// Fast, CI-sized runs (used by tests).
    Smoke,
    /// The default size used by the `experiments` binary.
    #[default]
    Full,
}

impl ExperimentScale {
    fn sessions(&self, full: usize) -> usize {
        match self {
            ExperimentScale::Smoke => (full / 4).max(30),
            ExperimentScale::Full => full,
        }
    }

    fn rm_spec(&self, preset: RmPreset) -> RmSpec {
        let spec = preset.spec();
        match self {
            ExperimentScale::Smoke => spec.scaled_down(60),
            ExperimentScale::Full => spec,
        }
    }

    fn batch(&self, full: usize) -> usize {
        match self {
            ExperimentScale::Smoke => full.min(128),
            ExperimentScale::Full => full,
        }
    }
}

// ---------------------------------------------------------------------------
// E1/E2: Figures 3 and 4 — dataset characterization.
// ---------------------------------------------------------------------------

/// Figures 3 and 4: samples-per-session histograms and per-feature exact /
/// partial duplication.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationExperiment {
    /// The underlying characterization of the generated hourly partition.
    pub report: CharacterizationReport,
}

/// Runs the §3 dataset characterization (Figures 3 and 4).
pub fn characterization(scale: ExperimentScale) -> CharacterizationExperiment {
    let config = WorkloadConfig::preset(WorkloadPreset::Characterization)
        .with_sessions(scale.sessions(2_000));
    let generator = DatasetGenerator::new(config);
    let partition = generator.generate_partition();
    let report = characterize(&partition.schema, &partition.samples, 4096);
    CharacterizationExperiment { report }
}

impl CharacterizationExperiment {
    /// Renders the Figure 3 histograms.
    pub fn render_fig3(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 3 — samples per session (partition mean {:.2}, max {}; 4096-batch mean {:.2})",
            self.report.partition_histogram.mean,
            self.report.partition_histogram.max,
            self.report.batch_histogram.mean
        );
        let _ = writeln!(
            out,
            "{:>12} {:>18} {:>18}",
            "<= samples", "partition sessions", "batch sessions"
        );
        let bounds: Vec<u64> = self
            .report
            .partition_histogram
            .buckets
            .iter()
            .map(|&(b, _)| b)
            .collect();
        for bound in bounds {
            let p = self
                .report
                .partition_histogram
                .buckets
                .iter()
                .find(|&&(b, _)| b == bound)
                .map(|&(_, c)| c)
                .unwrap_or(0);
            let q = self
                .report
                .batch_histogram
                .buckets
                .iter()
                .find(|&&(b, _)| b == bound)
                .map(|&(_, c)| c)
                .unwrap_or(0);
            let _ = writeln!(out, "{bound:>12} {p:>18} {q:>18}");
        }
        out
    }

    /// Renders the Figure 4 per-feature duplication summary.
    pub fn render_fig4(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 4 — duplication across {} sparse features: mean exact {:.1}%, mean partial {:.1}%, byte-weighted exact {:.1}% / partial {:.1}% (paper: 80.0%, 83.9%, 81.6%, 89.4%)",
            self.report.per_feature.len(),
            self.report.mean_exact_fraction() * 100.0,
            self.report.mean_partial_fraction() * 100.0,
            self.report.weighted_exact_fraction * 100.0,
            self.report.weighted_partial_fraction * 100.0
        );
        let _ = writeln!(
            out,
            "{:>28} {:>8} {:>10} {:>10}",
            "feature", "class", "exact %", "partial %"
        );
        for f in self.report.per_feature.iter().take(12) {
            let _ = writeln!(
                out,
                "{:>28} {:>8} {:>10.1} {:>10.1}",
                f.name,
                f.class.to_string(),
                f.exact_fraction * 100.0,
                f.partial_fraction * 100.0
            );
        }
        let _ = writeln!(
            out,
            "... ({} features total)",
            self.report.per_feature.len()
        );
        out
    }
}

// ---------------------------------------------------------------------------
// E3: Scribe compression (§6.1).
// ---------------------------------------------------------------------------

/// The Scribe log-sharding study: compression ratio with per-request vs
/// session-id shard keys (paper: 1.50× → 2.25×).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScribeExperiment {
    /// Compression ratio with the default per-request shard key.
    pub random_ratio: f64,
    /// Compression ratio when sharding by session id (O1).
    pub session_ratio: f64,
}

/// Runs the O1 log-sharding compression study.
pub fn scribe_compression(scale: ExperimentScale) -> ScribeExperiment {
    let config = WorkloadConfig::preset(WorkloadPreset::Small).with_sessions(scale.sessions(400));
    let (records, _) = DatasetGenerator::new(config).generate_logs();
    let ratio_for = |policy| {
        let mut cluster = ScribeCluster::new(ScribeConfig {
            flush_bytes: 128 * 1024,
            ..ScribeConfig::with_policy(policy)
        });
        cluster.ingest_all(&records);
        cluster.flush();
        cluster.report().compression_ratio
    };
    ScribeExperiment {
        random_ratio: ratio_for(ShardKeyPolicy::RandomRequest),
        session_ratio: ratio_for(ShardKeyPolicy::SessionId),
    }
}

impl ScribeExperiment {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        format!(
            "Scribe compression ratio: per-request sharding {:.2}x -> session-id sharding {:.2}x (paper: 1.50x -> 2.25x)\n",
            self.random_ratio, self.session_ratio
        )
    }
}

// ---------------------------------------------------------------------------
// E4: Figure 7 — end-to-end trainer / reader / storage improvements.
// ---------------------------------------------------------------------------

/// One RM's end-to-end improvement factors (Figure 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// RM name.
    pub rm: String,
    /// Trainer throughput improvement (RecD / baseline).
    pub trainer_speedup: f64,
    /// Per-reader throughput improvement.
    pub reader_speedup: f64,
    /// Storage compression-ratio improvement.
    pub storage_improvement: f64,
    /// Measured in-batch dedupe factor under RecD.
    pub dedupe_factor: f64,
}

/// Figure 7 report.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Fig7Report {
    /// One row per RM.
    pub rows: Vec<Fig7Row>,
}

/// Runs the Figure 7 end-to-end comparison for every RM.
pub fn fig7(scale: ExperimentScale) -> Fig7Report {
    let rows = RmPreset::all()
        .into_iter()
        .map(|preset| {
            let spec = scale.rm_spec(preset);
            let baseline_batch = scale.batch(spec.baseline_batch);
            let recd_batch = scale.batch(spec.recd_batch);
            let baseline =
                PipelineRunner::new(spec.clone(), RecdConfig::baseline()).run(baseline_batch);
            let recd = PipelineRunner::new(spec, RecdConfig::full()).run(recd_batch);
            Fig7Row {
                rm: preset.name().to_string(),
                trainer_speedup: ratio(
                    recd.report.trainer.throughput,
                    baseline.report.trainer.throughput,
                ),
                reader_speedup: ratio(
                    recd.report.reader.per_reader_throughput(),
                    baseline.report.reader.per_reader_throughput(),
                ),
                storage_improvement: ratio(
                    recd.report.storage.compression_ratio(),
                    baseline.report.storage.compression_ratio(),
                ),
                dedupe_factor: recd.report.dedupe_factor,
            }
        })
        .collect();
    Fig7Report { rows }
}

impl Fig7Report {
    /// Renders the figure as a table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 7 — end-to-end improvements, normalized to each RM's baseline (paper: trainer 2.48x/1.25x/1.43x, reader 1.79x/1.38x/1.36x, storage 3.71x/3.71x/2.06x)"
        );
        let _ = writeln!(
            out,
            "{:>5} {:>16} {:>15} {:>20} {:>14}",
            "RM", "trainer speedup", "reader speedup", "storage improvement", "dedupe factor"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:>5} {:>15.2}x {:>14.2}x {:>19.2}x {:>13.2}x",
                row.rm,
                row.trainer_speedup,
                row.reader_speedup,
                row.storage_improvement,
                row.dedupe_factor
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// E5: Figure 8 — iteration latency breakdown at equal batch size.
// ---------------------------------------------------------------------------

/// One RM's normalized iteration-latency breakdown (Figure 8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Row {
    /// RM name.
    pub rm: String,
    /// Baseline breakdown (fractions of the baseline total: EMB, GEMM, A2A,
    /// other).
    pub baseline: [f64; 4],
    /// RecD breakdown normalized to the baseline total.
    pub recd: [f64; 4],
}

/// Figure 8 report.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Fig8Report {
    /// One row per RM.
    pub rows: Vec<Fig8Row>,
}

fn breakdown_fractions(cost: &IterationCost, baseline_total: f64) -> [f64; 4] {
    [
        cost.breakdown.emb_lookup / baseline_total,
        cost.breakdown.gemm_compute / baseline_total,
        cost.breakdown.a2a_exposed / baseline_total,
        cost.breakdown.other / baseline_total,
    ]
}

/// Runs the Figure 8 iteration-latency breakdown: RecD vs baseline at the
/// *same* batch size for each RM.
pub fn fig8(scale: ExperimentScale) -> Fig8Report {
    let rows = RmPreset::all()
        .into_iter()
        .map(|preset| {
            let spec = scale.rm_spec(preset);
            let batch = scale.batch(spec.baseline_batch);
            let baseline = PipelineRunner::new(spec.clone(), RecdConfig::baseline()).run(batch);
            let recd = PipelineRunner::new(spec, RecdConfig::full()).run(batch);
            let baseline_total = baseline.report.trainer.breakdown.total().max(1e-12);
            Fig8Row {
                rm: preset.name().to_string(),
                baseline: breakdown_fractions(&baseline.report.trainer, baseline_total),
                recd: breakdown_fractions(&recd.report.trainer, baseline_total),
            }
        })
        .collect();
    Fig8Report { rows }
}

impl Fig8Report {
    /// Renders the figure as a table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 8 — exposed iteration latency breakdown, normalized to each RM's baseline (same batch size)"
        );
        let _ = writeln!(
            out,
            "{:>5} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "RM", "config", "EMB", "GEMM", "A2A", "other", "total"
        );
        for row in &self.rows {
            for (label, b) in [("baseline", row.baseline), ("RecD", row.recd)] {
                let _ = writeln!(
                    out,
                    "{:>5} {:>10} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                    row.rm,
                    label,
                    b[0],
                    b[1],
                    b[2],
                    b[3],
                    b.iter().sum::<f64>()
                );
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// E6: Figure 9 — ablation study for RM1.
// ---------------------------------------------------------------------------

/// One rung of the Figure 9 ablation ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Row {
    /// Configuration label.
    pub label: String,
    /// Batch size used at this rung.
    pub batch_size: usize,
    /// Trainer throughput normalized to the baseline.
    pub normalized_throughput: f64,
}

/// Figure 9 report.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Fig9Report {
    /// Ladder rungs in order.
    pub rows: Vec<Fig9Row>,
}

/// Runs the Figure 9 ablation on RM1: clustered table alone, dedup
/// EMB + jagged index select (larger batch), dedup compute, and finally the
/// full batch-size increase.
pub fn fig9(scale: ExperimentScale) -> Fig9Report {
    let spec = scale.rm_spec(RmPreset::Rm1);
    let base_batch = scale.batch(spec.baseline_batch);
    let mid_batch = scale.batch((spec.baseline_batch + spec.recd_batch) / 2);
    let big_batch = scale.batch(spec.recd_batch);

    let ladder = RecdConfig::ablation_ladder();
    let plan: Vec<(String, RecdConfig, usize)> = vec![
        (ladder[0].0.to_string(), ladder[0].1, base_batch),
        (ladder[1].0.to_string(), ladder[1].1, base_batch),
        (
            format!("{} (B{mid_batch})", ladder[2].0),
            ladder[2].1,
            mid_batch,
        ),
        (
            format!("{} (B{mid_batch})", ladder[3].0),
            ladder[3].1,
            mid_batch,
        ),
        (format!("full RecD (B{big_batch})"), ladder[3].1, big_batch),
    ];

    let mut rows = Vec::new();
    let mut baseline_throughput = 0.0;
    for (label, config, batch) in plan {
        let report = PipelineRunner::new(spec.clone(), config).run(batch).report;
        if rows.is_empty() {
            baseline_throughput = report.trainer.throughput.max(1e-12);
        }
        rows.push(Fig9Row {
            label,
            batch_size: batch,
            normalized_throughput: report.trainer.throughput / baseline_throughput,
        });
    }
    Fig9Report { rows }
}

impl Fig9Report {
    /// Renders the ablation as a table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 9 — RM1 ablation, trainer throughput normalized to baseline (paper: 1.0, 1.0, 1.34, 2.42, 2.48)"
        );
        let _ = writeln!(
            out,
            "{:>36} {:>8} {:>12}",
            "configuration", "batch", "throughput"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:>36} {:>8} {:>11.2}x",
                row.label, row.batch_size, row.normalized_throughput
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// E7: Table 2 — trainer memory and compute efficiency for RM1.
// ---------------------------------------------------------------------------

/// One configuration row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Configuration label.
    pub config: String,
    /// Throughput normalized to the baseline.
    pub normalized_qps: f64,
    /// Peak GPU memory utilization (percent).
    pub max_memory_utilization: f64,
    /// Average GPU memory utilization (percent).
    pub avg_memory_utilization: f64,
    /// Realized compute efficiency normalized to the baseline.
    pub normalized_compute_efficiency: f64,
}

/// Table 2 report.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Table2Report {
    /// Rows in paper order.
    pub rows: Vec<Table2Row>,
}

/// Runs the Table 2 study on RM1: baseline, RecD, RecD with doubled
/// embedding dimension, RecD with the enlarged batch.
///
/// GPU memory capacity is normalized so the baseline configuration sits at
/// the paper's ≈99.9% peak utilization; the other rows are reported against
/// that same capacity.
pub fn table2(scale: ExperimentScale) -> Table2Report {
    let spec = scale.rm_spec(RmPreset::Rm1);
    let base_batch = scale.batch(spec.baseline_batch);
    let big_batch = scale.batch(spec.recd_batch);

    let baseline = PipelineRunner::new(spec.clone(), RecdConfig::baseline()).run(base_batch);
    let recd = PipelineRunner::new(spec.clone(), RecdConfig::full()).run(base_batch);
    let recd_big = PipelineRunner::new(spec.clone(), RecdConfig::full()).run(big_batch);

    // RecD + doubled embedding dimension: rebuild the trainer model over the
    // RecD batches with dim x2.
    let wide_model = recd
        .model
        .clone()
        .with_embedding_dim(spec.embedding_dim * 2);
    let (wide_cost, wide_memory, _) = evaluate_trainer(
        &recd.batches,
        &wide_model,
        TrainerOptimizations::all(),
        &spec.cluster(),
        base_batch,
    );

    // Normalize memory so the baseline peaks at 99.9%.
    let capacity_scale = baseline.report.memory.max_utilization.max(1e-12) / 0.999;
    let mem = |u: f64| (u / capacity_scale).min(1.0) * 100.0;
    let base_qps = baseline.report.trainer.throughput.max(1e-12);

    // Realized compute efficiency = *logical* FLOPs (the work the baseline
    // would execute for the same batches and model) per second. Dedup makes
    // the same logical work finish faster, so efficiency rises even though
    // fewer physical FLOPs run — matching how the paper reports FLOP/s/GPU.
    let logical_flops_per_sample = |artifacts: &crate::run::PipelineArtifacts,
                                    model: &DlrmConfig| {
        let batch = artifacts
            .batches
            .iter()
            .find(|b| b.batch_size > 0)
            .expect("at least one non-empty batch");
        let work = WorkStats::from_batch(batch, model, TrainerOptimizations::none());
        (work.pooling_flops + work.mlp_flops) / batch.batch_size.max(1) as f64
    };
    let efficiency =
        |artifacts: &crate::run::PipelineArtifacts, model: &DlrmConfig, cost: &IterationCost| {
            logical_flops_per_sample(artifacts, model) * cost.throughput
        };
    let base_eff = efficiency(&baseline, &baseline.model, &baseline.report.trainer).max(1e-12);

    let rows = vec![
        Table2Row {
            config: "Baseline".to_string(),
            normalized_qps: 1.0,
            max_memory_utilization: mem(baseline.report.memory.max_utilization),
            avg_memory_utilization: mem(baseline.report.memory.avg_utilization),
            normalized_compute_efficiency: 1.0,
        },
        Table2Row {
            config: "RecD".to_string(),
            normalized_qps: recd.report.trainer.throughput / base_qps,
            max_memory_utilization: mem(recd.report.memory.max_utilization),
            avg_memory_utilization: mem(recd.report.memory.avg_utilization),
            normalized_compute_efficiency: efficiency(&recd, &recd.model, &recd.report.trainer)
                / base_eff,
        },
        Table2Row {
            config: format!("RecD + EMB D{}", spec.embedding_dim * 2),
            normalized_qps: wide_cost.throughput / base_qps,
            max_memory_utilization: mem(wide_memory.max_utilization),
            avg_memory_utilization: mem(wide_memory.avg_utilization),
            normalized_compute_efficiency: efficiency(&recd, &wide_model, &wide_cost) / base_eff,
        },
        Table2Row {
            config: format!("RecD + B{big_batch}"),
            normalized_qps: recd_big.report.trainer.throughput / base_qps,
            max_memory_utilization: mem(recd_big.report.memory.max_utilization),
            avg_memory_utilization: mem(recd_big.report.memory.avg_utilization),
            normalized_compute_efficiency: efficiency(
                &recd_big,
                &recd_big.model,
                &recd_big.report.trainer,
            ) / base_eff,
        },
    ];
    Table2Report { rows }
}

impl Table2Report {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Table 2 — RM1 trainer throughput and efficiency (paper: QPS 1.00/1.89/1.55/2.26, max mem 99.9/27.8/40.9/91.8)"
        );
        let _ = writeln!(
            out,
            "{:>22} {:>10} {:>12} {:>12} {:>12}",
            "config", "norm QPS", "max mem %", "avg mem %", "norm FLOP/s"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:>22} {:>10.2} {:>12.2} {:>12.2} {:>12.2}",
                row.config,
                row.normalized_qps,
                row.max_memory_utilization,
                row.avg_memory_utilization,
                row.normalized_compute_efficiency
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// E8: Table 3 — reader ingest and egress bytes.
// ---------------------------------------------------------------------------

/// One configuration row of Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Configuration label.
    pub config: String,
    /// Bytes readers fetched from storage.
    pub read_bytes: usize,
    /// Bytes readers sent toward trainers.
    pub send_bytes: usize,
}

/// Table 3 report.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Table3Report {
    /// Rows in paper order (baseline, with clustering, with IKJT).
    pub rows: Vec<Table3Row>,
}

/// Runs the Table 3 study: reader read/send bytes for a fixed set of
/// samples under baseline, +clustered table, and +IKJT configurations.
pub fn table3(scale: ExperimentScale) -> Table3Report {
    let spec = scale.rm_spec(RmPreset::Rm1);
    let batch = scale.batch(spec.baseline_batch);

    let baseline = RecdConfig::baseline();
    let clustered = RecdConfig {
        o1_log_sharding: true,
        o2_cluster_by_session: true,
        ..RecdConfig::baseline()
    };
    let ikjt = RecdConfig {
        o3_ikjt: true,
        o4_dedup_preprocessing: true,
        ..clustered
    };

    let rows = [
        ("Baseline", baseline),
        ("with Cluster", clustered),
        ("with IKJT", ikjt),
    ]
    .into_iter()
    .map(|(label, config)| {
        let report = PipelineRunner::new(spec.clone(), config).run(batch).report;
        Table3Row {
            config: label.to_string(),
            read_bytes: report.read_bytes,
            send_bytes: report.egress_bytes,
        }
    })
    .collect();
    Table3Report { rows }
}

impl Table3Report {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Table 3 — reader ingest & egress bytes for a fixed sample count (paper: read 538/179/179 GB, send 837/837/713 GB)"
        );
        let _ = writeln!(
            out,
            "{:>14} {:>14} {:>14}",
            "config", "read MiB", "send MiB"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:>14} {:>14.2} {:>14.2}",
                row.config,
                row.read_bytes as f64 / (1024.0 * 1024.0),
                row.send_bytes as f64 / (1024.0 * 1024.0)
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// E9: Figure 10 — reader CPU-time breakdown.
// ---------------------------------------------------------------------------

/// One RM's reader CPU breakdown (Figure 10), normalized to its baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Row {
    /// RM name.
    pub rm: String,
    /// Baseline per-sample CPU fractions `(fill, convert, process)` — sums
    /// to 1.0.
    pub baseline: (f64, f64, f64),
    /// RecD per-sample CPU time by phase, normalized to the baseline total.
    pub recd: (f64, f64, f64),
}

/// Figure 10 report.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Fig10Report {
    /// One row per RM.
    pub rows: Vec<Fig10Row>,
}

/// Runs the Figure 10 reader CPU breakdown for every RM.
pub fn fig10(scale: ExperimentScale) -> Fig10Report {
    let rows = RmPreset::all()
        .into_iter()
        .map(|preset| {
            let spec = scale.rm_spec(preset);
            let batch = scale.batch(spec.baseline_batch);
            let baseline = PipelineRunner::new(spec.clone(), RecdConfig::baseline()).run(batch);
            let recd = PipelineRunner::new(spec, RecdConfig::full()).run(batch);
            let cost_model = recd_reader::ReaderCostModel::default();
            let b = baseline.report.reader.metrics;
            let r = recd.report.reader.metrics;
            let b_total = cost_model.nanos_per_sample(&b).max(1e-9);
            let per_sample = |m: recd_reader::ReaderMetrics| {
                let samples = m.samples.max(1) as f64;
                let (fill, convert, process) = cost_model.phase_nanos(&m);
                (
                    fill / samples / b_total,
                    convert / samples / b_total,
                    process / samples / b_total,
                )
            };
            Fig10Row {
                rm: preset.name().to_string(),
                baseline: per_sample(b),
                recd: per_sample(r),
            }
        })
        .collect();
    Fig10Report { rows }
}

impl Fig10Report {
    /// Renders the figure as a table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 10 — reader CPU time per sample by phase, normalized to each RM's baseline total"
        );
        let _ = writeln!(
            out,
            "{:>5} {:>10} {:>8} {:>9} {:>9} {:>8}",
            "RM", "config", "fill", "convert", "process", "total"
        );
        for row in &self.rows {
            for (label, (fill, convert, process)) in
                [("baseline", row.baseline), ("RecD", row.recd)]
            {
                let _ = writeln!(
                    out,
                    "{:>5} {:>10} {:>8.3} {:>9.3} {:>9.3} {:>8.3}",
                    row.rm,
                    label,
                    fill,
                    convert,
                    process,
                    fill + convert + process
                );
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// E10: Table 4 — per-optimization impact summary for RM1.
// ---------------------------------------------------------------------------

/// One optimization's measured impact (Table 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Optimization id (O1–O7).
    pub optimization: String,
    /// Measured effect, phrased like the paper's table.
    pub effect: String,
}

/// Table 4 report.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Table4Report {
    /// Rows in optimization order.
    pub rows: Vec<Table4Row>,
}

/// Builds the Table 4 summary from the other experiments' outputs.
pub fn table4(scale: ExperimentScale) -> Table4Report {
    let scribe = scribe_compression(scale);
    let spec = scale.rm_spec(RmPreset::Rm1);
    let batch = scale.batch(spec.baseline_batch);

    let baseline = PipelineRunner::new(spec.clone(), RecdConfig::baseline()).run(batch);
    let clustered = PipelineRunner::new(
        spec.clone(),
        RecdConfig {
            o1_log_sharding: true,
            o2_cluster_by_session: true,
            ..RecdConfig::baseline()
        },
    )
    .run(batch);
    let ikjt = PipelineRunner::new(
        spec.clone(),
        RecdConfig {
            o3_ikjt: true,
            o4_dedup_preprocessing: true,
            o1_log_sharding: true,
            o2_cluster_by_session: true,
            ..RecdConfig::baseline()
        },
    )
    .run(batch);
    let fig9_report = fig9(scale);

    let cost_model = recd_reader::ReaderCostModel::default();
    let (baseline_fill, _, _) = cost_model.phase_nanos(&baseline.report.reader.metrics);
    let (clustered_fill, clustered_convert, clustered_process) =
        cost_model.phase_nanos(&clustered.report.reader.metrics);
    let (_, ikjt_convert, ikjt_process) = cost_model.phase_nanos(&ikjt.report.reader.metrics);
    let fill_reduction = 1.0 - clustered_fill / baseline_fill.max(1.0);
    let convert_overhead = ikjt_convert / clustered_convert.max(1.0) - 1.0;
    let process_reduction = 1.0 - ikjt_process / clustered_process.max(1.0);

    let ladder_throughput = |idx: usize| {
        fig9_report
            .rows
            .get(idx)
            .map(|r| r.normalized_throughput)
            .unwrap_or(1.0)
    };

    let rows = vec![
        Table4Row {
            optimization: "O1".to_string(),
            effect: format!(
                "Storage: improves Scribe compression from {:.2}x to {:.2}x",
                scribe.random_ratio, scribe.session_ratio
            ),
        },
        Table4Row {
            optimization: "O2".to_string(),
            effect: format!(
                "Storage: improves table compression by {:.2}x. Reader: reduces fill CPU time by {:.0}%",
                clustered.report.storage.compression_ratio()
                    / baseline.report.storage.compression_ratio(),
                fill_reduction * 100.0
            ),
        },
        Table4Row {
            optimization: "O3".to_string(),
            effect: format!(
                "Enables O4-O6. Reader: increases convert CPU time by {:.0}%",
                convert_overhead.max(0.0) * 100.0
            ),
        },
        Table4Row {
            optimization: "O4".to_string(),
            effect: format!(
                "Enables O5-O6. Reader: reduces process CPU time by {:.0}%",
                process_reduction.max(0.0) * 100.0
            ),
        },
        Table4Row {
            optimization: "O5+O6".to_string(),
            effect: format!(
                "Trainer: improves training throughput by {:.2}x",
                ladder_throughput(2)
            ),
        },
        Table4Row {
            optimization: "O7".to_string(),
            effect: format!(
                "Trainer: improves training throughput by {:.2}x (with larger batch: {:.2}x)",
                ladder_throughput(3),
                ladder_throughput(4)
            ),
        },
    ];
    Table4Report { rows }
}

impl Table4Report {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Table 4 — per-optimization impact summary (RM1)");
        for row in &self.rows {
            let _ = writeln!(out, "{:>6}: {}", row.optimization, row.effect);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// E11: single-node training (§6.2).
// ---------------------------------------------------------------------------

/// The single-node study (paper: 2.18× on one ZionEX node).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SingleNodeReport {
    /// Throughput improvement on one 8-GPU node.
    pub speedup: f64,
}

/// Runs the single-node study: RM1 downsized to one node.
pub fn single_node(scale: ExperimentScale) -> SingleNodeReport {
    let mut spec = scale.rm_spec(RmPreset::Rm1);
    spec.gpus = 8;
    let batch = scale.batch(spec.baseline_batch);
    let baseline = PipelineRunner::new(spec.clone(), RecdConfig::baseline()).run(batch);
    let recd = PipelineRunner::new(spec, RecdConfig::full()).run(batch);
    SingleNodeReport {
        speedup: ratio(
            recd.report.trainer.throughput,
            baseline.report.trainer.throughput,
        ),
    }
}

impl SingleNodeReport {
    /// Renders the result.
    pub fn render(&self) -> String {
        format!(
            "Single-node training: RecD improves throughput by {:.2}x on one 8-GPU node (paper: 2.18x)\n",
            self.speedup
        )
    }
}

// ---------------------------------------------------------------------------
// E12: DedupeFactor analytical sweep (§4.2).
// ---------------------------------------------------------------------------

/// One point of the DedupeFactor sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DedupeFactorRow {
    /// Samples per session `S`.
    pub samples_per_session: f64,
    /// Stay probability `d(f)`.
    pub stay_prob: f64,
    /// Analytical dedupe factor.
    pub analytical: f64,
    /// Measured dedupe factor on a generated batch with those statistics.
    pub measured: f64,
}

/// DedupeFactor sweep report.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DedupeFactorReport {
    /// Sweep rows.
    pub rows: Vec<DedupeFactorRow>,
}

/// Sweeps the analytical DedupeFactor model over `S` and `d(f)` and checks it
/// against measured batches.
pub fn dedupe_factor_sweep(scale: ExperimentScale) -> DedupeFactorReport {
    let batch_size = 512;
    let mut rows = Vec::new();
    for &s in &[2.0f64, 8.0, 16.5] {
        for &d in &[0.5f64, 0.9, 0.98] {
            let analytical = DedupeModel::new(batch_size, s).dedupe_factor(64.0, d);

            // Generate a workload with exactly these statistics and measure.
            let config = WorkloadConfig {
                sessions: scale.sessions(200),
                samples_per_session_mean: s,
                samples_per_session_sigma: 0.4,
                profiles: vec![recd_datagen::FeatureProfile {
                    stay_prob: d,
                    avg_len: 64,
                    ..recd_datagen::FeatureProfile::user_sequence(1, 64, 1)
                }],
                ..WorkloadConfig::preset(WorkloadPreset::Tiny)
            };
            let generator = DatasetGenerator::new(config);
            let partition = generator.generate_partition();
            let clustered = cluster_by_session(&partition.samples);
            let schema = generator.schema().clone();
            let converter = FeatureConverter::new(DataLoaderConfig::from_schema(&schema));
            let take = batch_size.min(clustered.len());
            let converted = converter
                .convert(&SampleBatch::new(clustered[..take].to_vec()))
                .expect("conversion of generated batch succeeds");
            rows.push(DedupeFactorRow {
                samples_per_session: s,
                stay_prob: d,
                analytical,
                measured: converted.dedupe_factor(),
            });
        }
    }
    DedupeFactorReport { rows }
}

impl DedupeFactorReport {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "DedupeFactor model (analytical vs measured, l(f)=64, B=512)"
        );
        let _ = writeln!(
            out,
            "{:>6} {:>6} {:>12} {:>10}",
            "S", "d(f)", "analytical", "measured"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:>6.1} {:>6.2} {:>11.2}x {:>9.2}x",
                row.samples_per_session, row.stay_prob, row.analytical, row.measured
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// E13: accuracy neutrality (§6.2 "Impacts to Accuracy").
// ---------------------------------------------------------------------------

/// The accuracy-neutrality check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Final training loss on baseline (KJT) batches.
    pub baseline_loss: f32,
    /// Final training loss on deduplicated (IKJT) batches.
    pub dedup_loss: f32,
    /// Evaluation loss when training on interleaved (unclustered) batches.
    pub interleaved_eval_loss: f32,
    /// Evaluation loss when training on clustered batches.
    pub clustered_eval_loss: f32,
}

/// Trains the executable DLRM to check that (a) IKJT and KJT batches produce
/// identical training, and (b) clustering does not hurt (the paper argues it
/// helps generalization by avoiding repeated sparse updates).
pub fn accuracy(scale: ExperimentScale) -> AccuracyReport {
    let config = WorkloadConfig::preset(WorkloadPreset::Tiny).with_sessions(scale.sessions(120));
    let generator = DatasetGenerator::new(config);
    let partition = generator.generate_partition();
    let schema = generator.schema().clone();
    let converter = FeatureConverter::new(DataLoaderConfig::from_schema(&schema));

    let clustered = cluster_by_session(&partition.samples);
    let make_batches = |samples: &[recd_data::Sample], dedup: bool| {
        SampleBatch::new(samples.to_vec())
            .chunks(64)
            .iter()
            .map(|b| {
                if dedup {
                    converter.convert(b).expect("conversion succeeds")
                } else {
                    converter.convert_baseline(b).expect("conversion succeeds")
                }
            })
            .collect::<Vec<_>>()
    };

    let model_config = DlrmConfig::from_schema(&schema, 8, PoolingKind::Sum).with_sum_pooling();
    let train_loss = |batches: &[recd_core::ConvertedBatch], mode: ExecutionMode| {
        let mut model = Dlrm::new(model_config.clone());
        let mut last = 0.0;
        for _ in 0..3 {
            for batch in batches {
                last = model.train_step(batch, mode);
            }
        }
        last
    };

    let dedup_batches = make_batches(&clustered, true);
    let baseline_batches = make_batches(&clustered, false);
    let interleaved_batches = make_batches(&partition.samples, false);

    // Held-out evaluation uses the last quarter of the clustered batches.
    let split = (dedup_batches.len() * 3 / 4).max(1);
    let eval_loss = |train: &[recd_core::ConvertedBatch], eval: &[recd_core::ConvertedBatch]| {
        let mut trainer = recd_trainer::Trainer::new(recd_trainer::TrainerConfig {
            model: model_config.clone(),
            mode: ExecutionMode::Baseline,
            epochs: 3,
        });
        trainer.run(train, eval).eval_loss
    };

    AccuracyReport {
        baseline_loss: train_loss(&baseline_batches, ExecutionMode::Baseline),
        dedup_loss: train_loss(&dedup_batches, ExecutionMode::Deduplicated),
        interleaved_eval_loss: eval_loss(
            &interleaved_batches[..split.min(interleaved_batches.len())],
            &baseline_batches[split.min(baseline_batches.len() - 1)..],
        ),
        clustered_eval_loss: eval_loss(
            &baseline_batches[..split.min(baseline_batches.len())],
            &baseline_batches[split.min(baseline_batches.len() - 1)..],
        ),
    }
}

impl AccuracyReport {
    /// Renders the check.
    pub fn render(&self) -> String {
        format!(
            "Accuracy neutrality: training loss KJT {:.4} vs IKJT {:.4} (must match); eval loss interleaved {:.4} vs clustered {:.4}\n",
            self.baseline_loss, self.dedup_loss, self.interleaved_eval_loss, self.clustered_eval_loss
        )
    }
}

// ---------------------------------------------------------------------------
// Storage realism: load balance across placement policies + cache-size sweep.
// ---------------------------------------------------------------------------

/// One placement policy measured under the per-node queue model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageBalanceRow {
    /// Placement policy name.
    pub policy: String,
    /// Files landed (one blob each).
    pub files: usize,
    /// Max/mean stored bytes across nodes (1.0 = perfectly balanced).
    pub byte_spread: f64,
    /// Max/mean queue ops across nodes.
    pub op_spread: f64,
    /// Mean virtual-time queue wait per op, in milliseconds.
    pub mean_wait_ms: f64,
}

/// Storage load-balance experiment: the same landed partition + read pass
/// under each [`PlacementPolicy`], on a queue-enabled store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageBalanceReport {
    /// Storage nodes in the simulated cluster.
    pub nodes: usize,
    /// One row per placement policy.
    pub rows: Vec<StorageBalanceRow>,
}

/// Lands one partition and reads every file back under each placement
/// policy, with the per-node queue model active on a frozen clock so queue
/// waits are pure virtual-time accounting (deterministic: every op enqueues
/// at t=0, so waits depend only on per-node op counts and blob sizes, not
/// on scheduler jitter).
pub fn storage_load_balance(scale: ExperimentScale) -> StorageBalanceReport {
    let nodes = 4;
    let node = NodeConfig::new(10_000.0, 256.0 * 1024.0 * 1024.0);
    let config = WorkloadConfig::preset(WorkloadPreset::Small).with_sessions(scale.sessions(160));
    let partition = DatasetGenerator::new(config).generate_partition();

    let policies = [
        ("hash-path", PlacementPolicy::HashPath),
        ("round-robin", PlacementPolicy::RoundRobin),
        ("least-loaded", PlacementPolicy::LeastLoadedBytes),
    ];
    let mut rows = Vec::new();
    for (name, policy) in policies {
        let sim = TectonicSim::new(nodes)
            .with_placement(policy)
            .with_node_config(node)
            .with_queue_clock(Arc::new(ManualClock::new()));
        let store = TableStore::new(sim, 16, 1);
        let (stored, report) =
            store.land_partition(&partition.schema, "balance", 0, &partition.samples);
        for path in &stored.files {
            store
                .blob_store()
                .get(path)
                .expect("landed blob must read back");
        }
        let stats = store.blob_store().node_stats();
        let bytes: Vec<f64> = stats.iter().map(|n| n.stored_bytes as f64).collect();
        let ops: Vec<f64> = stats.iter().map(|n| n.ops as f64).collect();
        rows.push(StorageBalanceRow {
            policy: name.to_string(),
            files: report.files,
            byte_spread: spread(&bytes),
            op_spread: spread(&ops),
            mean_wait_ms: store.blob_store().mean_queue_wait().as_secs_f64() * 1e3,
        });
    }
    StorageBalanceReport { nodes, rows }
}

impl StorageBalanceReport {
    /// The gated figure: mean queue wait under the default hash placement.
    pub fn hash_wait_ms(&self) -> f64 {
        self.rows
            .iter()
            .find(|r| r.policy == "hash-path")
            .map_or(0.0, |r| r.mean_wait_ms)
    }

    /// Renders the per-policy table plus the derived line the bench
    /// snapshot extracts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Storage load balance ({} nodes, per-node queue model, frozen clock):",
            self.nodes
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "  {:<13} {:>4} files  byte-spread {:.2}x  op-spread {:.2}x  mean wait {:.3} ms",
                row.policy, row.files, row.byte_spread, row.op_spread, row.mean_wait_ms
            );
        }
        let _ = writeln!(
            out,
            "derived storage_load_balance_wait_ms {:.4}",
            self.hash_wait_ms()
        );
        out
    }
}

/// One cache capacity in the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSweepRow {
    /// Cache byte budget (0 = disabled).
    pub capacity_bytes: usize,
    /// Fraction of gets served from the cache.
    pub hit_ratio: f64,
    /// Entries evicted to stay within the budget.
    pub evictions: u64,
    /// Ops that reached the node queues (misses + puts).
    pub queue_ops: u64,
}

/// Cache-size sweep: the same read workload against increasing cache
/// capacities on a queue-enabled store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSweepReport {
    /// Bytes landed in the blob store (the working set).
    pub total_blob_bytes: usize,
    /// Full scans of the partition per capacity.
    pub passes: usize,
    /// One row per capacity, smallest first.
    pub rows: Vec<CacheSweepRow>,
}

/// Sweeps the blob-cache byte budget from disabled to twice the working
/// set. The access pattern is `passes` sequential scans with a hot quarter
/// of the files re-read twice on touch, so small caches capture only the
/// intra-burst reuse while a working-set-sized cache also captures the
/// cross-pass reuse. Deterministic: single-threaded, fixed access order.
pub fn cache_size_sweep(scale: ExperimentScale) -> CacheSweepReport {
    let node = NodeConfig::new(20_000.0, 256.0 * 1024.0 * 1024.0);
    let config = WorkloadConfig::preset(WorkloadPreset::Small).with_sessions(scale.sessions(160));
    let partition = DatasetGenerator::new(config).generate_partition();
    let passes = 3;

    let land = |capacity: usize| {
        let sim = TectonicSim::new(4)
            .with_node_config(node)
            .with_cache(capacity);
        let store = TableStore::new(sim, 16, 1);
        let (stored, _) = store.land_partition(&partition.schema, "sweep", 0, &partition.samples);
        (store, stored)
    };

    // Land once with the cache off to size the working set, then derive the
    // sweep points from it.
    let (probe, _) = land(0);
    let total = probe.blob_store().stats().stored_bytes;
    let capacities = [0, total / 8, total / 2, total * 2];

    let mut rows = Vec::new();
    let mut scratch = Vec::new();
    for capacity in capacities {
        let (store, stored) = land(capacity);
        let blob = store.blob_store();
        for _ in 0..passes {
            for (i, path) in stored.files.iter().enumerate() {
                blob.get_into(path, &mut scratch).expect("blob read");
                if i % 4 == 0 {
                    // Hot quarter: immediate re-reads (intra-burst reuse).
                    blob.get_into(path, &mut scratch).expect("blob read");
                    blob.get_into(path, &mut scratch).expect("blob read");
                }
            }
        }
        let cache = blob.cache_stats();
        rows.push(CacheSweepRow {
            capacity_bytes: capacity,
            hit_ratio: cache.hit_ratio(),
            evictions: cache.evictions,
            queue_ops: blob.node_stats().iter().map(|n| n.ops).sum(),
        });
    }
    CacheSweepReport {
        total_blob_bytes: total,
        passes,
        rows,
    }
}

impl CacheSweepReport {
    /// The gated figure: hit ratio with a cache larger than the working set.
    pub fn full_capacity_hit_ratio(&self) -> f64 {
        self.rows.last().map_or(0.0, |r| r.hit_ratio)
    }

    /// Renders the sweep plus the derived line the bench snapshot extracts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Cache-size sweep (working set {} KiB, {} passes, hot quarter re-read):",
            self.total_blob_bytes / 1024,
            self.passes
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "  cache {:>8} KiB  hit ratio {:.3}  evictions {:>5}  node ops {:>6}",
                row.capacity_bytes / 1024,
                row.hit_ratio,
                row.evictions,
                row.queue_ops
            );
        }
        let _ = writeln!(
            out,
            "derived storage_cache_hit_ratio {:.4}",
            self.full_capacity_hit_ratio()
        );
        out
    }
}

/// Max/mean of a non-empty slice (1.0 when the mean is zero).
fn spread(values: &[f64]) -> f64 {
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if mean <= 0.0 {
        return 1.0;
    }
    values.iter().cloned().fold(0.0, f64::max) / mean
}

// ---------------------------------------------------------------------------

fn ratio(numerator: f64, denominator: f64) -> f64 {
    if denominator <= 0.0 {
        1.0
    } else {
        numerator / denominator
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterization_reproduces_the_fig3_fig4_shape() {
        let exp = characterization(ExperimentScale::Smoke);
        assert!(exp.report.partition_histogram.mean > 4.0);
        assert!(exp.report.batch_histogram.mean < exp.report.partition_histogram.mean);
        assert!(exp.report.weighted_exact_fraction > 0.4);
        assert!(exp.report.weighted_partial_fraction >= exp.report.weighted_exact_fraction);
        assert!(exp.render_fig3().contains("Figure 3"));
        assert!(exp.render_fig4().contains("Figure 4"));
    }

    #[test]
    fn scribe_and_dedupe_factor_experiments() {
        let scribe = scribe_compression(ExperimentScale::Smoke);
        assert!(scribe.session_ratio > scribe.random_ratio);
        assert!(scribe.render().contains("->"));

        let sweep = dedupe_factor_sweep(ExperimentScale::Smoke);
        assert_eq!(sweep.rows.len(), 9);
        for row in &sweep.rows {
            assert!(row.analytical >= 1.0);
            assert!(row.measured >= 1.0);
        }
        // The factor grows with S and d in both the model and the measurement.
        let low = &sweep.rows[0];
        let high = &sweep.rows[8];
        assert!(high.analytical > low.analytical);
        assert!(high.measured > low.measured);
        assert!(sweep.render().contains("DedupeFactor"));
    }

    #[test]
    fn single_rm_experiments_have_the_right_shape() {
        // Use the cheapest pieces (fig9 on a smoke-scale RM1) to validate the
        // end-to-end experiment plumbing; the full fig7/fig8 sweep runs in the
        // experiments binary and integration tests.
        let fig9_report = fig9(ExperimentScale::Smoke);
        assert_eq!(fig9_report.rows.len(), 5);
        assert!((fig9_report.rows[0].normalized_throughput - 1.0).abs() < 1e-9);
        let last = fig9_report.rows.last().unwrap().normalized_throughput;
        assert!(
            last > 1.2,
            "full RecD should clearly beat baseline, got {last}"
        );
        assert!(fig9_report.render().contains("Figure 9"));

        let t3 = table3(ExperimentScale::Smoke);
        assert_eq!(t3.rows.len(), 3);
        assert!(t3.rows[1].read_bytes < t3.rows[0].read_bytes);
        assert!(t3.rows[2].send_bytes < t3.rows[1].send_bytes);
        assert!(t3.render().contains("Table 3"));
    }

    #[test]
    fn storage_balance_and_cache_sweep_experiments() {
        let balance = storage_load_balance(ExperimentScale::Smoke);
        assert_eq!(balance.rows.len(), 3);
        for row in &balance.rows {
            assert!(
                row.files > 4,
                "want a multi-file partition, got {}",
                row.files
            );
            assert!(row.byte_spread >= 1.0);
            assert!(row.op_spread >= 1.0);
            assert!(row.mean_wait_ms > 0.0, "frozen clock must accumulate wait");
        }
        // Round-robin balances op counts by construction, so no policy can
        // spread ops tighter; greedy least-loaded keeps bytes near-even.
        let hash = &balance.rows[0];
        let rr = &balance.rows[1];
        let least = &balance.rows[2];
        assert!(rr.op_spread <= hash.op_spread + 1e-9);
        assert!(
            least.byte_spread < 1.5,
            "greedy placement drifted: {least:?}"
        );
        assert!(balance.render().contains("storage_load_balance_wait_ms"));

        let sweep = cache_size_sweep(ExperimentScale::Smoke);
        assert_eq!(sweep.rows.len(), 4);
        assert_eq!(sweep.rows[0].hit_ratio, 0.0, "disabled cache cannot hit");
        for pair in sweep.rows.windows(2) {
            assert!(
                pair[1].hit_ratio >= pair[0].hit_ratio - 1e-9,
                "hit ratio regressed with more capacity: {pair:?}"
            );
            assert!(
                pair[1].queue_ops <= pair[0].queue_ops,
                "a larger cache must not add node traffic: {pair:?}"
            );
        }
        assert!(
            sweep.full_capacity_hit_ratio() > 0.6,
            "working-set cache should absorb cross-pass reuse, got {}",
            sweep.full_capacity_hit_ratio()
        );
        assert!(
            sweep.rows.iter().any(|r| r.evictions > 0),
            "undersized capacities should evict"
        );
        assert!(sweep.render().contains("storage_cache_hit_ratio"));
    }

    #[test]
    fn accuracy_is_neutral() {
        let report = accuracy(ExperimentScale::Smoke);
        assert!((report.baseline_loss - report.dedup_loss).abs() < 1e-3);
        assert!(report.clustered_eval_loss.is_finite());
        assert!(report.render().contains("Accuracy"));
    }
}
