//! Pipeline configuration: the per-optimization switches and the RM model
//! presets.

use recd_datagen::{FeatureProfile, WorkloadConfig, WorkloadPreset};
use recd_trainer::{ClusterSpec, PoolingKind};
use serde::{Deserialize, Serialize};

/// Switches for every RecD optimization (Table 1 of the paper). The
/// Figure 9 ablation toggles these cumulatively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RecdConfig {
    /// O1: shard Scribe logs by session id instead of per-request hashing.
    pub o1_log_sharding: bool,
    /// O2: cluster table partitions by session id.
    pub o2_cluster_by_session: bool,
    /// O3: convert configured feature groups to IKJTs at the reader.
    pub o3_ikjt: bool,
    /// O4: run preprocessing over deduplicated tensors.
    pub o4_dedup_preprocessing: bool,
    /// O5: deduplicated EMB lookups / activations / output all-to-all.
    pub o5_dedup_emb: bool,
    /// O6: jagged index select instead of densify-then-select.
    pub o6_jagged_index_select: bool,
    /// O7: deduplicated compute for sequence pooling modules.
    pub o7_dedup_compute: bool,
}

impl RecdConfig {
    /// The baseline pipeline: nothing enabled.
    pub fn baseline() -> Self {
        Self::default()
    }

    /// The full RecD pipeline: everything enabled.
    pub fn full() -> Self {
        Self {
            o1_log_sharding: true,
            o2_cluster_by_session: true,
            o3_ikjt: true,
            o4_dedup_preprocessing: true,
            o5_dedup_emb: true,
            o6_jagged_index_select: true,
            o7_dedup_compute: true,
        }
    }

    /// The cumulative ablation ladder used by Figure 9: each rung adds one
    /// more optimization on top of the previous, in the paper's order
    /// (clustered table, dedup EMB + jagged index select, dedup compute).
    pub fn ablation_ladder() -> Vec<(&'static str, Self)> {
        let baseline = Self::baseline();
        let ct = Self {
            o1_log_sharding: true,
            o2_cluster_by_session: true,
            ..baseline
        };
        let de_jis = Self {
            o3_ikjt: true,
            o4_dedup_preprocessing: true,
            o5_dedup_emb: true,
            o6_jagged_index_select: true,
            ..ct
        };
        let dc = Self {
            o7_dedup_compute: true,
            ..de_jis
        };
        vec![
            ("baseline", baseline),
            ("O1+O2 clustered table", ct),
            ("+O3-O6 dedup EMB + JIS", de_jis),
            ("+O7 dedup compute (full RecD)", dc),
        ]
    }

    /// Whether any trainer-side optimization requires IKJTs from the reader.
    pub fn needs_ikjt(&self) -> bool {
        self.o3_ikjt || self.o5_dedup_emb || self.o6_jagged_index_select || self.o7_dedup_compute
    }
}

/// The three representative industrial models of the evaluation (§6.1),
/// scaled down to laptop size while preserving the architectural traits the
/// paper uses to explain their different gains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RmPreset {
    /// Many long sequence features in several IKJT groups, transformer
    /// pooling — the model that benefits most.
    Rm1,
    /// Fewer sequence features in one group, attention pooling; shares RM1's
    /// table.
    Rm2,
    /// Moderate sequence features, attention pooling, a table with fewer
    /// samples per session.
    Rm3,
}

impl RmPreset {
    /// All presets in paper order.
    pub fn all() -> [RmPreset; 3] {
        [RmPreset::Rm1, RmPreset::Rm2, RmPreset::Rm3]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            RmPreset::Rm1 => "RM1",
            RmPreset::Rm2 => "RM2",
            RmPreset::Rm3 => "RM3",
        }
    }

    /// Builds the full specification for this preset.
    pub fn spec(&self) -> RmSpec {
        match self {
            RmPreset::Rm1 => RmSpec {
                preset: *self,
                workload: rm_workload(16.5, 5, 8, 96, 11),
                embedding_dim: 64,
                sequence_pooling: PoolingKind::Transformer,
                baseline_batch: 512,
                recd_batch: 1536,
                gpus: 48,
                sessions: 280,
            },
            RmPreset::Rm2 => RmSpec {
                preset: *self,
                // Same table (same workload statistics and seed) as RM1.
                workload: rm_workload(16.5, 1, 3, 64, 11),
                embedding_dim: 64,
                sequence_pooling: PoolingKind::Attention,
                baseline_batch: 512,
                recd_batch: 512,
                gpus: 48,
                sessions: 280,
            },
            RmPreset::Rm3 => RmSpec {
                preset: *self,
                workload: rm_workload(6.0, 1, 6, 48, 23),
                embedding_dim: 64,
                sequence_pooling: PoolingKind::Attention,
                baseline_batch: 288,
                recd_batch: 512,
                gpus: 64,
                sessions: 400,
            },
        }
    }
}

fn rm_workload(
    samples_per_session: f64,
    seq_groups: u32,
    seq_features: usize,
    seq_len: usize,
    seed: u64,
) -> WorkloadConfig {
    WorkloadConfig {
        profiles: vec![
            FeatureProfile::user_sequence(seq_features, seq_len, seq_groups),
            FeatureProfile::user_elementwise(24),
            FeatureProfile::item(4),
        ],
        samples_per_session_mean: samples_per_session,
        seed,
        ..WorkloadConfig::preset(WorkloadPreset::Small)
    }
}

/// The full, concrete specification of one RM experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RmSpec {
    /// Which preset this spec came from.
    pub preset: RmPreset,
    /// The dataset workload.
    pub workload: WorkloadConfig,
    /// Embedding dimension.
    pub embedding_dim: usize,
    /// Pooling used for sequence features.
    pub sequence_pooling: PoolingKind,
    /// Baseline global batch size.
    pub baseline_batch: usize,
    /// Batch size RecD's memory savings allow (paper §6.1).
    pub recd_batch: usize,
    /// Number of GPUs in the trainer tier.
    pub gpus: usize,
    /// Number of sessions generated for the experiment.
    pub sessions: usize,
}

impl RmSpec {
    /// The trainer-cluster specification for this RM.
    pub fn cluster(&self) -> ClusterSpec {
        ClusterSpec::zionex(self.gpus)
    }

    /// The workload with the experiment's session count applied.
    pub fn sized_workload(&self) -> WorkloadConfig {
        self.workload.clone().with_sessions(self.sessions)
    }

    /// A shrunken copy for fast tests (fewer sessions, smaller batches).
    #[must_use]
    pub fn scaled_down(mut self, sessions: usize) -> Self {
        self.sessions = sessions;
        self.baseline_batch = self.baseline_batch.min(128);
        self.recd_batch = self.recd_batch.min(256);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_baseline_configs() {
        assert!(!RecdConfig::baseline().needs_ikjt());
        let full = RecdConfig::full();
        assert!(full.o1_log_sharding && full.o7_dedup_compute && full.needs_ikjt());
    }

    #[test]
    fn ablation_ladder_is_monotone() {
        let ladder = RecdConfig::ablation_ladder();
        assert_eq!(ladder.len(), 4);
        assert_eq!(ladder[0].1, RecdConfig::baseline());
        assert_eq!(ladder[3].1, RecdConfig::full());
        // Each rung enables at least as much as the previous one.
        let count = |c: &RecdConfig| {
            [
                c.o1_log_sharding,
                c.o2_cluster_by_session,
                c.o3_ikjt,
                c.o4_dedup_preprocessing,
                c.o5_dedup_emb,
                c.o6_jagged_index_select,
                c.o7_dedup_compute,
            ]
            .iter()
            .filter(|&&b| b)
            .count()
        };
        for pair in ladder.windows(2) {
            assert!(count(&pair[1].1) > count(&pair[0].1));
        }
    }

    #[test]
    fn rm_presets_reflect_the_paper_traits() {
        let rm1 = RmPreset::Rm1.spec();
        let rm2 = RmPreset::Rm2.spec();
        let rm3 = RmPreset::Rm3.spec();
        // RM1 uses transformers and several groups; RM2/RM3 a single group.
        assert_eq!(rm1.sequence_pooling, PoolingKind::Transformer);
        assert!(rm1.recd_batch > rm1.baseline_batch);
        assert_eq!(rm2.recd_batch, rm2.baseline_batch);
        assert!(rm3.recd_batch > rm3.baseline_batch);
        // RM1 and RM2 share the same table statistics (same seed and S).
        assert_eq!(rm1.workload.seed, rm2.workload.seed);
        assert_eq!(
            rm1.workload.samples_per_session_mean,
            rm2.workload.samples_per_session_mean
        );
        assert!(rm3.workload.samples_per_session_mean < rm1.workload.samples_per_session_mean);
        for preset in RmPreset::all() {
            let spec = preset.spec();
            assert!(!preset.name().is_empty());
            assert!(spec.cluster().gpus >= 8);
            let small = spec.scaled_down(20);
            assert_eq!(small.sessions, 20);
            assert!(small.baseline_batch <= 128);
            // The workload schema must build.
            let schema = small.sized_workload().schema();
            assert!(schema.dedup_group_count() > 0);
        }
    }
}
