//! Storage-realism equivalence: enabling the per-node queue model and the
//! blob cache tier changes *when* bytes arrive, never *which* bytes. The
//! continuous run's trainer-batch union and the batch run's payload
//! accounting must be byte-identical to the flat-latency path.

use recd_dpp::TrainerBatch;
use recd_pipeline::{PipelineRunner, RecdConfig, RmPreset, RmSpec, StorageSimConfig};
use recd_storage::NodeConfig;

const WORKERS: usize = 2;
const TRAINERS: usize = 3;
const BATCH: usize = 128;

fn small_spec() -> RmSpec {
    RmPreset::Rm1.spec().scaled_down(60)
}

/// Fast nodes (50µs/op, 512 MiB/s) so queue waits are real but the smoke
/// workload still finishes promptly.
fn realistic_storage() -> StorageSimConfig {
    StorageSimConfig {
        nodes: 8,
        node: Some(NodeConfig::new(20_000.0, 512.0 * 1024.0 * 1024.0)),
        cache_bytes: 8 << 20,
    }
}

fn run_continuous(storage: StorageSimConfig) -> recd_pipeline::run::PipelineArtifacts {
    PipelineRunner::new(small_spec(), RecdConfig::full())
        .with_continuous(WORKERS)
        .with_continuous_trainers(TRAINERS)
        .with_storage(storage)
        .run(BATCH)
}

fn canonical(mut batches: Vec<TrainerBatch>) -> Vec<TrainerBatch> {
    batches.sort_by_key(|b| (b.shard, b.seq));
    batches
}

#[test]
fn queued_and_cached_storage_delivers_a_byte_identical_union() {
    let flat = run_continuous(StorageSimConfig::default());
    let realistic = run_continuous(realistic_storage());

    let reference = canonical(flat.continuous_batches);
    let got = canonical(realistic.continuous_batches);
    assert!(
        reference.len() >= 4,
        "reference must deliver several batches, got {}",
        reference.len()
    );
    assert_eq!(
        got.len(),
        reference.len(),
        "queue+cache storage changed the delivered batch count"
    );
    for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
        assert_eq!(
            (g.shard, g.seq),
            (r.shard, r.seq),
            "batch {i} stream position diverged under queue+cache storage"
        );
        assert_eq!(
            g.batch, r.batch,
            "batch {i} payload diverged under queue+cache storage"
        );
    }

    // The landed bytes agree too: storage realism is latency-only.
    assert_eq!(flat.report.storage, realistic.report.storage);
    assert_eq!(flat.report.samples, realistic.report.samples);
}

#[test]
fn batch_pipeline_reports_agree_across_storage_models() {
    let run = |storage: StorageSimConfig| {
        PipelineRunner::new(small_spec(), RecdConfig::full())
            .with_storage(storage)
            .run(BATCH)
    };
    let flat = run(StorageSimConfig::default());
    let realistic = run(realistic_storage());

    assert_eq!(flat.report.samples, realistic.report.samples);
    assert_eq!(flat.report.storage, realistic.report.storage);
    assert_eq!(flat.report.read_bytes, realistic.report.read_bytes);
    assert_eq!(flat.report.egress_bytes, realistic.report.egress_bytes);
    assert_eq!(flat.batches.len(), realistic.batches.len());
    for (i, (f, r)) in flat.batches.iter().zip(&realistic.batches).enumerate() {
        assert_eq!(
            f, r,
            "preprocessed batch {i} diverged across storage models"
        );
    }
}
