//! End-to-end control-loop equivalence: the unified PID backpressure
//! controller may change *when* work happens — pool sizes, pump timing,
//! submission pacing — but never *what* is produced. A controller-on run
//! must deliver the **byte-identical trainer-batch union** of a
//! controller-off run under the same barrier schedule, fault-free and under
//! slow-trainer chaos alike; and with trainers as the bottleneck the
//! controller must demonstrably flatten the DPP input-queue peak.
//!
//! The controller-off oracle is the same runner without `with_ctrl`: it
//! executes the identical pump/checkpoint cadence, so any divergence is
//! attributable to the controller leaking into the payload path.

use recd_chaos::FaultPlan;
use recd_dpp::{CtrlConfig, TrainerBatch};
use recd_pipeline::{PipelineRunner, RecdConfig, RmPreset, RmSpec};

const WORKERS: usize = 2;
const TRAINERS: usize = 3;
const BATCH: usize = 128;

/// Every lane stalled within one pump window (the plan rejects same-instant
/// duplicates of a fault kind, so the stalls stagger by one 60s pump step
/// and overlap in wall time), twice: with every consumer paused the trainer
/// tier is unambiguously the bottleneck, so the controller's lane signal
/// fires (pump gate, compute shrink, submission pacing) while the
/// uncontrolled run just piles partitions into the input queue.
const SLOW_TRAINER_PLAN: &str = "1800000:stall-trainer:0:300;1860000:stall-trainer:1:300;\
                                 1920000:stall-trainer:2:300;3000000:stall-trainer:0:300;\
                                 3060000:stall-trainer:1:300;3120000:stall-trainer:2:300";

fn small_spec() -> RmSpec {
    RmPreset::Rm1.spec().scaled_down(60)
}

fn runner() -> PipelineRunner {
    PipelineRunner::new(small_spec(), RecdConfig::full())
        .with_continuous(WORKERS)
        .with_continuous_trainers(TRAINERS)
}

fn ctrl() -> CtrlConfig {
    CtrlConfig::bounds(1, 4)
}

/// Sorts a delivered union into its canonical (shard, seq) order.
fn canonical(mut batches: Vec<TrainerBatch>) -> Vec<TrainerBatch> {
    batches.sort_by_key(|b| (b.shard, b.seq));
    batches
}

/// Asserts two canonical unions are byte-identical.
fn assert_union_identical(reference: &[TrainerBatch], got: &[TrainerBatch], label: &str) {
    assert_eq!(
        got.len(),
        reference.len(),
        "{label}: delivered batch count diverged from the controller-off run"
    );
    for (i, (g, r)) in got.iter().zip(reference).enumerate() {
        assert_eq!(
            (g.shard, g.seq),
            (r.shard, r.seq),
            "{label}: batch {i} stream position diverged"
        );
        assert_eq!(
            g.batch, r.batch,
            "{label}: batch {i} payload diverged from the controller-off run"
        );
    }
}

#[test]
fn controller_off_and_on_deliver_identical_unions() {
    let off = runner().run(BATCH);
    let off_union = canonical(off.continuous_batches);
    assert!(
        off_union.len() >= 4,
        "reference must deliver several batches, got {}",
        off_union.len()
    );
    let off_report = off.report.continuous.as_ref().expect("continuous");
    assert!(
        off_report.dpp.ctrl.is_none(),
        "controller-off runs must not grow a ctrl report"
    );

    let on = runner().with_ctrl(ctrl()).run(BATCH);
    let on_report = on.report.continuous.as_ref().expect("continuous");
    let ctrl_report = on_report.dpp.ctrl.expect("controller-on runs report ctrl");
    assert!(ctrl_report.ticks > 0, "the controller must have sampled");
    assert_eq!(
        on_report.dpp.samples, off_report.dpp.samples,
        "controller must not change delivered sample count"
    );
    assert_union_identical(&off_union, &canonical(on.continuous_batches), "ctrl on");
}

#[test]
fn controller_actuates_and_flattens_the_input_queue_under_slow_trainers() {
    // Fine-grained files make each sealed partition land as a long
    // submission burst, so the input-queue dynamics are observable on this
    // small workload: the uncontrolled run slams the burst into the queue's
    // capacity wall while the controller's submission pacing holds pending
    // input near the setpoint (4 of 8). Both runs share the shape — file
    // boundaries participate in batch composition.
    let runner = || runner().with_continuous_file_shape(16, 1);
    let plan = FaultPlan::parse(SLOW_TRAINER_PLAN).expect("plan parses");
    let planned = plan.len();
    let off = runner().with_chaos(plan.clone()).run(BATCH);
    let off_chaos = off.report.chaos.clone().expect("chaos report");
    assert_eq!(off_chaos.faults_fired, planned as u64);
    let off_peak = off
        .report
        .continuous
        .as_ref()
        .expect("continuous")
        .dpp
        .peak_input_queue_depth;
    let off_union = canonical(off.continuous_batches);

    let on = runner().with_chaos(plan).with_ctrl(ctrl()).run(BATCH);
    let on_report = on.report.continuous.as_ref().expect("continuous");
    let ctrl_report = on_report.dpp.ctrl.expect("ctrl report");
    assert!(
        ctrl_report.actuations > 0,
        "stalled lanes must drive the controller to actuate"
    );
    let on_peak = on_report.dpp.peak_input_queue_depth;
    assert!(
        on_peak < off_peak,
        "controller must flatten the input-queue peak: on {on_peak} vs off {off_peak}"
    );
    assert_union_identical(
        &off_union,
        &canonical(on.continuous_batches),
        "slow trainers",
    );
}

#[test]
fn controller_on_fleet_matches_the_controller_off_fleet_union() {
    let off = runner().with_hosts(3).run(BATCH);
    let off_union = canonical(off.continuous_batches);
    assert!(
        off_union.len() >= 4,
        "fleet reference must deliver several batches, got {}",
        off_union.len()
    );

    let on = runner().with_hosts(3).with_ctrl(ctrl()).run(BATCH);
    let on_report = on.report.continuous.as_ref().expect("continuous");
    let ctrl_report = on_report.dpp.ctrl.expect("per-host ctrl aggregates");
    assert!(ctrl_report.ticks > 0, "host controllers must have sampled");
    assert_union_identical(&off_union, &canonical(on.continuous_batches), "fleet ctrl");
}
