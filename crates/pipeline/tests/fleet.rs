//! End-to-end fleet convergence: the continuous pipeline with its DPP tier
//! disaggregated over M simulated hosts must deliver the **byte-identical
//! trainer-batch union** for every fleet size and every host-failure
//! schedule — kills, control-plane partitions, rejoins — with full
//! control-plane accounting and zero dropped batches.
//!
//! The oracle is the same runner with a fleet of one: the coordinator's
//! file → shard placement (and the per-pump barrier schedule) is a pure
//! function of the landing schedule, independent of the host count, so any
//! divergence is attributable to the control plane leaking into the payload
//! path.

use recd_chaos::FaultPlan;
use recd_dpp::TrainerBatch;
use recd_pipeline::{PipelineRunner, RecdConfig, RmPreset, RmSpec};

const WORKERS: usize = 2;
const TRAINERS: usize = 3;
const BATCH: usize = 128;
const HOSTS: usize = 4;
/// The small workload's sessions all start inside hour zero, so one
/// simulated hour bounds the window in which the pipeline is moving data.
const HORIZON_MS: u64 = 3_600_000;

fn small_spec() -> RmSpec {
    RmPreset::Rm1.spec().scaled_down(60)
}

fn run_fleet(hosts: usize, plan: FaultPlan) -> recd_pipeline::run::PipelineArtifacts {
    PipelineRunner::new(small_spec(), RecdConfig::full())
        .with_continuous(WORKERS)
        .with_continuous_trainers(TRAINERS)
        .with_hosts(hosts)
        .with_chaos(plan)
        .run(BATCH)
}

/// Sorts a delivered union into its canonical (shard, seq) order.
fn canonical(mut batches: Vec<TrainerBatch>) -> Vec<TrainerBatch> {
    batches.sort_by_key(|b| (b.shard, b.seq));
    batches
}

/// Asserts two canonical unions are byte-identical, including the
/// shard-pinned lane assignment.
fn assert_union_identical(reference: &[TrainerBatch], got: &[TrainerBatch], label: &str) {
    assert_eq!(
        got.len(),
        reference.len(),
        "{label}: delivered batch count diverged from the reference run"
    );
    for (i, (g, r)) in got.iter().zip(reference).enumerate() {
        assert_eq!(
            (g.shard, g.seq, g.trainer),
            (r.shard, r.seq, r.trainer),
            "{label}: batch {i} stream position diverged"
        );
        assert_eq!(
            g.batch, r.batch,
            "{label}: batch {i} payload diverged from the reference run"
        );
    }
}

fn assert_zero_drops(artifacts: &recd_pipeline::run::PipelineArtifacts, label: &str) {
    let continuous = artifacts.report.continuous.as_ref().expect("continuous");
    assert!(
        continuous
            .dpp
            .trainers
            .iter()
            .all(|t| t.dropped_batches == 0),
        "{label}: no fleet lane may drop a batch"
    );
    assert_eq!(
        continuous.dpp.samples, artifacts.report.samples,
        "{label}: exactly-once — trainer-side samples match the batch pipeline"
    );
}

#[test]
fn fleet_sizes_deliver_identical_unions() {
    let mut one = run_fleet(1, FaultPlan::new());
    let reference = canonical(std::mem::take(&mut one.continuous_batches));
    assert!(
        reference.len() >= 4,
        "reference must deliver several batches, got {}",
        reference.len()
    );
    assert_zero_drops(&one, "fleet of one");
    let fleet_one = one
        .report
        .continuous
        .as_ref()
        .expect("continuous")
        .fleet
        .clone()
        .expect("fleet report");
    assert_eq!(fleet_one.hosts, 1);
    assert_eq!(fleet_one.hosts_live_at_finish, 1);
    assert_eq!(fleet_one.deaths_detected, 0);

    let four = run_fleet(HOSTS, FaultPlan::new());
    assert_zero_drops(&four, "fleet of four");
    let continuous = four.report.continuous.as_ref().expect("continuous");
    let fleet = continuous.fleet.clone().expect("fleet report");
    assert_eq!(fleet.hosts, HOSTS);
    assert_eq!(fleet.hosts_live_at_finish, HOSTS);
    assert_eq!(fleet.deaths_detected, 0);
    assert_eq!(fleet.kills + fleet.partitions + fleet.rejoins, 0);
    assert!(fleet.barriers > 0, "every pump ends in a fleet barrier");
    // Every pump ticks every live host once; the final barrier (after the
    // tail drains) has no tick of its own.
    assert!(
        fleet.heartbeats >= (fleet.barriers - 1) * HOSTS as u64,
        "every live host beats at least once per pump"
    );
    assert_eq!(fleet.forwarded_batches as usize, reference.len());
    // The per-host registries federate into the aggregator's registry, so
    // the fleet run tracks strictly more series than one host would emit.
    assert!(continuous.derived.series_tracked > 0);

    assert_union_identical(
        &reference,
        &canonical(four.continuous_batches),
        "fleet of four",
    );
}

#[test]
fn seeded_host_failure_schedules_converge() {
    let reference = canonical(run_fleet(HOSTS, FaultPlan::new()).continuous_batches);

    for seed in [7u64, 23] {
        let plan = FaultPlan::seeded_fleet(seed, HORIZON_MS, TRAINERS, HOSTS);
        let planned = plan.len();
        let artifacts = run_fleet(HOSTS, plan);
        let label = format!("seed {seed}");

        let chaos = artifacts.report.chaos.clone().expect("chaos report");
        assert_eq!(chaos.seed, seed);
        assert_eq!(
            chaos.faults_fired, planned as u64,
            "{label}: every scheduled fault fires inside the run window"
        );

        let continuous = artifacts.report.continuous.as_ref().expect("continuous");
        let fleet = continuous.fleet.clone().expect("fleet report");
        assert_eq!(fleet.kills, 1, "{label}");
        assert_eq!(fleet.partitions, 1, "{label}");
        assert_eq!(fleet.rejoins, 1, "{label}");
        // Both the killed and the partitioned host are declared dead (the
        // per-pump barrier acts as a contact round); only the killed one
        // rejoins.
        assert_eq!(fleet.deaths_detected, 2, "{label}");
        assert_eq!(fleet.hosts_live_at_finish, HOSTS - 1, "{label}");
        assert!(
            fleet.shard_replacements > 0,
            "{label}: a dead host's shards must be re-placed"
        );
        assert!(
            fleet.rebalance_moves > 0,
            "{label}: the rejoined host must steal shards back"
        );
        assert_zero_drops(&artifacts, &label);

        assert_union_identical(&reference, &canonical(artifacts.continuous_batches), &label);
    }
}

#[test]
fn hand_written_host_fault_plan_heals_to_full_strength() {
    let reference = canonical(run_fleet(HOSTS, FaultPlan::new()).continuous_batches);

    // Kill one host, partition another past the heartbeat timeout, rejoin
    // both: the fleet must finish at full strength with the identical union.
    let plan = FaultPlan::parse(
        "300000:kill-host:1;900000:partition-host:2:240000;\
         2100000:rejoin-host:1;2400000:rejoin-host:2",
    )
    .expect("plan parses");
    let planned = plan.len();
    let artifacts = run_fleet(HOSTS, plan);

    let chaos = artifacts.report.chaos.clone().expect("chaos report");
    assert_eq!(chaos.faults_fired, planned as u64);

    let continuous = artifacts.report.continuous.as_ref().expect("continuous");
    let fleet = continuous.fleet.clone().expect("fleet report");
    assert_eq!(fleet.kills, 1);
    assert_eq!(fleet.partitions, 1);
    assert_eq!(fleet.rejoins, 2);
    assert_eq!(fleet.deaths_detected, 2);
    assert_eq!(
        fleet.hosts_live_at_finish, HOSTS,
        "both rejoined hosts must be live at finish"
    );
    assert!(fleet.shard_replacements > 0);
    assert!(fleet.rebalance_moves > 0);
    assert_zero_drops(&artifacts, "heal plan");

    assert_union_identical(
        &reference,
        &canonical(artifacts.continuous_batches),
        "heal plan",
    );
}
