//! End-to-end chaos convergence: the continuous pipeline run under seeded
//! and hand-written fault plans — trainer kills and stalls, storage
//! brown-outs, transient get/put failures, ETL pump crash-restarts — must
//! deliver the **byte-identical trainer-batch union** of a fault-free run
//! with the same barrier schedule, with full chaos accounting.
//!
//! The fault-free oracle is the same runner under an *empty* fault plan:
//! it executes the identical pump/barrier/checkpoint cadence, so any
//! divergence is attributable to a fault leaking into the payload path.

use recd_chaos::FaultPlan;
use recd_dpp::TrainerBatch;
use recd_pipeline::{PipelineRunner, RecdConfig, RmPreset, RmSpec};

const WORKERS: usize = 2;
const TRAINERS: usize = 3;
const BATCH: usize = 128;
/// The small workload's sessions all start inside hour zero, so one
/// simulated hour bounds the window in which the pipeline is moving data.
const HORIZON_MS: u64 = 3_600_000;

fn small_spec() -> RmSpec {
    RmPreset::Rm1.spec().scaled_down(60)
}

fn run_with(plan: FaultPlan) -> recd_pipeline::run::PipelineArtifacts {
    PipelineRunner::new(small_spec(), RecdConfig::full())
        .with_continuous(WORKERS)
        .with_continuous_trainers(TRAINERS)
        .with_chaos(plan)
        .run(BATCH)
}

/// Sorts a delivered union into its canonical (shard, seq) order.
fn canonical(mut batches: Vec<TrainerBatch>) -> Vec<TrainerBatch> {
    batches.sort_by_key(|b| (b.shard, b.seq));
    batches
}

/// Asserts two canonical unions are byte-identical.
fn assert_union_identical(reference: &[TrainerBatch], got: &[TrainerBatch], label: &str) {
    assert_eq!(
        got.len(),
        reference.len(),
        "{label}: delivered batch count diverged from the fault-free run"
    );
    for (i, (g, r)) in got.iter().zip(reference).enumerate() {
        assert_eq!(
            (g.shard, g.seq),
            (r.shard, r.seq),
            "{label}: batch {i} stream position diverged"
        );
        assert_eq!(
            g.batch, r.batch,
            "{label}: batch {i} payload diverged from the fault-free run"
        );
    }
}

#[test]
fn seeded_fault_plans_converge_to_the_fault_free_union() {
    let reference = run_with(FaultPlan::new());
    let ref_chaos = reference.report.chaos.clone().expect("chaos report");
    assert_eq!(ref_chaos.faults_fired, 0, "empty plan fires nothing");
    let ref_union = canonical(reference.continuous_batches);
    assert!(
        ref_union.len() >= 4,
        "reference must deliver several batches, got {}",
        ref_union.len()
    );

    for seed in [11u64, 29, 47] {
        let plan = FaultPlan::seeded(seed, HORIZON_MS, TRAINERS);
        let planned = plan.len();
        let artifacts = run_with(plan);
        let label = format!("seed {seed}");

        let chaos = artifacts.report.chaos.clone().expect("chaos report");
        assert_eq!(chaos.seed, seed);
        assert_eq!(chaos.planned_faults, planned);
        assert_eq!(
            chaos.faults_fired, planned as u64,
            "{label}: every scheduled fault fires inside the run window"
        );
        assert_eq!(
            chaos.pump_crashes, chaos.resumes,
            "{label}: every crash must be followed by a resume"
        );
        // Every injected transient storage failure was absorbed by a retry.
        assert!(
            chaos.retries >= chaos.injected_get_failures + chaos.injected_put_failures,
            "{label}: {} retries cannot absorb {}+{} injected failures",
            chaos.retries,
            chaos.injected_get_failures,
            chaos.injected_put_failures,
        );
        assert_eq!(chaos.retry_exhausted, 0, "{label}: budget must suffice");

        let continuous = artifacts.report.continuous.as_ref().expect("continuous");
        assert!(
            continuous
                .dpp
                .trainers
                .iter()
                .all(|t| t.dropped_batches == 0),
            "{label}: killed-lane traffic must re-route, not drop"
        );
        assert_eq!(
            continuous.dpp.samples, artifacts.report.samples,
            "{label}: exactly-once — trainer-side samples match the batch pipeline"
        );

        assert_union_identical(&ref_union, &canonical(artifacts.continuous_batches), &label);
    }
}

#[test]
fn hand_written_fault_plans_converge_to_the_fault_free_union() {
    let reference = run_with(FaultPlan::new());
    let ref_union = canonical(reference.continuous_batches);

    let plans = [
        // A mid-run trainer kill, a stall, and a storage brown-out.
        "120000:kill-trainer:1;300000:stall-trainer:0:15;600000:slow-storage:8:120000",
        // Transient storage failures followed by a pump crash-restart.
        "60000:fail-get:4;90000:fail-put:2;1500000:crash-pump",
        // Back-to-back pump crashes plus a late kill and a get burst.
        "300000:crash-pump;360000:crash-pump;420000:kill-trainer:2;500000:fail-get:3",
    ];
    for spec in plans {
        let plan = FaultPlan::parse(spec).expect("plan parses");
        let planned = plan.len();
        let artifacts = run_with(plan);
        let chaos = artifacts.report.chaos.clone().expect("chaos report");
        assert_eq!(chaos.faults_fired, planned as u64, "plan `{spec}`");
        assert_union_identical(
            &ref_union,
            &canonical(artifacts.continuous_batches),
            &format!("plan `{spec}`"),
        );
    }
}

#[test]
fn crash_restart_accounting_reaches_the_report() {
    let plan = FaultPlan::parse("600000:crash-pump").expect("plan parses");
    let artifacts = run_with(plan);
    let chaos = artifacts.report.chaos.expect("chaos report");
    assert_eq!(chaos.pump_crashes, 1);
    assert_eq!(chaos.resumes, 1);
    assert!(chaos.recovery_ms >= 0.0);
    // The fault-free union still holds after a lone crash-restart.
    let reference = run_with(FaultPlan::new());
    assert_union_identical(
        &canonical(reference.continuous_batches),
        &canonical(artifacts.continuous_batches),
        "lone crash",
    );
}
