//! Deterministic end-to-end replay harness for the continuous ETL stage,
//! plus property and fault/edge tests.
//!
//! The headline assertions:
//!
//! * Tailing a seeded log under a [`ManualClock`] produces partitions
//!   **byte-identical** (down to the landed DWRF blob bytes) to the batch
//!   `join_logs` → `HourlyPartitioner` → layout path, across seeds, both
//!   [`TableLayout`]s, and any pump step size.
//! * Feeding a running `recd-dpp` service through
//!   `DppHandle::ingest_partition` as partitions land yields exactly the
//!   batches the batch pipeline produces from its pre-built table.
//! * Any permutation of record arrival within the join window yields the
//!   same labeled samples; records later than the watermark are dropped and
//!   counted, never silently lost or double-joined.

use proptest::collection::vec;
use proptest::prelude::*;
use recd_core::DataLoaderConfig;
use recd_data::{EventLog, FeatureLog, LogRecord, RequestId, Sample, Schema, SessionId, Timestamp};
use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
use recd_dpp::{DppConfig, DppService, ShardPolicy};
use recd_etl::{
    cluster_by_session, interleave_by_time, join_logs, EtlService, EtlServiceOutput, EtlStream,
    EtlStreamConfig, HourlyPartitioner, ManualClock, SealReason, TableLayout, TablePartition,
};
use recd_reader::{PreprocessPipeline, ReaderConfig};
use recd_scribe::{LogTail, TailConfig};
use recd_storage::{StoredPartition, TableStore, TectonicSim};
use std::sync::Arc;

const HOUR: u64 = Timestamp::MILLIS_PER_HOUR;

/// The batch reference: join, partition hourly, apply the layout — the exact
/// output `EtlJob` lands, without downsampling.
fn batch_reference(records: &[LogRecord], layout: TableLayout) -> Vec<TablePartition> {
    let joined = join_logs(records);
    let mut partitions = HourlyPartitioner::partition(joined.samples);
    for partition in &mut partitions {
        partition.samples = match layout {
            TableLayout::TimeOrdered => interleave_by_time(&partition.samples),
            TableLayout::ClusteredBySession => cluster_by_session(&partition.samples),
        };
    }
    partitions
}

fn fresh_store() -> Arc<TableStore> {
    Arc::new(TableStore::new(TectonicSim::new(4), 32, 2))
}

/// Lands `partitions` the way the batch pipeline does: one
/// `land_partition` call per hour, in hour order.
fn land_batch(
    store: &TableStore,
    schema: &Schema,
    partitions: &[TablePartition],
) -> Vec<StoredPartition> {
    partitions
        .iter()
        .map(|p| store.land_partition(schema, "t", p.hour, &p.samples).0)
        .collect()
}

/// Runs the full streaming path over a jittered tail under a manual clock:
/// returns the sealed partitions, the landed handles, and the service
/// output.
fn run_stream(
    records: Vec<LogRecord>,
    layout: TableLayout,
    tail_config: &TailConfig,
    window_ms: u64,
    step_ms: u64,
    store: Arc<TableStore>,
    schema: Schema,
) -> (Vec<TablePartition>, Vec<StoredPartition>, EtlServiceOutput) {
    let tail = LogTail::new(records, tail_config);
    let service = EtlService::new(
        tail,
        EtlStreamConfig::new(layout).with_window_ms(window_ms),
        store,
        schema,
        "t",
    );
    let mut sealed = Vec::new();
    let mut landed = Vec::new();
    let output = service.run(
        ManualClock::new(),
        step_ms,
        &mut |stored: &StoredPartition, partition: &TablePartition| {
            landed.push(stored.clone());
            sealed.push(partition.clone());
        },
    );
    (sealed, landed, output)
}

fn blob_bytes(store: &TableStore, stored: &[StoredPartition]) -> Vec<(String, Vec<u8>)> {
    stored
        .iter()
        .flat_map(|p| p.files.iter())
        .map(|path| {
            let bytes = store.blob_store().get(path).expect("landed blob present");
            (path.clone(), bytes.to_vec())
        })
        .collect()
}

/// Satellite 1 (the acceptance criterion): across seeds, layouts, and pump
/// step sizes, the streamed output is byte-identical to the batch path —
/// same partitions, same file paths, same stored bytes.
#[test]
fn replay_is_byte_identical_to_batch_etl() {
    for seed in [7u64, 1234, 98765] {
        for layout in [TableLayout::TimeOrdered, TableLayout::ClusteredBySession] {
            let generator =
                DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny).with_seed(seed));
            let (records, _) = generator.generate_logs();
            let schema = generator.schema().clone();
            let expected = batch_reference(&records, layout);
            assert!(expected.len() > 1, "fixture must span several hours");

            let batch_store = fresh_store();
            let batch_landed = land_batch(&batch_store, &schema, &expected);

            let tail_config = TailConfig::default()
                .with_jitter_ms(2_000)
                .with_seed(seed ^ 0x5EED);
            let stream_store = fresh_store();
            let (sealed, landed, output) = run_stream(
                records.clone(),
                layout,
                &tail_config,
                10_000,
                777, // a deliberately odd pump step
                Arc::clone(&stream_store),
                schema.clone(),
            );

            // Partition-level equality: same hours, same rows, same order.
            assert_eq!(sealed, expected, "seed {seed} layout {layout:?}");
            // Nothing was lost to the watermark: the window covers the jitter.
            let c = output.report.etl.counters;
            assert_eq!(c.late_drops, 0);
            assert_eq!(c.orphaned_features + c.orphaned_events, 0);
            assert_eq!(c.duplicates, 0);
            assert_eq!(c.sealed_rows, c.joined_samples);

            // Byte-level equality of everything landed.
            assert_eq!(
                blob_bytes(&stream_store, &landed),
                blob_bytes(&batch_store, &batch_landed),
                "landed DWRF bytes diverged at seed {seed} layout {layout:?}"
            );

            // Pump step size is irrelevant: one giant step per hour replays
            // to the identical result.
            let (sealed_coarse, _, _) = run_stream(
                records,
                layout,
                &tail_config,
                10_000,
                HOUR,
                fresh_store(),
                schema,
            );
            assert_eq!(sealed_coarse, sealed);
        }
    }
}

fn dpp_config(schema: &Schema) -> DppConfig {
    DppConfig::new(ReaderConfig::new(64, DataLoaderConfig::from_schema(schema)))
        .with_policy(ShardPolicy::FileRoundRobin)
        .with_shards(2)
        .with_fill_workers(2)
        .with_compute_workers(2)
        .with_pipeline_factory(|| PreprocessPipeline::standard(1 << 20, 64))
}

/// Satellite 1, trainer side: a `recd-dpp` service fed partition-by-partition
/// through `ingest_partition` as the ETL lands them emits exactly the batches
/// a service fed from the pre-built batch table emits.
#[test]
fn trainer_side_union_from_ingest_matches_batch_pipeline() {
    for layout in [TableLayout::TimeOrdered, TableLayout::ClusteredBySession] {
        let generator =
            DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny).with_seed(42));
        let (records, _) = generator.generate_logs();
        let schema = generator.schema().clone();

        // Batch side: pre-build the table, submit it whole.
        let expected = batch_reference(&records, layout);
        let batch_store = fresh_store();
        let batch_landed = land_batch(&batch_store, &schema, &expected);
        let mut batch_handle = DppService::start(
            dpp_config(&schema),
            Arc::clone(&batch_store),
            schema.clone(),
        );
        for stored in &batch_landed {
            batch_handle.submit_partition(stored);
        }
        let batch_output = batch_handle.finish().expect("clean batch-fed run");

        // Continuous side: ingest each partition the moment it lands.
        let stream_store = fresh_store();
        let mut stream_handle = DppService::start(
            dpp_config(&schema),
            Arc::clone(&stream_store),
            schema.clone(),
        );
        let tail = LogTail::new(
            records,
            &TailConfig::default().with_jitter_ms(2_000).with_seed(9),
        );
        let service = EtlService::new(
            tail,
            EtlStreamConfig::new(layout).with_window_ms(10_000),
            Arc::clone(&stream_store),
            schema.clone(),
            "t",
        );
        let output = service.run(
            ManualClock::new(),
            60_000,
            &mut |stored: &StoredPartition, _: &TablePartition| {
                stream_handle.ingest_partition(stored);
            },
        );
        let stream_output = stream_handle.finish().expect("clean tail-fed run");

        assert_eq!(
            stream_output.batches, batch_output.batches,
            "trainer-side batches diverged for {layout:?}"
        );
        assert_eq!(
            stream_output.report.partitions_ingested,
            output.report.landed_partitions
        );
        assert_eq!(stream_output.report.samples, batch_output.report.samples);
        assert_eq!(
            stream_output.report.samples as u64,
            output.report.etl.counters.joined_samples
        );
    }
}

// ---------------------------------------------------------------------------
// Property tests.
// ---------------------------------------------------------------------------

/// One drawn request: `(session, hour, offset_ms, jitter)` — jitter is the
/// arrival permutation *within* the join window.
type DrawnRequest = (u64, u64, u64, u64);

/// Expands drawn requests into (record, arrival) pairs: a feature log plus
/// its event 500ms later, each with its own arrival time.
fn expand_records(drawn: &[DrawnRequest], late_every: Option<usize>) -> Vec<(u64, LogRecord)> {
    let mut arrivals = Vec::with_capacity(drawn.len() * 2);
    for (i, &(session, hour, offset, jitter)) in drawn.iter().enumerate() {
        let ts = hour * HOUR + offset;
        let feature = LogRecord::Feature(FeatureLog {
            request_id: RequestId::new(i as u64),
            session_id: SessionId::new(session),
            timestamp: Timestamp::from_millis(ts),
            dense: vec![ts as f32, session as f32],
            sparse: vec![vec![session, i as u64 % 7]],
        });
        let event = LogRecord::Event(EventLog {
            request_id: RequestId::new(i as u64),
            session_id: SessionId::new(session),
            timestamp: Timestamp::from_millis(ts + 500),
            label: (i % 2) as f32,
        });
        // The event reuses the feature's drawn jitter rotated by one, which
        // keeps the permutation arbitrary but bounded.
        let event_jitter = drawn[(i + 1) % drawn.len()].3;
        let extra = late_every
            .filter(|n| i % n == n - 1)
            .map_or(0, |_| 10 * HOUR);
        arrivals.push((ts + jitter, feature));
        arrivals.push((ts + 500 + event_jitter + extra, event));
    }
    // Stable by (arrival, insertion order).
    arrivals.sort_by_key(|(arrival, _)| *arrival);
    arrivals
}

fn drawn_strategy() -> impl Strategy<Value = Vec<DrawnRequest>> {
    vec((0u64..6, 0u64..3, 0u64..HOUR, 0u64..8_000), 1..40)
}

proptest! {
    /// Any arrival permutation within the join window yields exactly the
    /// batch join's labeled samples, laid out identically.
    #[test]
    fn arrival_permutation_within_window_is_invariant(drawn in drawn_strategy()) {
        let arrivals = expand_records(&drawn, None);
        let records: Vec<LogRecord> = arrivals.iter().map(|(_, r)| r.clone()).collect();
        for layout in [TableLayout::TimeOrdered, TableLayout::ClusteredBySession] {
            let expected = batch_reference(&records, layout);
            let mut stream = EtlStream::new(
                EtlStreamConfig::new(layout).with_window_ms(10_000),
            );
            for (_, record) in &arrivals {
                stream.push(record.clone());
            }
            stream.finish();
            let sealed: Vec<TablePartition> = stream
                .drain_sealed()
                .into_iter()
                .map(|s| s.partition)
                .collect();
            prop_assert_eq!(&sealed, &expected);
            let c = stream.report().counters;
            prop_assert_eq!(c.late_drops, 0);
            prop_assert_eq!(c.joined_samples as usize, drawn.len());
        }
    }

    /// Stragglers beyond the watermark are dropped-and-counted — never
    /// silently lost, never double-joined: every pushed record lands in
    /// exactly one accounting bucket and every joined request id appears in
    /// exactly one sealed row.
    #[test]
    fn late_records_are_counted_never_lost_or_double_joined(drawn in drawn_strategy()) {
        let arrivals = expand_records(&drawn, Some(3));
        let mut stream = EtlStream::new(
            EtlStreamConfig::new(TableLayout::ClusteredBySession).with_window_ms(10_000),
        );
        for (_, record) in &arrivals {
            stream.push(record.clone());
        }
        stream.finish();
        let c = stream.report().counters;
        prop_assert_eq!(
            c.records,
            2 * c.joined_samples
                + c.late_drops
                + c.duplicates
                + c.orphaned_features
                + c.orphaned_events
                + c.downsampled
        );
        let mut joined_requests: Vec<u64> = stream
            .drain_sealed()
            .iter()
            .flat_map(|s| s.partition.samples.iter())
            .map(|sample| sample.request_id.raw())
            .collect();
        prop_assert_eq!(joined_requests.len() as u64, c.joined_samples);
        joined_requests.sort_unstable();
        joined_requests.dedup();
        prop_assert_eq!(joined_requests.len() as u64, c.joined_samples);
    }

    /// `cluster_by_session` / `interleave_by_time` round-trip: both preserve
    /// the sample multiset, interleaving is insensitive to prior clustering,
    /// and clustering is idempotent.
    #[test]
    fn cluster_and_interleave_round_trip(drawn in drawn_strategy()) {
        let samples: Vec<Sample> = drawn
            .iter()
            .enumerate()
            .map(|(i, &(session, hour, offset, _))| {
                Sample::builder(
                    SessionId::new(session),
                    RequestId::new(i as u64),
                    Timestamp::from_millis(hour * HOUR + offset),
                )
                .sparse(vec![vec![session]])
                .build()
            })
            .collect();
        let clustered = cluster_by_session(&samples);
        let interleaved = interleave_by_time(&samples);
        let key = |s: &Sample| s.request_id.raw();
        let mut a: Vec<u64> = samples.iter().map(key).collect();
        let mut b: Vec<u64> = clustered.iter().map(key).collect();
        let mut c: Vec<u64> = interleaved.iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        c.sort_unstable();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        prop_assert_eq!(interleave_by_time(&clustered), interleaved);
        prop_assert_eq!(cluster_by_session(&clustered), clustered.clone());
    }
}

// ---------------------------------------------------------------------------
// Fault and edge tests.
// ---------------------------------------------------------------------------

fn feature(request: u64, session: u64, ts: u64) -> LogRecord {
    LogRecord::Feature(FeatureLog {
        request_id: RequestId::new(request),
        session_id: SessionId::new(session),
        timestamp: Timestamp::from_millis(ts),
        dense: vec![ts as f32],
        sparse: vec![vec![session]],
    })
}

fn event(request: u64, session: u64, ts: u64) -> LogRecord {
    LogRecord::Event(EventLog {
        request_id: RequestId::new(request),
        session_id: SessionId::new(session),
        timestamp: Timestamp::from_millis(ts),
        label: 1.0,
    })
}

/// Duplicate request ids and orphaned feature logs drain cleanly: one join
/// per request id, everything else counted.
#[test]
fn duplicates_and_orphans_drain_cleanly() {
    let mut stream =
        EtlStream::new(EtlStreamConfig::new(TableLayout::ClusteredBySession).with_window_ms(5_000));
    stream.push(feature(1, 10, 1_000));
    stream.push(feature(1, 10, 1_000)); // duplicate feature, same ts
    stream.push(event(1, 10, 1_500));
    stream.push(event(1, 10, 1_500)); // duplicate event after join
    stream.push(feature(2, 10, 2_000)); // orphaned: no event ever
    stream.push(feature(3, 11, 2_500));
    stream.push(event(3, 11, 3_000));
    stream.finish();
    let c = stream.report().counters;
    assert_eq!(c.joined_samples, 2);
    assert_eq!(c.duplicates, 2);
    assert_eq!(c.orphaned_features, 1);
    assert_eq!(c.orphaned_events, 0);
    assert_eq!(
        c.records,
        2 * c.joined_samples + c.late_drops + c.duplicates + c.orphaned_features
    );
    let sealed = stream.drain_sealed();
    assert_eq!(sealed.len(), 1);
    assert_eq!(sealed[0].partition.samples.len(), 2);
}

/// Hours with no samples produce no partitions — exactly like the batch
/// partitioner — and hour gaps do not stall sealing.
#[test]
fn empty_hours_are_skipped() {
    let records = vec![
        feature(1, 1, 100),
        event(1, 1, 600),
        // Hours 1 and 2 are empty; hour 3 has one pair.
        feature(2, 2, 3 * HOUR + 100),
        event(2, 2, 3 * HOUR + 600),
    ];
    let expected = batch_reference(&records, TableLayout::TimeOrdered);
    assert_eq!(expected.len(), 2);

    let mut stream =
        EtlStream::new(EtlStreamConfig::new(TableLayout::TimeOrdered).with_window_ms(5_000));
    for record in &records {
        stream.push(record.clone());
    }
    stream.finish();
    let sealed: Vec<TablePartition> = stream
        .drain_sealed()
        .into_iter()
        .map(|s| s.partition)
        .collect();
    assert_eq!(sealed, expected);
    assert_eq!(sealed[0].hour, 0);
    assert_eq!(sealed[1].hour, 3);
}

/// A size-watermark seal in one hour does not disturb other hours, and the
/// re-opened hour's remainder still seals on `finish`.
#[test]
fn size_seal_reopens_hour_without_losing_rows() {
    let mut stream = EtlStream::new(
        EtlStreamConfig::new(TableLayout::ClusteredBySession)
            .with_window_ms(5_000)
            .with_size_watermark(3),
    );
    for request in 0..8u64 {
        stream.push(feature(request, request % 2, 1_000 + request * 10));
        stream.push(event(request, request % 2, 1_500 + request * 10));
    }
    stream.finish();
    let sealed = stream.drain_sealed();
    let total: usize = sealed.iter().map(|s| s.partition.samples.len()).sum();
    assert_eq!(total, 8);
    assert!(sealed.iter().all(|s| s.partition.hour == 0));
    assert_eq!(
        sealed
            .iter()
            .filter(|s| s.reason == SealReason::SizeWatermark)
            .count(),
        2
    );
    // Every row is still unique.
    let mut requests: Vec<u64> = sealed
        .iter()
        .flat_map(|s| s.partition.samples.iter())
        .map(|sample| sample.request_id.raw())
        .collect();
    requests.sort_unstable();
    requests.dedup();
    assert_eq!(requests.len(), 8);
}

/// `DppHandle::flush_partition` barriers racing in-flight ETL seals: every
/// pump is chased by a blocking flush while trainers consume concurrently,
/// and everything drains on `finish` with the counters adding up.
#[test]
fn flush_partition_races_in_flight_seals_and_drains() {
    let generator =
        DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny).with_seed(5));
    let (records, _) = generator.generate_logs();
    let schema = generator.schema().clone();
    let store = fresh_store();

    let config = DppConfig::new(ReaderConfig::new(
        64,
        DataLoaderConfig::from_schema(&schema),
    ))
    .with_policy(ShardPolicy::SessionAffine)
    .with_shards(2)
    .with_fill_workers(2)
    .with_compute_workers(2)
    .with_trainers(2)
    .with_pipeline_factory(|| PreprocessPipeline::standard(1 << 20, 64));
    let mut handle = DppService::start(config, Arc::clone(&store), schema.clone());
    let consumers: Vec<_> = handle
        .take_trainers()
        .into_iter()
        .map(|trainer| {
            std::thread::spawn(move || {
                let mut samples = 0u64;
                while let Some(item) = trainer.recv() {
                    samples += item.batch.batch_size as u64;
                }
                samples
            })
        })
        .collect();

    let tail = LogTail::new(
        records,
        &TailConfig::default().with_jitter_ms(1_000).with_seed(3),
    );
    let mut service = EtlService::new(
        tail,
        EtlStreamConfig::new(TableLayout::ClusteredBySession).with_window_ms(5_000),
        Arc::clone(&store),
        schema.clone(),
        "t",
    );
    let mut clock = ManualClock::new();
    let mut flushes = 0usize;
    let mut just_landed: Vec<StoredPartition> = Vec::new();
    let mut ingest_and_flush = |landed: &mut Vec<StoredPartition>,
                                handle: &mut recd_dpp::DppHandle| {
        for stored in landed.drain(..) {
            handle.ingest_partition(&stored);
            // The barrier races whatever the seal just submitted; it
            // must always resolve.
            assert!(handle.flush_partition(), "flush must not wedge");
            flushes += 1;
        }
    };
    while !service.tail_drained() {
        service.pump(
            clock.advance(15 * 60 * 1_000),
            &mut |stored: &StoredPartition, _: &TablePartition| just_landed.push(stored.clone()),
        );
        ingest_and_flush(&mut just_landed, &mut handle);
    }
    let output = service.finish(&mut |stored: &StoredPartition, _: &TablePartition| {
        just_landed.push(stored.clone())
    });
    ingest_and_flush(&mut just_landed, &mut handle);
    assert!(flushes > 0, "at least one flush must race a seal");
    assert!(handle.flush_partition(), "post-drain flush must resolve");
    let report = handle.finish().expect("clean run").report;
    let consumed: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();

    let c = output.report.etl.counters;
    assert_eq!(c.late_drops, 0);
    assert_eq!(c.sealed_rows, c.joined_samples);
    assert_eq!(report.partitions_ingested, output.report.landed_partitions);
    assert_eq!(report.samples as u64, c.joined_samples);
    assert_eq!(consumed, c.joined_samples);
    let delivered: u64 = report.trainers.iter().map(|t| t.delivered_samples).sum();
    assert_eq!(delivered, c.joined_samples);
    assert!(report.trainers.iter().all(|t| t.dropped_batches == 0));
}

/// Tentpole: crash-restarting the ETL pump mid-stream (mid-hour, rows still
/// buffered in open sessions) and resuming from the serialized checkpoint
/// lands exactly what an uninterrupted run lands — same sealed partitions,
/// same landed handles, same report, same blob bytes.
#[test]
fn crash_restart_mid_hour_resumes_byte_identically() {
    let seed = 4242u64;
    for layout in [TableLayout::TimeOrdered, TableLayout::ClusteredBySession] {
        let generator =
            DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny).with_seed(seed));
        let (records, _) = generator.generate_logs();
        let schema = generator.schema().clone();
        let tail_config = TailConfig::default()
            .with_jitter_ms(2_000)
            .with_seed(seed ^ 0x5EED);

        // Uninterrupted reference run.
        let ref_store = fresh_store();
        let (sealed_ref, landed_ref, output_ref) = run_stream(
            records.clone(),
            layout,
            &tail_config,
            10_000,
            777,
            Arc::clone(&ref_store),
            schema.clone(),
        );

        // Crashy run, same cadence: checkpoint after every pump, crash
        // partway through by dropping the service (all in-memory join and
        // clustering state is lost), then resume from the checkpoint bytes
        // over the same (surviving) blob store.
        let store = fresh_store();
        let config = EtlStreamConfig::new(layout).with_window_ms(10_000);
        let tail = LogTail::new(records.clone(), &tail_config);
        let crash_at = tail.end_ms() / 2;
        let mut service = EtlService::new(tail, config, Arc::clone(&store), schema.clone(), "t");
        let mut sealed = Vec::new();
        let mut landed = Vec::new();
        let mut clock = ManualClock::new();
        let mut checkpoint_bytes = service.checkpoint().to_bytes();
        while clock.now_ms() < crash_at && !service.tail_drained() {
            let now = clock.advance(777);
            service.pump(
                now,
                &mut |stored: &StoredPartition, partition: &TablePartition| {
                    landed.push(stored.clone());
                    sealed.push(partition.clone());
                },
            );
            checkpoint_bytes = service.checkpoint().to_bytes();
        }
        assert!(!service.tail_drained(), "crash point must be mid-stream");
        drop(service);

        let checkpoint =
            recd_etl::EtlCheckpoint::from_bytes(&checkpoint_bytes).expect("checkpoint decodes");
        let tail = LogTail::new(records, &tail_config);
        let mut service =
            EtlService::resume_from(tail, config, Arc::clone(&store), schema, "t", checkpoint);
        assert!(
            service.snapshot().buffered_rows > 0,
            "crash must land mid-hour with rows buffered in open sessions"
        );
        while !service.tail_drained() {
            let now = clock.advance(777);
            service.pump(
                now,
                &mut |stored: &StoredPartition, partition: &TablePartition| {
                    landed.push(stored.clone());
                    sealed.push(partition.clone());
                },
            );
        }
        let output = service.finish(
            &mut |stored: &StoredPartition, partition: &TablePartition| {
                landed.push(stored.clone());
                sealed.push(partition.clone());
            },
        );

        assert_eq!(sealed, sealed_ref, "layout {layout:?}");
        assert_eq!(landed, landed_ref, "layout {layout:?}");
        assert_eq!(output.report, output_ref.report, "layout {layout:?}");
        assert_eq!(
            blob_bytes(&store, &landed),
            blob_bytes(&ref_store, &landed_ref),
            "landed DWRF bytes diverged after crash/resume at layout {layout:?}"
        );
    }
}
