//! Downsampling policies (paper §7, "Boosting Dedupe Factors").
//!
//! Production pipelines discard a fraction of training samples to keep
//! datasets at a manageable size. Doing this per *sample* shrinks every
//! session uniformly and therefore shrinks `S`, the samples-per-session
//! statistic that all of RecD's benefits scale with. Downsampling per
//! *session* removes whole sessions instead, keeping `S` (and thus the
//! dedupe factors) intact for the sessions that survive.

use recd_codec::hash_ids;
use recd_data::Sample;
use serde::{Deserialize, Serialize};

/// Which unit the downsampler drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DownsamplePolicy {
    /// Drop individual samples independently (the status quo).
    PerSample,
    /// Drop whole sessions, keeping every sample of surviving sessions
    /// (RecD's proposed policy).
    PerSession,
}

/// Downsamples a slice of samples, keeping roughly `keep_rate` of them.
///
/// The decision is a deterministic hash of `(seed, sample or session id)`,
/// so repeated runs keep the same rows, mirroring how production samplers
/// key off stable identifiers.
pub fn downsample(
    samples: &[Sample],
    policy: DownsamplePolicy,
    keep_rate: f64,
    seed: u64,
) -> Vec<Sample> {
    let keep_rate = keep_rate.clamp(0.0, 1.0);
    let threshold = (keep_rate * u64::MAX as f64) as u64;
    samples
        .iter()
        .filter(|s| {
            let key = match policy {
                DownsamplePolicy::PerSample => s.request_id.raw(),
                DownsamplePolicy::PerSession => s.session_id.raw(),
            };
            hash_ids(&[seed, key]) <= threshold
        })
        .cloned()
        .collect()
}

/// Average samples per session of a slice (0.0 for an empty slice).
pub fn samples_per_session(samples: &[Sample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sessions: Vec<u64> = samples.iter().map(|s| s.session_id.raw()).collect();
    sessions.sort_unstable();
    sessions.dedup();
    samples.len() as f64 / sessions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_data::{RequestId, SessionId, Timestamp};

    fn dataset() -> Vec<Sample> {
        // 200 sessions x 10 samples each.
        let mut out = Vec::new();
        let mut request = 0u64;
        for session in 0..200u64 {
            for i in 0..10u64 {
                out.push(
                    Sample::builder(
                        SessionId::new(session),
                        RequestId::new(request),
                        Timestamp::from_millis(i),
                    )
                    .sparse(vec![vec![session, i]])
                    .build(),
                );
                request += 1;
            }
        }
        out
    }

    #[test]
    fn keep_rate_is_roughly_honoured_by_both_policies() {
        let data = dataset();
        for policy in [DownsamplePolicy::PerSample, DownsamplePolicy::PerSession] {
            let kept = downsample(&data, policy, 0.5, 3);
            let fraction = kept.len() as f64 / data.len() as f64;
            assert!(
                (0.35..0.65).contains(&fraction),
                "{policy:?} kept {fraction}"
            );
        }
    }

    #[test]
    fn per_session_downsampling_preserves_samples_per_session() {
        let data = dataset();
        let original_s = samples_per_session(&data);
        let per_sample = downsample(&data, DownsamplePolicy::PerSample, 0.4, 7);
        let per_session = downsample(&data, DownsamplePolicy::PerSession, 0.4, 7);
        assert!(
            samples_per_session(&per_sample) < original_s * 0.6,
            "per-sample downsampling must shrink S"
        );
        assert!(
            (samples_per_session(&per_session) - original_s).abs() < 1e-9,
            "per-session downsampling must keep S intact"
        );
    }

    #[test]
    fn downsampling_is_deterministic_and_respects_bounds() {
        let data = dataset();
        let a = downsample(&data, DownsamplePolicy::PerSession, 0.3, 11);
        let b = downsample(&data, DownsamplePolicy::PerSession, 0.3, 11);
        assert_eq!(a, b);
        assert!(downsample(&data, DownsamplePolicy::PerSample, 0.0, 1).is_empty());
        assert_eq!(
            downsample(&data, DownsamplePolicy::PerSample, 1.0, 1).len(),
            data.len()
        );
        assert!(downsample(&[], DownsamplePolicy::PerSession, 0.5, 1).is_empty());
        assert_eq!(samples_per_session(&[]), 0.0);
    }
}
