//! Continuous streaming ETL: an incremental join + clustering + sealing
//! state machine ([`EtlStream`]) and the service loop ([`EtlService`]) that
//! tails a Scribe log, lands sealed hourly partitions through the storage
//! writer, and hands each landed partition to a sink (in production wiring,
//! `DppHandle::ingest_partition`).
//!
//! ```text
//! LogTail ──▶ EtlStream ──▶ sealed TablePartition ──▶ TableStore ──▶ sink
//!  (arrival    join on request id (watermark window)    (land as      (recd-dpp
//!   jitter,    + per-session clustering buffers          DWRF files)   ingest)
//!   lateness)  + hour/size sealing
//! ```
//!
//! The batch [`EtlJob`](crate::EtlJob) joins a *finished* log set and lands
//! every hour at once; [`EtlStream`] consumes records one at a time in
//! arrival order, tolerating a bounded amount of out-of-orderness:
//!
//! * **Incremental join.** Feature and event logs pair up on request id the
//!   moment both halves have arrived. Unmatched halves wait in a pending
//!   table bounded by the watermark — never forever.
//! * **Watermark.** `watermark = max_event_time_seen − window_ms`. A record
//!   whose timestamp is older than the watermark is *late*: it is dropped
//!   and counted ([`EtlCounters::late_drops`]), never silently lost.
//!   Pending join halves older than the watermark (plus the seal grace, for
//!   features still awaiting their slightly-later event) are evicted as
//!   *orphaned* — exactly the records the batch join would have reported as
//!   `unmatched_*`. Duplicate detection is watermark-bounded too: a
//!   re-delivered copy of an already-joined record is counted as a
//!   duplicate while its timestamp is inside the window and dropped as late
//!   once the watermark passes it; only a request id re-delivered with a
//!   *fresh, in-window* timestamp after the watermark passed its original
//!   (which the batch join would fold into one row) can join again.
//! * **Rolling clustering buffers.** Joined samples accumulate per hour, per
//!   session. When the watermark passes an hour's end (plus
//!   [`EtlStreamConfig::seal_grace_ms`]) the hour *seals*: its buffers are
//!   laid out exactly like the batch path (`cluster_by_session` or
//!   `interleave_by_time`) and emitted as a [`TablePartition`]. An hour also
//!   seals early when it holds [`EtlStreamConfig::size_watermark`] rows, so
//!   a hot hour cannot buffer unboundedly.
//!
//! For any arrival process that respects the window (no record later than
//! `window_ms`, feature→event delay within `seal_grace_ms`) over a log
//! stream with unique request ids (which production request ids are; with
//! duplicates, this stream keeps the *first* copy where the batch join's
//! hash map keeps the *last*), the sealed partitions are **byte-identical**
//! to the batch `join_logs` →
//! [`HourlyPartitioner`](crate::HourlyPartitioner) → layout output — the
//! deterministic replay tests in `tests/stream.rs` assert this down to the
//! landed DWRF file bytes.

use crate::checkpoint::{EtlCheckpoint, EtlStreamState};
use crate::downsample::DownsamplePolicy;
use crate::partition::TablePartition;
use crate::TableLayout;
use recd_chaos::{ChaosCounters, RetryPolicy};
use recd_codec::hash_ids;
use recd_data::{EventLog, FeatureLog, LogRecord, Sample, Schema, Timestamp};
use recd_scribe::LogTail;
use recd_storage::{StorageError, StorageReport, StoredPartition, TableStore};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of an [`EtlStream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EtlStreamConfig {
    /// Row layout of sealed partitions (matches the batch
    /// [`EtlJob`](crate::EtlJob)).
    pub layout: TableLayout,
    /// Out-of-order tolerance: the watermark trails the maximum observed
    /// record timestamp by this much. Records older than the watermark are
    /// dropped as late. Must cover the tail's jitter + lateness bound for a
    /// lossless stream.
    pub window_ms: u64,
    /// How long past an hour's end (in event time) the hour stays open, and
    /// how long a pending feature outlives its timestamp while waiting for
    /// its event. Must be at least the feature→event logging delay bound.
    pub seal_grace_ms: u64,
    /// Seal an open hour early once it buffers this many rows (bounds
    /// memory under hot hours; re-opened hours seal again, producing
    /// multiple partitions for the same hour bucket).
    pub size_watermark: usize,
    /// Optional pre-join downsampling as `(policy, keep_rate, seed)`. Uses
    /// the exact hash predicate of the batch
    /// [`downsample`](crate::downsample) pass, but applied *before* the
    /// join: a dropped record never enters the pending tables or clustering
    /// buffers, so the stream skips all join/buffer work for it. Because
    /// both log halves of a request carry the same session and request ids,
    /// filtering records pre-join keeps exactly the samples a post-join
    /// batch downsample would keep — the sealed output stays byte-identical
    /// to `EtlJob::with_downsampling` with the same parameters.
    pub downsample: Option<(DownsamplePolicy, f64, u64)>,
}

impl EtlStreamConfig {
    /// Creates a configuration with the given layout and production-flavored
    /// defaults: a 30s out-of-order window, 1s seal grace, and no size
    /// watermark.
    pub fn new(layout: TableLayout) -> Self {
        Self {
            layout,
            window_ms: 30_000,
            seal_grace_ms: 1_000,
            size_watermark: usize::MAX,
            downsample: None,
        }
    }

    /// Sets the out-of-order window.
    #[must_use]
    pub fn with_window_ms(mut self, window_ms: u64) -> Self {
        self.window_ms = window_ms;
        self
    }

    /// Sets the seal grace.
    #[must_use]
    pub fn with_seal_grace_ms(mut self, seal_grace_ms: u64) -> Self {
        self.seal_grace_ms = seal_grace_ms;
        self
    }

    /// Sets the per-hour row count at which an open hour seals early
    /// (minimum 1).
    #[must_use]
    pub fn with_size_watermark(mut self, rows: usize) -> Self {
        self.size_watermark = rows.max(1);
        self
    }

    /// Enables pre-join streaming downsampling with the given policy,
    /// keep-rate, and seed (same parameters as
    /// [`EtlJob::with_downsampling`](crate::EtlJob::with_downsampling)).
    #[must_use]
    pub fn with_downsample(mut self, policy: DownsamplePolicy, keep_rate: f64, seed: u64) -> Self {
        self.downsample = Some((policy, keep_rate, seed));
        self
    }
}

/// Why a partition sealed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SealReason {
    /// The watermark passed the hour's end plus the seal grace.
    HourBoundary,
    /// The open hour hit [`EtlStreamConfig::size_watermark`] rows.
    SizeWatermark,
    /// [`EtlStream::finish`] flushed the remaining open hours.
    Finish,
}

/// One sealed partition, ready to land.
#[derive(Debug, Clone, PartialEq)]
pub struct SealedPartition {
    /// The laid-out partition (its `hour` is the hour bucket).
    pub partition: TablePartition,
    /// Why the seal happened.
    pub reason: SealReason,
    /// The watermark at seal time.
    pub watermark_ms: u64,
}

/// Monotonic counters of one [`EtlStream`]'s lifetime. Every pushed record
/// ends up in exactly one bucket, so after [`EtlStream::finish`]:
/// `records == 2 * joined_samples + late_drops + duplicates +
/// orphaned_features + orphaned_events + downsampled`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EtlCounters {
    /// Records pushed.
    pub records: u64,
    /// Labeled samples produced by the join (each consumed two records).
    pub joined_samples: u64,
    /// Records dropped because they were older than the watermark.
    pub late_drops: u64,
    /// Records dropped because their request id was already pending on the
    /// same side or already joined (first record wins; the joined-id memory
    /// is watermark-bounded like everything else in the stream).
    pub duplicates: u64,
    /// Feature logs evicted (or left at finish) without a matching event.
    pub orphaned_features: u64,
    /// Event logs evicted (or left at finish) without matching features.
    pub orphaned_events: u64,
    /// Records dropped pre-join by [`EtlStreamConfig::downsample`] (two per
    /// dropped sample: the feature and event halves fail the hash predicate
    /// independently but consistently).
    #[serde(default)]
    pub downsampled: u64,
    /// Partitions sealed.
    pub sealed_partitions: u64,
    /// Rows across sealed partitions.
    pub sealed_rows: u64,
    /// Seals triggered by the watermark passing an hour boundary.
    pub hour_seals: u64,
    /// Seals triggered by the size watermark.
    pub size_seals: u64,
    /// Seals triggered by [`EtlStream::finish`].
    pub finish_seals: u64,
}

/// A point-in-time view of an [`EtlStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EtlSnapshot {
    /// Lifetime counters.
    pub counters: EtlCounters,
    /// Current watermark (ms of event time).
    pub watermark_ms: u64,
    /// Feature logs waiting for their event.
    pub pending_features: usize,
    /// Event logs waiting for their features.
    pub pending_events: usize,
    /// Hours currently open.
    pub open_hours: usize,
    /// Session clustering buffers currently open across all hours.
    pub open_sessions: usize,
    /// Joined rows buffered in open hours.
    pub buffered_rows: usize,
}

/// Final accounting of one streaming ETL run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EtlReport {
    /// Row layout produced.
    pub layout: TableLayout,
    /// Lifetime counters.
    pub counters: EtlCounters,
    /// The watermark when the stream finished.
    pub final_watermark_ms: u64,
}

/// Per-session rolling clustering buffer inside one open hour.
#[derive(Debug, Default)]
struct SessionBuf {
    rows: Vec<Sample>,
}

/// One open (not yet sealed) hour bucket.
#[derive(Debug, Default)]
struct OpenHour {
    sessions: HashMap<u64, SessionBuf>,
    rows: usize,
}

impl OpenHour {
    fn insert(&mut self, sample: Sample) {
        self.sessions
            .entry(sample.session_id.raw())
            .or_default()
            .rows
            .push(sample);
        self.rows += 1;
    }
}

/// The incremental join + clustering + sealing state machine. Push records
/// in arrival order; pull sealed partitions with
/// [`EtlStream::drain_sealed`]; call [`EtlStream::finish`] at end of stream
/// to flush everything that remains.
#[derive(Debug)]
pub struct EtlStream {
    config: EtlStreamConfig,
    pending_features: HashMap<u64, FeatureLog>,
    pending_events: HashMap<u64, EventLog>,
    /// Request ids already joined, kept (watermark-bounded) to detect
    /// post-join duplicates.
    joined: HashMap<u64, u64>,
    feature_expiry: BinaryHeap<Reverse<(u64, u64)>>,
    event_expiry: BinaryHeap<Reverse<(u64, u64)>>,
    joined_expiry: BinaryHeap<Reverse<(u64, u64)>>,
    open_hours: BTreeMap<u64, OpenHour>,
    sealed: VecDeque<SealedPartition>,
    buffered_rows: usize,
    max_ts: u64,
    watermark: u64,
    counters: EtlCounters,
}

impl EtlStream {
    /// Creates an empty stream.
    pub fn new(config: EtlStreamConfig) -> Self {
        Self {
            config,
            pending_features: HashMap::new(),
            pending_events: HashMap::new(),
            joined: HashMap::new(),
            feature_expiry: BinaryHeap::new(),
            event_expiry: BinaryHeap::new(),
            joined_expiry: BinaryHeap::new(),
            open_hours: BTreeMap::new(),
            sealed: VecDeque::new(),
            buffered_rows: 0,
            max_ts: 0,
            watermark: 0,
            counters: EtlCounters::default(),
        }
    }

    /// Borrows the configuration.
    pub fn config(&self) -> &EtlStreamConfig {
        &self.config
    }

    /// The current watermark (event-time ms).
    pub fn watermark_ms(&self) -> u64 {
        self.watermark
    }

    /// Pushes one record in arrival order. Joins, evictions, and seals
    /// happen inline; sealed partitions queue up for
    /// [`EtlStream::drain_sealed`].
    pub fn push(&mut self, record: LogRecord) {
        self.counters.records += 1;
        let ts = record.timestamp().as_millis();
        if ts < self.watermark {
            // Later than the out-of-order window tolerates: counted, never
            // joined (its hour may already be sealed).
            self.counters.late_drops += 1;
            return;
        }
        if !self.admits(&record) {
            // Downsampled out before any join work. The record still
            // advances the watermark: a heavily-downsampled stream must
            // evict and seal at the same event-time cadence as an
            // undownsampled one.
            self.counters.downsampled += 1;
            self.advance_watermark(ts);
            return;
        }
        let request = record.request_id().raw();
        match record {
            LogRecord::Feature(feature) => {
                if self.joined.contains_key(&request)
                    || self.pending_features.contains_key(&request)
                {
                    self.counters.duplicates += 1;
                } else if let Some(event) = self.pending_events.remove(&request) {
                    self.join(feature, &event);
                } else {
                    self.feature_expiry.push(Reverse((ts, request)));
                    self.pending_features.insert(request, feature);
                }
            }
            LogRecord::Event(event) => {
                if self.joined.contains_key(&request) || self.pending_events.contains_key(&request)
                {
                    self.counters.duplicates += 1;
                } else if let Some(feature) = self.pending_features.remove(&request) {
                    self.join(feature, &event);
                } else {
                    self.event_expiry.push(Reverse((ts, request)));
                    self.pending_events.insert(request, event);
                }
            }
        }
        self.advance_watermark(ts);
    }

    /// The batch [`downsample`](crate::downsample) hash predicate, applied
    /// to a raw record before the join. `true` means the record survives.
    fn admits(&self, record: &LogRecord) -> bool {
        let Some((policy, keep_rate, seed)) = self.config.downsample else {
            return true;
        };
        let key = match policy {
            DownsamplePolicy::PerSample => record.request_id().raw(),
            DownsamplePolicy::PerSession => record.session_id().raw(),
        };
        let threshold = (keep_rate.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
        hash_ids(&[seed, key]) <= threshold
    }

    /// Advances `max_ts` and the watermark, running evictions and hour
    /// seals when the watermark moves.
    fn advance_watermark(&mut self, ts: u64) {
        if ts > self.max_ts {
            self.max_ts = ts;
            let advanced = ts.saturating_sub(self.config.window_ms);
            if advanced > self.watermark {
                self.watermark = advanced;
                self.evict();
                self.seal_ready_hours();
            }
        }
    }

    /// Takes every partition sealed since the last call, in seal order.
    pub fn drain_sealed(&mut self) -> Vec<SealedPartition> {
        self.sealed.drain(..).collect()
    }

    /// End of stream: every pending join half becomes an orphan and every
    /// open hour seals, in hour order. The stream stays usable (for
    /// counters/snapshots) but holds no more state.
    pub fn finish(&mut self) {
        self.counters.orphaned_features += self.pending_features.len() as u64;
        self.counters.orphaned_events += self.pending_events.len() as u64;
        self.pending_features.clear();
        self.pending_events.clear();
        self.feature_expiry.clear();
        self.event_expiry.clear();
        while let Some((&hour, _)) = self.open_hours.iter().next() {
            let open = self.open_hours.remove(&hour).expect("open hour present");
            self.seal(hour, open, SealReason::Finish);
        }
    }

    /// A point-in-time view of join state, buffers, and counters.
    pub fn snapshot(&self) -> EtlSnapshot {
        EtlSnapshot {
            counters: self.counters,
            watermark_ms: self.watermark,
            pending_features: self.pending_features.len(),
            pending_events: self.pending_events.len(),
            open_hours: self.open_hours.len(),
            open_sessions: self.open_hours.values().map(|h| h.sessions.len()).sum(),
            buffered_rows: self.buffered_rows,
        }
    }

    /// The final accounting (meaningful after [`EtlStream::finish`]).
    pub fn report(&self) -> EtlReport {
        EtlReport {
            layout: self.config.layout,
            counters: self.counters,
            final_watermark_ms: self.watermark,
        }
    }

    /// Captures the stream's complete state as a serializable
    /// [`EtlStreamState`]. Non-destructive; pair with
    /// [`EtlStream::restore`] to rebuild an equivalent stream — the restored
    /// copy behaves identically record-for-record, which the checkpoint
    /// tests assert.
    pub fn checkpoint(&self) -> EtlStreamState {
        fn sorted_pairs<V: Clone>(map: &HashMap<u64, V>) -> Vec<(u64, V)> {
            let mut pairs: Vec<_> = map.iter().map(|(&k, v)| (k, v.clone())).collect();
            pairs.sort_by_key(|(k, _)| *k);
            pairs
        }
        fn sorted_heap(heap: &BinaryHeap<Reverse<(u64, u64)>>) -> Vec<(u64, u64)> {
            let mut entries: Vec<_> = heap.iter().map(|&Reverse(pair)| pair).collect();
            entries.sort_unstable();
            entries
        }
        let mut joined: Vec<_> = self.joined.iter().map(|(&k, &v)| (k, v)).collect();
        joined.sort_unstable();
        let open_hours = self
            .open_hours
            .iter()
            .map(|(&hour, open)| {
                let mut sessions: Vec<_> = open
                    .sessions
                    .iter()
                    .map(|(&session, buf)| (session, buf.rows.clone()))
                    .collect();
                sessions.sort_by_key(|(session, _)| *session);
                (hour, sessions)
            })
            .collect();
        EtlStreamState {
            pending_features: sorted_pairs(&self.pending_features),
            pending_events: sorted_pairs(&self.pending_events),
            joined,
            feature_expiry: sorted_heap(&self.feature_expiry),
            event_expiry: sorted_heap(&self.event_expiry),
            joined_expiry: sorted_heap(&self.joined_expiry),
            open_hours,
            sealed: self.sealed.iter().cloned().collect(),
            buffered_rows: self.buffered_rows as u64,
            max_ts: self.max_ts,
            watermark: self.watermark,
            counters: self.counters,
        }
    }

    /// Rebuilds a stream from a checkpointed [`EtlStreamState`]. The restored
    /// stream is behaviorally identical to the one that produced the state:
    /// same joins, same evictions, same seals, same counters.
    pub fn restore(config: EtlStreamConfig, state: EtlStreamState) -> Self {
        let mut open_hours: BTreeMap<u64, OpenHour> = BTreeMap::new();
        for (hour, sessions) in state.open_hours {
            let mut open = OpenHour::default();
            for (session, rows) in sessions {
                open.rows += rows.len();
                open.sessions.insert(session, SessionBuf { rows });
            }
            open_hours.insert(hour, open);
        }
        Self {
            config,
            pending_features: state.pending_features.into_iter().collect(),
            pending_events: state.pending_events.into_iter().collect(),
            joined: state.joined.into_iter().collect(),
            feature_expiry: state.feature_expiry.into_iter().map(Reverse).collect(),
            event_expiry: state.event_expiry.into_iter().map(Reverse).collect(),
            joined_expiry: state.joined_expiry.into_iter().map(Reverse).collect(),
            open_hours,
            sealed: state.sealed.into(),
            buffered_rows: state.buffered_rows as usize,
            max_ts: state.max_ts,
            watermark: state.watermark,
            counters: state.counters,
        }
    }

    fn join(&mut self, feature: FeatureLog, event: &EventLog) {
        let request = feature.request_id.raw();
        let ts = feature.timestamp.as_millis();
        self.joined.insert(request, ts);
        self.joined_expiry.push(Reverse((ts, request)));
        self.counters.joined_samples += 1;
        // The sample keeps the feature log's timestamp (impression time),
        // exactly like the batch join.
        let sample = Sample::builder(feature.session_id, feature.request_id, feature.timestamp)
            .label(event.label)
            .dense(feature.dense)
            .sparse(feature.sparse)
            .build();
        let hour = sample.timestamp.hour_bucket();
        let open = self.open_hours.entry(hour).or_default();
        open.insert(sample);
        self.buffered_rows += 1;
        if open.rows >= self.config.size_watermark {
            let open = self.open_hours.remove(&hour).expect("open hour present");
            self.seal(hour, open, SealReason::SizeWatermark);
        }
    }

    /// Evicts join halves and duplicate-detection entries the watermark has
    /// passed. Features (and joined markers) get the seal grace on top of
    /// their timestamp: their event half may legitimately carry a slightly
    /// later timestamp that is still on time.
    fn evict(&mut self) {
        let watermark = self.watermark;
        let grace = self.config.seal_grace_ms;
        while let Some(&Reverse((ts, request))) = self.feature_expiry.peek() {
            if ts.saturating_add(grace) >= watermark {
                break;
            }
            self.feature_expiry.pop();
            if self.pending_features.remove(&request).is_some() {
                self.counters.orphaned_features += 1;
            }
        }
        while let Some(&Reverse((ts, request))) = self.event_expiry.peek() {
            if ts >= watermark {
                break;
            }
            self.event_expiry.pop();
            if self.pending_events.remove(&request).is_some() {
                self.counters.orphaned_events += 1;
            }
        }
        while let Some(&Reverse((ts, request))) = self.joined_expiry.peek() {
            if ts.saturating_add(grace) >= watermark {
                break;
            }
            self.joined_expiry.pop();
            self.joined.remove(&request);
        }
    }

    /// Seals every open hour the watermark has fully passed (hour end plus
    /// seal grace), in hour order.
    fn seal_ready_hours(&mut self) {
        while let Some((&hour, _)) = self.open_hours.iter().next() {
            let hour_end = (hour + 1) * Timestamp::MILLIS_PER_HOUR;
            if self.watermark < hour_end.saturating_add(self.config.seal_grace_ms) {
                break;
            }
            let open = self.open_hours.remove(&hour).expect("open hour present");
            self.seal(hour, open, SealReason::HourBoundary);
        }
    }

    /// Lays out one hour's buffers and queues the sealed partition. Final
    /// ordering is delegated to the *same* layout functions the batch path
    /// uses ([`cluster_by_session`](crate::cluster_by_session) /
    /// [`interleave_by_time`](crate::interleave_by_time)), so the two paths
    /// cannot drift apart; the per-session buffers feed them a
    /// session-grouped collection order.
    fn seal(&mut self, hour: u64, open: OpenHour, reason: SealReason) {
        let mut collected = Vec::with_capacity(open.rows);
        for buf in open.sessions.into_values() {
            collected.extend(buf.rows);
        }
        let samples = match self.config.layout {
            TableLayout::ClusteredBySession => crate::cluster_by_session(&collected),
            TableLayout::TimeOrdered => crate::interleave_by_time(&collected),
        };
        self.buffered_rows -= samples.len();
        self.counters.sealed_partitions += 1;
        self.counters.sealed_rows += samples.len() as u64;
        match reason {
            SealReason::HourBoundary => self.counters.hour_seals += 1,
            SealReason::SizeWatermark => self.counters.size_seals += 1,
            SealReason::Finish => self.counters.finish_seals += 1,
        }
        self.sealed.push_back(SealedPartition {
            partition: TablePartition { hour, samples },
            reason,
            watermark_ms: self.watermark,
        });
    }
}

/// A manually advanced clock for driving an [`EtlService`] deterministically:
/// the test (or CLI pacing loop), not a wall clock, decides how far the
/// simulated tail has progressed.
#[derive(Debug, Clone, Copy, Default)]
pub struct ManualClock {
    now_ms: u64,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Advances the clock and returns the new time.
    pub fn advance(&mut self, ms: u64) -> u64 {
        self.now_ms += ms;
        self.now_ms
    }
}

/// Live gauges of a running [`EtlService`], shareable with a monitoring
/// thread (the ETL analog of the DPP service's snapshot source).
#[derive(Debug, Default)]
pub struct EtlGauges {
    /// Tail events consumed.
    pub records_tailed: AtomicU64,
    /// Samples joined.
    pub joined_samples: AtomicU64,
    /// Late records dropped.
    pub late_drops: AtomicU64,
    /// Duplicate records dropped.
    pub duplicates: AtomicU64,
    /// Orphaned join halves evicted.
    pub orphaned: AtomicU64,
    /// Hours currently open.
    pub open_hours: AtomicU64,
    /// Session clustering buffers currently open.
    pub open_sessions: AtomicU64,
    /// Rows buffered in open hours.
    pub buffered_rows: AtomicU64,
    /// Partitions sealed.
    pub sealed_partitions: AtomicU64,
    /// Partitions landed into the table store.
    pub landed_partitions: AtomicU64,
    /// Current watermark (event-time ms).
    pub watermark_ms: AtomicU64,
    /// How far the sealed frontier trails the tail clock (ms).
    pub tail_lag_ms: AtomicU64,
    /// Tail events not yet arrived.
    pub tail_remaining: AtomicU64,
}

impl recd_obs::Collector for EtlGauges {
    fn collect(&self, out: &mut recd_obs::MetricsBuf) {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64;
        out.counter(
            "recd_etl_records_tailed_total",
            "Tail events consumed from the log stream.",
            &[],
            load(&self.records_tailed),
        );
        out.counter(
            "recd_etl_joined_samples_total",
            "Samples produced by the streaming join.",
            &[],
            load(&self.joined_samples),
        );
        out.counter(
            "recd_etl_late_drops_total",
            "Late records dropped past the watermark.",
            &[],
            load(&self.late_drops),
        );
        out.counter(
            "recd_etl_duplicates_total",
            "Duplicate records dropped by the join.",
            &[],
            load(&self.duplicates),
        );
        out.counter(
            "recd_etl_orphaned_total",
            "Orphaned join halves evicted unmatched.",
            &[],
            load(&self.orphaned),
        );
        out.gauge(
            "recd_etl_open_hours",
            "Hourly partitions currently accumulating rows.",
            &[],
            load(&self.open_hours),
        );
        out.gauge(
            "recd_etl_open_sessions",
            "Session clustering buffers currently open.",
            &[],
            load(&self.open_sessions),
        );
        out.gauge(
            "recd_etl_buffered_rows",
            "Rows buffered in open hours, not yet sealed.",
            &[],
            load(&self.buffered_rows),
        );
        out.counter(
            "recd_etl_sealed_partitions_total",
            "Hourly partitions sealed by the watermark.",
            &[],
            load(&self.sealed_partitions),
        );
        out.counter(
            "recd_etl_landed_partitions_total",
            "Sealed partitions landed into the table store.",
            &[],
            load(&self.landed_partitions),
        );
        out.gauge(
            "recd_etl_watermark_ms",
            "Current event-time watermark in milliseconds.",
            &[],
            load(&self.watermark_ms),
        );
        out.gauge(
            "recd_etl_tail_lag_ms",
            "How far the sealed frontier trails the tail clock (ms).",
            &[],
            load(&self.tail_lag_ms),
        );
        out.gauge(
            "recd_etl_tail_remaining",
            "Tail events not yet arrived from the log stream.",
            &[],
            load(&self.tail_remaining),
        );
    }
}

/// Final accounting of one [`EtlService`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EtlServiceReport {
    /// Stream-level join/seal accounting.
    pub etl: EtlReport,
    /// Storage accounting across every landed partition.
    pub storage: StorageReport,
    /// Partitions landed.
    pub landed_partitions: u64,
    /// Peak observed tail lag (pump clock minus watermark, ms).
    pub peak_tail_lag_ms: u64,
}

/// Everything a finished [`EtlService`] run produced.
#[derive(Debug)]
pub struct EtlServiceOutput {
    /// Every landed partition, in land order.
    pub landed: Vec<StoredPartition>,
    /// Final accounting.
    pub report: EtlServiceReport,
}

/// The continuous ETL service loop: tails a [`LogTail`], pushes arrivals
/// through an [`EtlStream`], lands every sealed partition through the
/// [`TableStore`] writer, and hands each landed partition to the caller's
/// sink — which, in the continuous pipeline, is
/// `DppHandle::ingest_partition`.
#[derive(Debug)]
pub struct EtlService {
    tail: LogTail,
    stream: EtlStream,
    store: Arc<TableStore>,
    schema: Schema,
    table: String,
    hour_seal_counts: HashMap<u64, u64>,
    landed: Vec<StoredPartition>,
    storage: StorageReport,
    gauges: Arc<EtlGauges>,
    peak_tail_lag_ms: u64,
    /// When set, partitions land through the fallible
    /// [`TableStore::try_land_partition`] path wrapped in this retry policy,
    /// so injected transient storage faults degrade to a short backoff.
    chaos: Option<(RetryPolicy, Arc<ChaosCounters>)>,
}

impl EtlService {
    /// Creates a service tailing `tail` into `table` of the given store.
    pub fn new(
        tail: LogTail,
        config: EtlStreamConfig,
        store: Arc<TableStore>,
        schema: Schema,
        table: impl Into<String>,
    ) -> Self {
        Self {
            tail,
            stream: EtlStream::new(config),
            store,
            schema,
            table: table.into(),
            hour_seal_counts: HashMap::new(),
            landed: Vec::new(),
            storage: StorageReport::default(),
            gauges: Arc::new(EtlGauges::default()),
            peak_tail_lag_ms: 0,
            chaos: None,
        }
    }

    /// Rebuilds a mid-stream service from an [`EtlCheckpoint`]. `tail` must
    /// be built from the *same* records and [`TailConfig`] as the original
    /// run (the tail is a pure function of both); it is rewound to the
    /// checkpoint's cursor, so pumping resumes exactly where the
    /// checkpointed service stopped. Because sealed-partition landing is
    /// idempotent (deterministic bytes at deterministic paths), the resumed
    /// run's landed output is byte-identical to an uninterrupted run.
    ///
    /// [`TailConfig`]: recd_scribe::TailConfig
    pub fn resume_from(
        mut tail: LogTail,
        config: EtlStreamConfig,
        store: Arc<TableStore>,
        schema: Schema,
        table: impl Into<String>,
        checkpoint: EtlCheckpoint,
    ) -> Self {
        tail.rewind_to(checkpoint.tail_cursor);
        Self {
            tail,
            stream: EtlStream::restore(config, checkpoint.stream),
            store,
            schema,
            table: table.into(),
            hour_seal_counts: checkpoint.hour_seal_counts.into_iter().collect(),
            landed: checkpoint.landed,
            storage: checkpoint.storage,
            gauges: Arc::new(EtlGauges::default()),
            peak_tail_lag_ms: checkpoint.peak_tail_lag_ms,
            chaos: None,
        }
    }

    /// Routes partition landing through the fallible storage path with the
    /// given bounded-retry policy, recording retries and backoff into
    /// `counters`. Without this, landing uses the infallible path and never
    /// consumes injected fault budgets.
    #[must_use]
    pub fn with_chaos_retry(mut self, policy: RetryPolicy, counters: Arc<ChaosCounters>) -> Self {
        self.chaos = Some((policy, counters));
        self
    }

    /// Captures the service's complete state — tail cursor, stream state,
    /// and landing record — at a pump boundary. The sealed queue is drained
    /// by every pump, so the snapshot's in-flight window is empty and a
    /// [`EtlService::resume_from`] replay converges to the uninterrupted
    /// run's exact output.
    pub fn checkpoint(&self) -> EtlCheckpoint {
        let mut hour_seal_counts: Vec<_> = self
            .hour_seal_counts
            .iter()
            .map(|(&h, &c)| (h, c))
            .collect();
        hour_seal_counts.sort_unstable();
        EtlCheckpoint {
            tail_cursor: self.tail.cursor(),
            stream: self.stream.checkpoint(),
            hour_seal_counts,
            landed: self.landed.clone(),
            storage: self.storage.clone(),
            peak_tail_lag_ms: self.peak_tail_lag_ms,
        }
    }

    /// Shared live gauges — hand a clone to a monitoring thread.
    pub fn gauges(&self) -> Arc<EtlGauges> {
        Arc::clone(&self.gauges)
    }

    /// Returns true once every tail event has been consumed.
    pub fn tail_drained(&self) -> bool {
        self.tail.is_drained()
    }

    /// A point-in-time view of the underlying stream.
    pub fn snapshot(&self) -> EtlSnapshot {
        self.stream.snapshot()
    }

    /// Consumes every tail event that has arrived by `now_ms`, lands any
    /// partitions that sealed, and hands each landed partition to `sink`.
    /// Returns the number of partitions landed by this pump.
    pub fn pump<F>(&mut self, now_ms: u64, sink: &mut F) -> usize
    where
        F: FnMut(&StoredPartition, &TablePartition),
    {
        let Self { tail, stream, .. } = self;
        for event in tail.poll(now_ms) {
            stream.push(event.record.clone());
        }
        let landed = self.land_sealed(sink);
        self.publish_gauges(now_ms);
        landed
    }

    /// Drains the rest of the tail regardless of clock, finishes the
    /// stream (flushing every open hour), lands the final seals, and
    /// returns the run's output.
    pub fn finish<F>(mut self, sink: &mut F) -> EtlServiceOutput
    where
        F: FnMut(&StoredPartition, &TablePartition),
    {
        let end = self.tail.end_ms();
        {
            let Self { tail, stream, .. } = &mut self;
            while let Some(event) = tail.next_event() {
                stream.push(event.record.clone());
            }
        }
        self.stream.finish();
        self.land_sealed(sink);
        self.publish_gauges(end);
        let report = EtlServiceReport {
            etl: self.stream.report(),
            storage: self.storage.clone(),
            landed_partitions: self.landed.len() as u64,
            peak_tail_lag_ms: self.peak_tail_lag_ms,
        };
        EtlServiceOutput {
            landed: self.landed,
            report,
        }
    }

    /// Convenience driver: pumps the clock forward in `step_ms` increments
    /// until the tail drains, then finishes. Equivalent to an external loop
    /// over [`EtlService::pump`] + [`EtlService::finish`].
    pub fn run<F>(mut self, mut clock: ManualClock, step_ms: u64, sink: &mut F) -> EtlServiceOutput
    where
        F: FnMut(&StoredPartition, &TablePartition),
    {
        let step = step_ms.max(1);
        while !self.tail.is_drained() {
            let now = clock.advance(step);
            self.pump(now, sink);
        }
        self.finish(sink)
    }

    /// Lands every partition the stream sealed since the last call. A
    /// re-sealed hour (size watermark) lands under a `-r<N>` table suffix so
    /// its files never collide with the hour's first seal.
    fn land_sealed<F>(&mut self, sink: &mut F) -> usize
    where
        F: FnMut(&StoredPartition, &TablePartition),
    {
        let mut landed = 0usize;
        for sealed in self.stream.drain_sealed() {
            let hour = sealed.partition.hour;
            let seal_idx = self.hour_seal_counts.entry(hour).or_insert(0);
            let table = if *seal_idx == 0 {
                self.table.clone()
            } else {
                format!("{}-r{}", self.table, seal_idx)
            };
            *seal_idx += 1;
            let samples = &sealed.partition.samples;
            let (stored, report) = match &self.chaos {
                Some((policy, counters)) => {
                    // Serialize once; every backoff attempt re-tries only
                    // the puts, sharing the prepared blobs instead of
                    // re-encoding the partition.
                    let prepared =
                        self.store
                            .prepare_partition(&self.schema, &table, hour, samples);
                    policy
                        .run(Some(counters), StorageError::is_transient, || {
                            self.store.try_store_prepared(&prepared)
                        })
                        .unwrap_or_else(|_| {
                            // Retry budget exhausted: fall through to the
                            // infallible landing path (fault budgets never
                            // apply to `put`) so a sealed partition cannot be
                            // lost. The exhaustion is already counted.
                            // Landing is idempotent either way —
                            // deterministic bytes at deterministic paths.
                            self.store.store_prepared(&prepared)
                        })
                }
                None => self
                    .store
                    .land_partition(&self.schema, &table, hour, samples),
            };
            self.storage.absorb(&report);
            sink(&stored, &sealed.partition);
            self.landed.push(stored);
            landed += 1;
        }
        landed
    }

    fn publish_gauges(&mut self, now_ms: u64) {
        let snap = self.stream.snapshot();
        let gauges = &self.gauges;
        gauges
            .records_tailed
            .store(snap.counters.records, Ordering::Relaxed);
        gauges
            .joined_samples
            .store(snap.counters.joined_samples, Ordering::Relaxed);
        gauges
            .late_drops
            .store(snap.counters.late_drops, Ordering::Relaxed);
        gauges
            .duplicates
            .store(snap.counters.duplicates, Ordering::Relaxed);
        gauges.orphaned.store(
            snap.counters.orphaned_features + snap.counters.orphaned_events,
            Ordering::Relaxed,
        );
        gauges
            .open_hours
            .store(snap.open_hours as u64, Ordering::Relaxed);
        gauges
            .open_sessions
            .store(snap.open_sessions as u64, Ordering::Relaxed);
        gauges
            .buffered_rows
            .store(snap.buffered_rows as u64, Ordering::Relaxed);
        gauges
            .sealed_partitions
            .store(snap.counters.sealed_partitions, Ordering::Relaxed);
        gauges
            .landed_partitions
            .store(self.landed.len() as u64, Ordering::Relaxed);
        gauges
            .watermark_ms
            .store(snap.watermark_ms, Ordering::Relaxed);
        let lag = if snap.counters.records > 0 {
            now_ms.saturating_sub(snap.watermark_ms)
        } else {
            0
        };
        gauges.tail_lag_ms.store(lag, Ordering::Relaxed);
        gauges
            .tail_remaining
            .store(self.tail.remaining() as u64, Ordering::Relaxed);
        self.peak_tail_lag_ms = self.peak_tail_lag_ms.max(lag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_data::{RequestId, SessionId};

    fn feature(request: u64, session: u64, ts: u64) -> LogRecord {
        LogRecord::Feature(FeatureLog {
            request_id: RequestId::new(request),
            session_id: SessionId::new(session),
            timestamp: Timestamp::from_millis(ts),
            dense: vec![ts as f32],
            sparse: vec![vec![request]],
        })
    }

    fn event(request: u64, session: u64, ts: u64, label: f32) -> LogRecord {
        LogRecord::Event(EventLog {
            request_id: RequestId::new(request),
            session_id: SessionId::new(session),
            timestamp: Timestamp::from_millis(ts),
            label,
        })
    }

    fn config() -> EtlStreamConfig {
        EtlStreamConfig::new(TableLayout::ClusteredBySession)
            .with_window_ms(5_000)
            .with_seal_grace_ms(1_000)
    }

    #[test]
    fn out_of_order_pair_joins_within_the_window() {
        let mut stream = EtlStream::new(config());
        // Event arrives before its feature — still joins.
        stream.push(event(1, 10, 1_500, 1.0));
        stream.push(feature(1, 10, 1_000));
        stream.finish();
        let sealed = stream.drain_sealed();
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].partition.samples.len(), 1);
        assert_eq!(sealed[0].partition.samples[0].label, 1.0);
        assert_eq!(sealed[0].reason, SealReason::Finish);
        let c = stream.report().counters;
        assert_eq!(c.joined_samples, 1);
        assert_eq!(c.records, 2);
    }

    #[test]
    fn watermark_seals_an_hour_and_drops_late_records() {
        const HOUR: u64 = Timestamp::MILLIS_PER_HOUR;
        let mut stream = EtlStream::new(config());
        stream.push(feature(1, 10, 100));
        stream.push(event(1, 10, 600, 1.0));
        // A record far in the future pushes the watermark past hour 0's end
        // plus grace: hour 0 seals.
        stream.push(feature(2, 11, HOUR + 10_000));
        let sealed = stream.drain_sealed();
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].partition.hour, 0);
        assert_eq!(sealed[0].reason, SealReason::HourBoundary);
        // Anything older than the watermark is now late.
        stream.push(event(3, 10, 200, 0.0));
        assert_eq!(stream.report().counters.late_drops, 1);
        stream.finish();
        // The pending hour-1 feature never saw its event.
        assert_eq!(stream.report().counters.orphaned_features, 1);
    }

    #[test]
    fn size_watermark_seals_early_and_the_hour_reopens() {
        let mut stream = EtlStream::new(config().with_size_watermark(2));
        for request in 0..5u64 {
            stream.push(feature(request, request % 2, 1_000 + request));
            stream.push(event(request, request % 2, 1_500 + request, 0.0));
        }
        stream.finish();
        let sealed = stream.drain_sealed();
        // 5 rows at size watermark 2: two size seals plus the finish seal.
        assert_eq!(sealed.len(), 3);
        assert_eq!(
            sealed
                .iter()
                .map(|s| s.partition.samples.len())
                .sum::<usize>(),
            5
        );
        assert!(sealed[..2]
            .iter()
            .all(|s| s.reason == SealReason::SizeWatermark));
        assert_eq!(stream.report().counters.size_seals, 2);
        assert_eq!(stream.report().counters.finish_seals, 1);
    }

    #[test]
    fn duplicates_are_counted_and_never_double_joined() {
        let mut stream = EtlStream::new(config());
        stream.push(feature(1, 10, 1_000));
        stream.push(feature(1, 10, 1_100)); // duplicate feature
        stream.push(event(1, 10, 1_500, 1.0));
        stream.push(event(1, 10, 1_600, 0.0)); // duplicate after join
        stream.finish();
        let c = stream.report().counters;
        assert_eq!(c.joined_samples, 1);
        assert_eq!(c.duplicates, 2);
        let sealed = stream.drain_sealed();
        assert_eq!(sealed[0].partition.samples.len(), 1);
        assert_eq!(sealed[0].partition.samples[0].label, 1.0);
    }

    #[test]
    fn every_record_is_accounted_for() {
        let mut stream = EtlStream::new(config());
        stream.push(feature(1, 1, 1_000));
        stream.push(event(1, 1, 1_500, 1.0));
        stream.push(feature(2, 1, 2_000)); // orphaned feature
        stream.push(event(3, 2, 2_500, 0.0)); // orphaned event
        stream.push(feature(1, 1, 1_000)); // duplicate
        stream.push(feature(9, 3, 100_000)); // advances watermark far ahead
        stream.push(event(4, 2, 10, 0.0)); // late
        stream.finish();
        let c = stream.report().counters;
        assert_eq!(
            c.records,
            2 * c.joined_samples
                + c.late_drops
                + c.duplicates
                + c.orphaned_features
                + c.orphaned_events
                + c.downsampled
        );
    }

    #[test]
    fn streaming_downsample_matches_the_batch_predicate_byte_for_byte() {
        // 40 sessions x 4 samples, in-window arrival order.
        let mut records = Vec::new();
        let mut request = 0u64;
        for session in 0..40u64 {
            for i in 0..4u64 {
                let ts = 1_000 + request * 3 + i;
                records.push(feature(request, session, ts));
                records.push(event(request, session, ts + 1, (i % 2) as f32));
                request += 1;
            }
        }
        for policy in [DownsamplePolicy::PerSample, DownsamplePolicy::PerSession] {
            let (keep_rate, seed) = (0.5, 9);
            let mut stream = EtlStream::new(
                EtlStreamConfig::new(TableLayout::ClusteredBySession)
                    .with_window_ms(1_000_000)
                    .with_downsample(policy, keep_rate, seed),
            );
            for record in &records {
                stream.push(record.clone());
            }
            stream.finish();
            let streamed: Vec<Sample> = stream
                .drain_sealed()
                .into_iter()
                .flat_map(|s| s.partition.samples)
                .collect();

            // Batch path: full join, then the post-join downsample pass,
            // then the same layout.
            let joined = crate::join_logs(&records).samples;
            let kept = crate::downsample(&joined, policy, keep_rate, seed);
            let batch = crate::cluster_by_session(&kept);
            assert_eq!(streamed, batch, "{policy:?} diverged from batch");

            let c = stream.report().counters;
            assert!(c.downsampled > 0, "{policy:?} dropped nothing");
            assert_eq!(c.downsampled, records.len() as u64 - 2 * c.joined_samples);
            assert_eq!(
                c.records,
                2 * c.joined_samples
                    + c.late_drops
                    + c.duplicates
                    + c.orphaned_features
                    + c.orphaned_events
                    + c.downsampled
            );
        }
    }
}
