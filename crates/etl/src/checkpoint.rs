//! Exactly-once checkpoint/resume for the continuous ETL tier.
//!
//! A checkpoint captures everything an [`EtlService`](crate::EtlService)
//! needs to restart mid-stream and converge to the *same* output a crash-free
//! run would have produced:
//!
//! * the [`LogTail`](recd_scribe::LogTail) cursor — which arrival events have
//!   already been consumed;
//! * the full [`EtlStream`](crate::EtlStream) join/clustering state
//!   ([`EtlStreamState`]): pending join halves, the watermark-bounded
//!   joined-id memory, expiry heaps, open per-session hour buffers, and
//!   lifetime counters;
//! * the service's landing record: per-hour seal counts (re-seal `-r<N>`
//!   table suffixes), every landed [`StoredPartition`], and the accumulated
//!   [`StorageReport`].
//!
//! Checkpoints are taken at pump boundaries, where the sealed-partition queue
//! is empty (everything sealed has been landed), so the "work in flight"
//! window is exactly zero: a restart re-tails from the cursor and replays the
//! pure `push` state machine, whose output is a function of consumed-event
//! order alone. That makes the resumed run's landed bytes — and hence the
//! trainer-batch union downstream — byte-identical to an uninterrupted run,
//! which `crates/pipeline/tests/chaos.rs` asserts end to end.
//!
//! The in-tree `serde` shim is derive-only (no real serialization), so the
//! wire format is a hand-rolled flat little-endian codec over
//! [`recd_codec::ByteWriter`] / [`recd_codec::ByteReader`], with a magic +
//! version header and a trailing-bytes check so corrupt or foreign blobs fail
//! loudly instead of resuming from garbage.

use crate::partition::TablePartition;
use crate::stream::{EtlCounters, SealReason, SealedPartition};
use recd_codec::{ByteReader, ByteWriter, CodecError};
use recd_data::{EventLog, FeatureLog, RequestId, Sample, SessionId, Timestamp};
use recd_storage::{StorageReport, StoredPartition};
use std::fmt;

/// Magic bytes prefixing every serialized checkpoint (`"RCKP"`).
const MAGIC: u32 = u32::from_le_bytes(*b"RCKP");
/// Current checkpoint wire-format version. v2 added the `downsampled`
/// counter to the counter block.
const VERSION: u16 = 2;

/// Why a checkpoint blob could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob does not start with the checkpoint magic.
    BadMagic {
        /// The four bytes actually found.
        found: u32,
    },
    /// The blob's wire-format version is not supported.
    UnsupportedVersion {
        /// The version actually found.
        found: u16,
    },
    /// The blob decoded but left unconsumed bytes — a framing bug or a
    /// truncated rewrite.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
    /// A field failed to decode.
    Codec(CodecError),
    /// A decoded enum discriminant was out of range.
    InvalidDiscriminant {
        /// Which enum was being decoded.
        context: &'static str,
        /// The value actually found.
        found: u8,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic { found } => {
                write!(f, "not a checkpoint blob (magic {found:#010x})")
            }
            CheckpointError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (supported: {VERSION})"
                )
            }
            CheckpointError::TrailingBytes { remaining } => {
                write!(f, "checkpoint decoded with {remaining} trailing bytes")
            }
            CheckpointError::Codec(err) => write!(f, "checkpoint field decode failed: {err}"),
            CheckpointError::InvalidDiscriminant { context, found } => {
                write!(f, "invalid {context} discriminant {found}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CodecError> for CheckpointError {
    fn from(err: CodecError) -> Self {
        CheckpointError::Codec(err)
    }
}

/// One open hour's per-session clustering buffers: `(session, rows)` pairs
/// in session order, each session keeping its rows in arrival order.
pub(crate) type OpenHourSessions = Vec<(u64, Vec<Sample>)>;

/// A faithful, serializable snapshot of an
/// [`EtlStream`](crate::EtlStream)'s private state. Produced by
/// [`EtlStream::checkpoint`](crate::EtlStream::checkpoint) and consumed by
/// [`EtlStream::restore`](crate::EtlStream::restore); maps are stored as
/// key-sorted vectors and heaps as sorted vectors so the encoding is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EtlStreamState {
    pub(crate) pending_features: Vec<(u64, FeatureLog)>,
    pub(crate) pending_events: Vec<(u64, EventLog)>,
    pub(crate) joined: Vec<(u64, u64)>,
    pub(crate) feature_expiry: Vec<(u64, u64)>,
    pub(crate) event_expiry: Vec<(u64, u64)>,
    pub(crate) joined_expiry: Vec<(u64, u64)>,
    /// `(hour, sessions)` in hour order; each session keeps its rows in
    /// arrival order, matching the live per-session clustering buffers.
    pub(crate) open_hours: Vec<(u64, OpenHourSessions)>,
    pub(crate) sealed: Vec<SealedPartition>,
    pub(crate) buffered_rows: u64,
    pub(crate) max_ts: u64,
    pub(crate) watermark: u64,
    pub(crate) counters: EtlCounters,
}

/// Everything an [`EtlService`](crate::EtlService) needs to resume a
/// mid-stream run: the tail cursor, the stream state, and the landing
/// record. Serialize with [`EtlCheckpoint::to_bytes`]; rebuild the service
/// with [`EtlService::resume_from`](crate::EtlService::resume_from).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EtlCheckpoint {
    /// How many tail arrival events had been consumed at checkpoint time
    /// (feed to [`LogTail::rewind_to`](recd_scribe::LogTail::rewind_to)).
    pub tail_cursor: usize,
    /// The join/clustering state machine's full state.
    pub stream: EtlStreamState,
    /// `(hour, seals)` pairs in hour order — drives re-seal `-r<N>` table
    /// suffixes after resume.
    pub hour_seal_counts: Vec<(u64, u64)>,
    /// Every partition landed before the checkpoint, in land order.
    pub landed: Vec<StoredPartition>,
    /// Storage accounting accumulated across the landed partitions.
    pub storage: StorageReport,
    /// Peak observed tail lag (ms) before the checkpoint.
    pub peak_tail_lag_ms: u64,
}

impl EtlCheckpoint {
    /// Serializes the checkpoint into a self-describing byte blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(MAGIC);
        w.put_u64(u64::from(VERSION));
        w.put_usize(self.tail_cursor);
        put_stream_state(&mut w, &self.stream);
        w.put_usize(self.hour_seal_counts.len());
        for &(hour, seals) in &self.hour_seal_counts {
            w.put_u64(hour);
            w.put_u64(seals);
        }
        w.put_usize(self.landed.len());
        for stored in &self.landed {
            put_stored_partition(&mut w, stored);
        }
        put_storage_report(&mut w, &self.storage);
        w.put_u64(self.peak_tail_lag_ms);
        w.into_bytes()
    }

    /// Decodes a checkpoint produced by [`EtlCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] when the blob is not a checkpoint, is a
    /// different version, is truncated, or carries trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_u32()?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic { found: magic });
        }
        let version = r.get_u64()?;
        if version != u64::from(VERSION) {
            return Err(CheckpointError::UnsupportedVersion {
                found: version.min(u64::from(u16::MAX)) as u16,
            });
        }
        let tail_cursor = r.get_usize()?;
        let stream = get_stream_state(&mut r)?;
        let mut hour_seal_counts = Vec::with_capacity(r.remaining().min(64));
        for _ in 0..r.get_usize()? {
            hour_seal_counts.push((r.get_u64()?, r.get_u64()?));
        }
        let landed_len = r.get_usize()?;
        let mut landed = Vec::with_capacity(landed_len.min(1 + r.remaining() / 8));
        for _ in 0..landed_len {
            landed.push(get_stored_partition(&mut r)?);
        }
        let storage = get_storage_report(&mut r)?;
        let peak_tail_lag_ms = r.get_u64()?;
        if !r.is_exhausted() {
            return Err(CheckpointError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(Self {
            tail_cursor,
            stream,
            hour_seal_counts,
            landed,
            storage,
            peak_tail_lag_ms,
        })
    }
}

fn put_pair_list(w: &mut ByteWriter, pairs: &[(u64, u64)]) {
    w.put_usize(pairs.len());
    for &(a, b) in pairs {
        w.put_u64(a);
        w.put_u64(b);
    }
}

fn get_pair_list(r: &mut ByteReader<'_>) -> Result<Vec<(u64, u64)>, CheckpointError> {
    let len = r.get_usize()?;
    let mut pairs = Vec::with_capacity(len.min(1 + r.remaining() / 16));
    for _ in 0..len {
        pairs.push((r.get_u64()?, r.get_u64()?));
    }
    Ok(pairs)
}

fn put_sparse(w: &mut ByteWriter, sparse: &[Vec<u64>]) {
    w.put_usize(sparse.len());
    for ids in sparse {
        w.put_u64_slice(ids);
    }
}

fn get_sparse(r: &mut ByteReader<'_>) -> Result<Vec<Vec<u64>>, CheckpointError> {
    let len = r.get_usize()?;
    let mut sparse = Vec::with_capacity(len.min(1 + r.remaining() / 8));
    for _ in 0..len {
        sparse.push(r.get_u64_slice()?);
    }
    Ok(sparse)
}

fn put_feature(w: &mut ByteWriter, feature: &FeatureLog) {
    w.put_u64(feature.request_id.raw());
    w.put_u64(feature.session_id.raw());
    w.put_u64(feature.timestamp.as_millis());
    w.put_f32_slice(&feature.dense);
    put_sparse(w, &feature.sparse);
}

fn get_feature(r: &mut ByteReader<'_>) -> Result<FeatureLog, CheckpointError> {
    Ok(FeatureLog {
        request_id: RequestId::new(r.get_u64()?),
        session_id: SessionId::new(r.get_u64()?),
        timestamp: Timestamp::from_millis(r.get_u64()?),
        dense: r.get_f32_slice()?,
        sparse: get_sparse(r)?,
    })
}

fn put_event(w: &mut ByteWriter, event: &EventLog) {
    w.put_u64(event.request_id.raw());
    w.put_u64(event.session_id.raw());
    w.put_u64(event.timestamp.as_millis());
    w.put_f32(event.label);
}

fn get_event(r: &mut ByteReader<'_>) -> Result<EventLog, CheckpointError> {
    Ok(EventLog {
        request_id: RequestId::new(r.get_u64()?),
        session_id: SessionId::new(r.get_u64()?),
        timestamp: Timestamp::from_millis(r.get_u64()?),
        label: r.get_f32()?,
    })
}

fn put_sample(w: &mut ByteWriter, sample: &Sample) {
    w.put_u64(sample.session_id.raw());
    w.put_u64(sample.request_id.raw());
    w.put_u64(sample.timestamp.as_millis());
    w.put_f32(sample.label);
    w.put_f32_slice(&sample.dense);
    put_sparse(w, &sample.sparse);
}

fn get_sample(r: &mut ByteReader<'_>) -> Result<Sample, CheckpointError> {
    let session_id = SessionId::new(r.get_u64()?);
    let request_id = RequestId::new(r.get_u64()?);
    let timestamp = Timestamp::from_millis(r.get_u64()?);
    let label = r.get_f32()?;
    let dense = r.get_f32_slice()?;
    let sparse = get_sparse(r)?;
    Ok(Sample::builder(session_id, request_id, timestamp)
        .label(label)
        .dense(dense)
        .sparse(sparse)
        .build())
}

fn put_counters(w: &mut ByteWriter, c: &EtlCounters) {
    for value in [
        c.records,
        c.joined_samples,
        c.late_drops,
        c.duplicates,
        c.orphaned_features,
        c.orphaned_events,
        c.downsampled,
        c.sealed_partitions,
        c.sealed_rows,
        c.hour_seals,
        c.size_seals,
        c.finish_seals,
    ] {
        w.put_u64(value);
    }
}

fn get_counters(r: &mut ByteReader<'_>) -> Result<EtlCounters, CheckpointError> {
    Ok(EtlCounters {
        records: r.get_u64()?,
        joined_samples: r.get_u64()?,
        late_drops: r.get_u64()?,
        duplicates: r.get_u64()?,
        orphaned_features: r.get_u64()?,
        orphaned_events: r.get_u64()?,
        downsampled: r.get_u64()?,
        sealed_partitions: r.get_u64()?,
        sealed_rows: r.get_u64()?,
        hour_seals: r.get_u64()?,
        size_seals: r.get_u64()?,
        finish_seals: r.get_u64()?,
    })
}

fn put_seal_reason(w: &mut ByteWriter, reason: SealReason) {
    w.put_u8(match reason {
        SealReason::HourBoundary => 0,
        SealReason::SizeWatermark => 1,
        SealReason::Finish => 2,
    });
}

fn get_seal_reason(r: &mut ByteReader<'_>) -> Result<SealReason, CheckpointError> {
    match r.get_u8()? {
        0 => Ok(SealReason::HourBoundary),
        1 => Ok(SealReason::SizeWatermark),
        2 => Ok(SealReason::Finish),
        found => Err(CheckpointError::InvalidDiscriminant {
            context: "SealReason",
            found,
        }),
    }
}

fn put_sealed_partition(w: &mut ByteWriter, sealed: &SealedPartition) {
    w.put_u64(sealed.partition.hour);
    w.put_usize(sealed.partition.samples.len());
    for sample in &sealed.partition.samples {
        put_sample(w, sample);
    }
    put_seal_reason(w, sealed.reason);
    w.put_u64(sealed.watermark_ms);
}

fn get_sealed_partition(r: &mut ByteReader<'_>) -> Result<SealedPartition, CheckpointError> {
    let hour = r.get_u64()?;
    let len = r.get_usize()?;
    let mut samples = Vec::with_capacity(len.min(1 + r.remaining() / 32));
    for _ in 0..len {
        samples.push(get_sample(r)?);
    }
    let reason = get_seal_reason(r)?;
    let watermark_ms = r.get_u64()?;
    Ok(SealedPartition {
        partition: TablePartition { hour, samples },
        reason,
        watermark_ms,
    })
}

fn put_stream_state(w: &mut ByteWriter, state: &EtlStreamState) {
    w.put_usize(state.pending_features.len());
    for (request, feature) in &state.pending_features {
        w.put_u64(*request);
        put_feature(w, feature);
    }
    w.put_usize(state.pending_events.len());
    for (request, event) in &state.pending_events {
        w.put_u64(*request);
        put_event(w, event);
    }
    put_pair_list(w, &state.joined);
    put_pair_list(w, &state.feature_expiry);
    put_pair_list(w, &state.event_expiry);
    put_pair_list(w, &state.joined_expiry);
    w.put_usize(state.open_hours.len());
    for (hour, sessions) in &state.open_hours {
        w.put_u64(*hour);
        w.put_usize(sessions.len());
        for (session, rows) in sessions {
            w.put_u64(*session);
            w.put_usize(rows.len());
            for sample in rows {
                put_sample(w, sample);
            }
        }
    }
    w.put_usize(state.sealed.len());
    for sealed in &state.sealed {
        put_sealed_partition(w, sealed);
    }
    w.put_u64(state.buffered_rows);
    w.put_u64(state.max_ts);
    w.put_u64(state.watermark);
    put_counters(w, &state.counters);
}

fn get_stream_state(r: &mut ByteReader<'_>) -> Result<EtlStreamState, CheckpointError> {
    let mut pending_features = Vec::new();
    for _ in 0..r.get_usize()? {
        pending_features.push((r.get_u64()?, get_feature(r)?));
    }
    let mut pending_events = Vec::new();
    for _ in 0..r.get_usize()? {
        pending_events.push((r.get_u64()?, get_event(r)?));
    }
    let joined = get_pair_list(r)?;
    let feature_expiry = get_pair_list(r)?;
    let event_expiry = get_pair_list(r)?;
    let joined_expiry = get_pair_list(r)?;
    let mut open_hours = Vec::new();
    for _ in 0..r.get_usize()? {
        let hour = r.get_u64()?;
        let mut sessions = Vec::new();
        for _ in 0..r.get_usize()? {
            let session = r.get_u64()?;
            let row_count = r.get_usize()?;
            let mut rows = Vec::with_capacity(row_count.min(1 + r.remaining() / 32));
            for _ in 0..row_count {
                rows.push(get_sample(r)?);
            }
            sessions.push((session, rows));
        }
        open_hours.push((hour, sessions));
    }
    let mut sealed = Vec::new();
    for _ in 0..r.get_usize()? {
        sealed.push(get_sealed_partition(r)?);
    }
    Ok(EtlStreamState {
        pending_features,
        pending_events,
        joined,
        feature_expiry,
        event_expiry,
        joined_expiry,
        open_hours,
        sealed,
        buffered_rows: r.get_u64()?,
        max_ts: r.get_u64()?,
        watermark: r.get_u64()?,
        counters: get_counters(r)?,
    })
}

fn put_stored_partition(w: &mut ByteWriter, stored: &StoredPartition) {
    w.put_str(&stored.table);
    w.put_u64(stored.hour);
    w.put_usize(stored.files.len());
    for file in &stored.files {
        w.put_str(file);
    }
}

fn get_stored_partition(r: &mut ByteReader<'_>) -> Result<StoredPartition, CheckpointError> {
    let table = r.get_str()?;
    let hour = r.get_u64()?;
    let file_count = r.get_usize()?;
    let mut files = Vec::with_capacity(file_count.min(1 + r.remaining() / 8));
    for _ in 0..file_count {
        files.push(r.get_str()?);
    }
    Ok(StoredPartition { table, hour, files })
}

fn put_storage_report(w: &mut ByteWriter, report: &StorageReport) {
    for value in [
        report.files,
        report.stripes,
        report.rows,
        report.raw_bytes,
        report.encoded_bytes,
        report.stored_bytes,
    ] {
        w.put_usize(value);
    }
}

fn get_storage_report(r: &mut ByteReader<'_>) -> Result<StorageReport, CheckpointError> {
    Ok(StorageReport {
        files: r.get_usize()?,
        stripes: r.get_usize()?,
        rows: r.get_usize()?,
        raw_bytes: r.get_usize()?,
        encoded_bytes: r.get_usize()?,
        stored_bytes: r.get_usize()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_data::LogRecord;

    fn sample(session: u64, request: u64, ts: u64) -> Sample {
        Sample::builder(
            SessionId::new(session),
            RequestId::new(request),
            Timestamp::from_millis(ts),
        )
        .label(0.5)
        .dense(vec![1.0, -2.5, 0.125])
        .sparse(vec![vec![request, session], vec![], vec![42]])
        .build()
    }

    fn populated_checkpoint() -> EtlCheckpoint {
        EtlCheckpoint {
            tail_cursor: 17,
            stream: EtlStreamState {
                pending_features: vec![(
                    3,
                    FeatureLog {
                        request_id: RequestId::new(3),
                        session_id: SessionId::new(30),
                        timestamp: Timestamp::from_millis(5_000),
                        dense: vec![0.25],
                        sparse: vec![vec![9, 9, 9]],
                    },
                )],
                pending_events: vec![(
                    4,
                    EventLog {
                        request_id: RequestId::new(4),
                        session_id: SessionId::new(40),
                        timestamp: Timestamp::from_millis(6_000),
                        label: 1.0,
                    },
                )],
                joined: vec![(1, 1_000), (2, 2_000)],
                feature_expiry: vec![(5_000, 3)],
                event_expiry: vec![(6_000, 4)],
                joined_expiry: vec![(1_000, 1), (2_000, 2)],
                open_hours: vec![(
                    0,
                    vec![
                        (30, vec![sample(30, 1, 1_000)]),
                        (40, vec![sample(40, 2, 2_000)]),
                    ],
                )],
                sealed: vec![SealedPartition {
                    partition: TablePartition {
                        hour: 7,
                        samples: vec![sample(1, 9, 7 * Timestamp::MILLIS_PER_HOUR)],
                    },
                    reason: SealReason::SizeWatermark,
                    watermark_ms: 123,
                }],
                buffered_rows: 2,
                max_ts: 8_000,
                watermark: 3_000,
                counters: EtlCounters {
                    records: 10,
                    joined_samples: 2,
                    late_drops: 1,
                    duplicates: 1,
                    ..EtlCounters::default()
                },
            },
            hour_seal_counts: vec![(0, 1), (7, 2)],
            landed: vec![StoredPartition {
                table: "tiny".into(),
                hour: 0,
                files: vec!["tiny/hour=0/file-00000.dwrf".into()],
            }],
            storage: StorageReport {
                files: 1,
                stripes: 2,
                rows: 3,
                raw_bytes: 400,
                encoded_bytes: 300,
                stored_bytes: 200,
            },
            peak_tail_lag_ms: 9_001,
        }
    }

    #[test]
    fn checkpoint_round_trips_byte_exactly() {
        let checkpoint = populated_checkpoint();
        let bytes = checkpoint.to_bytes();
        let back = EtlCheckpoint::from_bytes(&bytes).expect("decode");
        assert_eq!(back, checkpoint);
        // Re-encoding the decoded checkpoint must reproduce the same bytes.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let checkpoint = EtlCheckpoint::default();
        let back = EtlCheckpoint::from_bytes(&checkpoint.to_bytes()).expect("decode");
        assert_eq!(back, checkpoint);
    }

    #[test]
    fn bad_magic_version_and_truncation_fail_loudly() {
        let bytes = populated_checkpoint().to_bytes();

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(matches!(
            EtlCheckpoint::from_bytes(&wrong_magic),
            Err(CheckpointError::BadMagic { .. })
        ));

        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert!(matches!(
            EtlCheckpoint::from_bytes(&wrong_version),
            Err(CheckpointError::UnsupportedVersion { found: 99 })
        ));

        assert!(matches!(
            EtlCheckpoint::from_bytes(&bytes[..bytes.len() - 3]),
            Err(CheckpointError::Codec(CodecError::UnexpectedEof { .. }))
        ));

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            EtlCheckpoint::from_bytes(&trailing),
            Err(CheckpointError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn stream_state_round_trips_through_a_live_stream() {
        use crate::stream::{EtlStream, EtlStreamConfig};
        use crate::TableLayout;

        let config = EtlStreamConfig::new(TableLayout::ClusteredBySession)
            .with_window_ms(5_000)
            .with_seal_grace_ms(1_000);
        let mut stream = EtlStream::new(config);
        for request in 0..20u64 {
            stream.push(LogRecord::Feature(FeatureLog {
                request_id: RequestId::new(request),
                session_id: SessionId::new(request % 3),
                timestamp: Timestamp::from_millis(1_000 + request * 700),
                dense: vec![request as f32],
                sparse: vec![vec![request]],
            }));
            if request % 2 == 0 {
                stream.push(LogRecord::Event(EventLog {
                    request_id: RequestId::new(request),
                    session_id: SessionId::new(request % 3),
                    timestamp: Timestamp::from_millis(1_200 + request * 700),
                    label: 1.0,
                }));
            }
        }

        let state = stream.checkpoint();
        let mut restored = EtlStream::restore(config, state.clone());
        assert_eq!(restored.checkpoint(), state);
        assert_eq!(restored.snapshot(), stream.snapshot());

        // Both copies must behave identically from here on.
        let tail: Vec<LogRecord> = (20..30u64)
            .map(|request| {
                LogRecord::Event(EventLog {
                    request_id: RequestId::new(request),
                    session_id: SessionId::new(request % 3),
                    timestamp: Timestamp::from_millis(1_200 + request * 700),
                    label: 0.0,
                })
            })
            .collect();
        for record in &tail {
            stream.push(record.clone());
            restored.push(record.clone());
        }
        stream.finish();
        restored.finish();
        assert_eq!(restored.report(), stream.report());
        assert_eq!(restored.drain_sealed(), stream.drain_sealed());
    }
}
