//! Joining raw feature logs and event logs into labeled samples.

use recd_data::{LogRecord, RequestId, Sample};
use std::collections::HashMap;

/// The result of joining a log stream.
#[derive(Debug, Clone, Default)]
pub struct JoinOutput {
    /// Labeled samples (one per feature/event pair that matched on request
    /// id).
    pub samples: Vec<Sample>,
    /// Feature logs that never saw a matching event (no impression outcome
    /// was logged — dropped by the join, as in production).
    pub unmatched_features: usize,
    /// Event logs that never saw matching features.
    pub unmatched_events: usize,
}

/// Joins feature logs and event logs on [`RequestId`], producing one labeled
/// sample per matched pair. The sample keeps the *feature log's* timestamp
/// (the impression time), matching how the paper's pipeline orders rows.
pub fn join_logs(records: &[LogRecord]) -> JoinOutput {
    let mut features: HashMap<RequestId, usize> = HashMap::new();
    let mut events: HashMap<RequestId, usize> = HashMap::new();
    for (idx, record) in records.iter().enumerate() {
        match record {
            LogRecord::Feature(f) => {
                features.insert(f.request_id, idx);
            }
            LogRecord::Event(e) => {
                events.insert(e.request_id, idx);
            }
        }
    }

    let mut samples = Vec::new();
    let mut matched = 0usize;
    for (request_id, &feature_idx) in &features {
        let Some(&event_idx) = events.get(request_id) else {
            continue;
        };
        let (LogRecord::Feature(f), LogRecord::Event(e)) =
            (&records[feature_idx], &records[event_idx])
        else {
            continue;
        };
        matched += 1;
        samples.push(
            Sample::builder(f.session_id, f.request_id, f.timestamp)
                .label(e.label)
                .dense(f.dense.clone())
                .sparse(f.sparse.clone())
                .build(),
        );
    }
    // Deterministic output order regardless of hash-map iteration order.
    samples.sort_by_key(|s| (s.timestamp, s.request_id));

    JoinOutput {
        unmatched_features: features.len() - matched,
        unmatched_events: events.len() - matched,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_data::{EventLog, FeatureLog, SessionId, Timestamp};

    fn feature(request: u64, session: u64, ts: u64) -> LogRecord {
        LogRecord::Feature(FeatureLog {
            request_id: RequestId::new(request),
            session_id: SessionId::new(session),
            timestamp: Timestamp::from_millis(ts),
            dense: vec![ts as f32],
            sparse: vec![vec![request]],
        })
    }

    fn event(request: u64, session: u64, ts: u64, label: f32) -> LogRecord {
        LogRecord::Event(EventLog {
            request_id: RequestId::new(request),
            session_id: SessionId::new(session),
            timestamp: Timestamp::from_millis(ts),
            label,
        })
    }

    #[test]
    fn matched_pairs_become_labeled_samples() {
        let records = vec![
            feature(1, 10, 100),
            event(1, 10, 150, 1.0),
            feature(2, 10, 200),
            event(2, 10, 260, 0.0),
        ];
        let out = join_logs(&records);
        assert_eq!(out.samples.len(), 2);
        assert_eq!(out.unmatched_features, 0);
        assert_eq!(out.unmatched_events, 0);
        assert_eq!(out.samples[0].request_id, RequestId::new(1));
        assert_eq!(out.samples[0].label, 1.0);
        assert_eq!(out.samples[0].timestamp.as_millis(), 100);
        assert_eq!(out.samples[1].label, 0.0);
    }

    #[test]
    fn unmatched_records_are_counted_and_dropped() {
        let records = vec![
            feature(1, 10, 100),
            feature(2, 10, 200),
            event(2, 10, 260, 1.0),
            event(3, 11, 300, 1.0),
        ];
        let out = join_logs(&records);
        assert_eq!(out.samples.len(), 1);
        assert_eq!(out.unmatched_features, 1);
        assert_eq!(out.unmatched_events, 1);
    }

    #[test]
    fn output_is_sorted_by_impression_time() {
        let records = vec![
            feature(5, 1, 500),
            event(5, 1, 501, 0.0),
            feature(3, 1, 300),
            event(3, 1, 301, 0.0),
            feature(4, 2, 400),
            event(4, 2, 401, 1.0),
        ];
        let out = join_logs(&records);
        let times: Vec<u64> = out
            .samples
            .iter()
            .map(|s| s.timestamp.as_millis())
            .collect();
        assert_eq!(times, vec![300, 400, 500]);
    }

    #[test]
    fn empty_input() {
        let out = join_logs(&[]);
        assert!(out.samples.is_empty());
        assert_eq!(out.unmatched_features, 0);
        assert_eq!(out.unmatched_events, 0);
    }
}
