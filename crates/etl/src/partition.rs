//! Hourly table partitioning and row layout (time-ordered vs clustered by
//! session).

use recd_data::{Sample, SampleBatch};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One hourly table partition, as landed into the warehouse.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TablePartition {
    /// Hour bucket (timestamp / 1h) the partition covers.
    pub hour: u64,
    /// Rows of the partition, in landed order.
    pub samples: Vec<Sample>,
}

impl TablePartition {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns true if the partition holds no rows.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The partition's rows as a [`SampleBatch`], preserving order.
    pub fn to_batch(&self) -> SampleBatch {
        SampleBatch::new(self.samples.clone())
    }
}

/// Splits samples into hourly table partitions.
#[derive(Debug, Clone, Copy, Default)]
pub struct HourlyPartitioner;

impl HourlyPartitioner {
    /// Lands samples into hourly partitions, keyed by
    /// [`Timestamp::hour_bucket`](recd_data::Timestamp::hour_bucket).
    /// Partitions are returned in hour order; rows keep their input order
    /// within each partition.
    pub fn partition(samples: Vec<Sample>) -> Vec<TablePartition> {
        let mut by_hour: BTreeMap<u64, Vec<Sample>> = BTreeMap::new();
        for sample in samples {
            by_hour
                .entry(sample.timestamp.hour_bucket())
                .or_default()
                .push(sample);
        }
        by_hour
            .into_iter()
            .map(|(hour, samples)| TablePartition { hour, samples })
            .collect()
    }
}

/// Baseline row layout: order rows by inference time (sessions interleave).
pub fn interleave_by_time(samples: &[Sample]) -> Vec<Sample> {
    let mut out = samples.to_vec();
    out.sort_by_key(|s| (s.timestamp, s.request_id));
    out
}

/// RecD O2 row layout: `CLUSTER BY session_id SORT BY timestamp` — all of a
/// session's rows become adjacent, ordered by time within the session.
/// Sessions themselves are ordered by their first timestamp so the partition
/// remains roughly chronological.
pub fn cluster_by_session(samples: &[Sample]) -> Vec<Sample> {
    let mut first_seen: BTreeMap<u64, u64> = BTreeMap::new();
    for s in samples {
        let entry = first_seen
            .entry(s.session_id.raw())
            .or_insert(s.timestamp.as_millis());
        *entry = (*entry).min(s.timestamp.as_millis());
    }
    let mut out = samples.to_vec();
    out.sort_by_key(|s| {
        (
            first_seen[&s.session_id.raw()],
            s.session_id,
            s.timestamp,
            s.request_id,
        )
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_data::{RequestId, SessionId, Timestamp};

    fn sample(session: u64, request: u64, ts: u64) -> Sample {
        Sample::builder(
            SessionId::new(session),
            RequestId::new(request),
            Timestamp::from_millis(ts),
        )
        .sparse(vec![vec![session]])
        .build()
    }

    #[test]
    fn partitioner_groups_by_hour_and_sorts_partitions() {
        const HOUR: u64 = Timestamp::MILLIS_PER_HOUR;
        let samples = vec![
            sample(1, 0, HOUR + 5),
            sample(1, 1, 10),
            sample(2, 2, 2 * HOUR + 1),
            sample(2, 3, 20),
        ];
        let partitions = HourlyPartitioner::partition(samples);
        assert_eq!(partitions.len(), 3);
        assert_eq!(partitions[0].hour, 0);
        assert_eq!(partitions[0].len(), 2);
        assert_eq!(partitions[1].hour, 1);
        assert_eq!(partitions[2].hour, 2);
        assert!(!partitions[0].is_empty());
        assert_eq!(partitions[0].to_batch().len(), 2);
    }

    #[test]
    fn clustering_makes_sessions_adjacent_and_preserves_the_multiset() {
        // Interleaved input: sessions 1 and 2 alternate.
        let samples = vec![
            sample(1, 0, 100),
            sample(2, 1, 150),
            sample(1, 2, 200),
            sample(2, 3, 250),
            sample(1, 4, 300),
        ];
        let clustered = cluster_by_session(&samples);
        assert_eq!(clustered.len(), samples.len());
        // Session 1 first (earliest first timestamp), all rows adjacent and
        // time-ordered, then session 2.
        let sessions: Vec<u64> = clustered.iter().map(|s| s.session_id.raw()).collect();
        assert_eq!(sessions, vec![1, 1, 1, 2, 2]);
        let times: Vec<u64> = clustered
            .iter()
            .filter(|s| s.session_id.raw() == 1)
            .map(|s| s.timestamp.as_millis())
            .collect();
        assert_eq!(times, vec![100, 200, 300]);

        // Multiset of request ids unchanged.
        let mut before: Vec<u64> = samples.iter().map(|s| s.request_id.raw()).collect();
        let mut after: Vec<u64> = clustered.iter().map(|s| s.request_id.raw()).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn interleave_orders_strictly_by_time() {
        let samples = vec![sample(1, 0, 300), sample(2, 1, 100), sample(1, 2, 200)];
        let ordered = interleave_by_time(&samples);
        let times: Vec<u64> = ordered.iter().map(|s| s.timestamp.as_millis()).collect();
        assert_eq!(times, vec![100, 200, 300]);
    }

    #[test]
    fn empty_inputs() {
        assert!(HourlyPartitioner::partition(Vec::new()).is_empty());
        assert!(cluster_by_session(&[]).is_empty());
        assert!(interleave_by_time(&[]).is_empty());
    }
}
