//! # recd-etl
//!
//! The ETL substrate: turns raw inference-time logs into labeled, hourly,
//! optionally session-clustered table partitions (paper §2.1, §4.1).
//!
//! * [`join_logs`] joins feature logs and event logs on request id to produce
//!   labeled samples — the streaming/batch engine's job.
//! * [`HourlyPartitioner`] lands samples into hourly table partitions.
//! * [`cluster_by_session`] implements RecD's O2: `CLUSTER BY session_id
//!   SORT BY timestamp`, which makes a session's samples adjacent within the
//!   partition so that file stripes compress better and feature conversion
//!   can deduplicate them.
//! * [`downsample`] implements the §7 discussion: per-sample downsampling
//!   (the status quo) versus per-session downsampling, which preserves the
//!   samples-per-session statistic that every RecD benefit scales with.
//! * [`stream`] is the *continuous* counterpart of [`EtlJob`]: an
//!   incremental join with a bounded out-of-order window and
//!   watermark-driven eviction, rolling per-session clustering buffers that
//!   seal hourly [`TablePartition`]s, and a service loop ([`EtlService`])
//!   that tails a Scribe log, lands sealed partitions through the storage
//!   writer, and hands them to a running `recd-dpp` service.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod downsample;
pub mod join;
pub mod partition;
pub mod stream;

pub use checkpoint::{CheckpointError, EtlCheckpoint, EtlStreamState};
pub use downsample::{downsample, DownsamplePolicy};
pub use join::{join_logs, JoinOutput};
pub use partition::{cluster_by_session, interleave_by_time, HourlyPartitioner, TablePartition};
pub use stream::{
    EtlCounters, EtlGauges, EtlReport, EtlService, EtlServiceOutput, EtlServiceReport, EtlSnapshot,
    EtlStream, EtlStreamConfig, ManualClock, SealReason, SealedPartition,
};

use recd_data::{LogRecord, Schema};

/// Table layout produced by the ETL stage.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum TableLayout {
    /// Baseline: rows ordered by inference time (sessions interleaved).
    #[default]
    TimeOrdered,
    /// RecD O2: rows clustered by session id, sorted by timestamp within a
    /// session.
    ClusteredBySession,
}

/// End-to-end ETL driver: join, partition, and lay out rows.
#[derive(Debug, Clone)]
pub struct EtlJob {
    layout: TableLayout,
    downsample: Option<(DownsamplePolicy, f64, u64)>,
}

impl EtlJob {
    /// Creates an ETL job producing the given table layout.
    pub fn new(layout: TableLayout) -> Self {
        Self {
            layout,
            downsample: None,
        }
    }

    /// Enables downsampling with the given policy, keep-rate, and seed.
    #[must_use]
    pub fn with_downsampling(
        mut self,
        policy: DownsamplePolicy,
        keep_rate: f64,
        seed: u64,
    ) -> Self {
        self.downsample = Some((policy, keep_rate, seed));
        self
    }

    /// Runs the job: joins the raw logs and lands hourly partitions in the
    /// configured layout.
    pub fn run(&self, schema: &Schema, records: &[LogRecord]) -> Vec<TablePartition> {
        let joined = join_logs(records);
        let mut samples = joined.samples;
        if let Some((policy, keep_rate, seed)) = self.downsample {
            samples = downsample(&samples, policy, keep_rate, seed);
        }
        let mut partitions = HourlyPartitioner::partition(samples);
        for partition in &mut partitions {
            partition.samples = match self.layout {
                TableLayout::TimeOrdered => interleave_by_time(&partition.samples),
                TableLayout::ClusteredBySession => cluster_by_session(&partition.samples),
            };
            debug_assert!(partition
                .samples
                .iter()
                .all(|s| schema.validate_sample(s).is_ok()));
        }
        partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};

    #[test]
    fn etl_job_round_trips_all_samples_and_layouts_differ() {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        let (records, partition) = gen.generate_logs();
        let schema = gen.schema().clone();

        let baseline = EtlJob::new(TableLayout::TimeOrdered).run(&schema, &records);
        let clustered = EtlJob::new(TableLayout::ClusteredBySession).run(&schema, &records);

        let baseline_total: usize = baseline.iter().map(|p| p.samples.len()).sum();
        let clustered_total: usize = clustered.iter().map(|p| p.samples.len()).sum();
        assert_eq!(baseline_total, partition.len());
        assert_eq!(clustered_total, partition.len());

        // Clustering makes a session's samples adjacent.
        let adjacency = |parts: &[TablePartition]| {
            let mut same = 0usize;
            let mut total = 0usize;
            for p in parts {
                for w in p.samples.windows(2) {
                    total += 1;
                    if w[0].session_id == w[1].session_id {
                        same += 1;
                    }
                }
            }
            same as f64 / total.max(1) as f64
        };
        assert!(adjacency(&clustered) > adjacency(&baseline) + 0.2);
    }

    #[test]
    fn downsampling_is_applied_inside_the_job() {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        let (records, partition) = gen.generate_logs();
        let schema = gen.schema().clone();
        let sampled = EtlJob::new(TableLayout::ClusteredBySession)
            .with_downsampling(DownsamplePolicy::PerSession, 0.5, 9)
            .run(&schema, &records);
        let total: usize = sampled.iter().map(|p| p.samples.len()).sum();
        assert!(total < partition.len());
        assert!(total > 0);
    }
}
