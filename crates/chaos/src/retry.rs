//! Bounded retry with exponential backoff for storage-facing paths.

use crate::inject::ChaosCounters;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Exponential-backoff retry policy with a bounded attempt budget.
///
/// Storage-facing paths (reader fill workers, ETL landing) wrap their blob
/// operations in [`run`](Self::run) so transient injected faults degrade to a
/// short backoff instead of erroring out, while genuine failures (missing
/// blob, corrupt stripe) surface immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt (total attempts = this + 1).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::storage_default()
    }
}

impl RetryPolicy {
    /// The default budget for simulated blob-store paths: 8 retries starting
    /// at 500µs, capped at 20ms per sleep — generous enough to outlast any
    /// seeded fail-next-N burst, small enough that tests stay fast.
    pub const fn storage_default() -> Self {
        Self {
            max_retries: 8,
            base_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(20),
        }
    }

    /// The backoff slept after failed attempt number `attempt` (0-based):
    /// `base * 2^attempt`, capped at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }

    /// Runs `op`, retrying transient failures (per `transient`) with
    /// exponential backoff until the budget is spent. Non-transient errors
    /// and budget exhaustion return the last error. Retry and backoff totals
    /// are recorded into `counters` when provided.
    ///
    /// # Errors
    ///
    /// Returns the final error when `op` never succeeds.
    pub fn run<T, E>(
        &self,
        counters: Option<&ChaosCounters>,
        transient: impl Fn(&E) -> bool,
        mut op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(err) if transient(&err) && attempt < self.max_retries => {
                    let backoff = self.backoff(attempt);
                    if let Some(counters) = counters {
                        counters.note_retry(backoff);
                    }
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
                Err(err) => {
                    if transient(&err) {
                        if let Some(counters) = counters {
                            counters.note_retry_exhausted();
                        }
                    }
                    return Err(err);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(6),
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(1));
        assert_eq!(policy.backoff(1), Duration::from_millis(2));
        assert_eq!(policy.backoff(2), Duration::from_millis(4));
        assert_eq!(policy.backoff(3), Duration::from_millis(6));
        assert_eq!(policy.backoff(31), Duration::from_millis(6));
        assert_eq!(policy.backoff(32), Duration::from_millis(6));
    }

    #[test]
    fn retries_transient_failures_until_success() {
        let policy = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(50),
        };
        let counters = ChaosCounters::new();
        let mut failures_left = 3;
        let result: Result<u32, &str> = policy.run(
            Some(&counters),
            |_| true,
            || {
                if failures_left > 0 {
                    failures_left -= 1;
                    Err("transient")
                } else {
                    Ok(99)
                }
            },
        );
        assert_eq!(result, Ok(99));
        assert_eq!(counters.retries(), 3);
    }

    #[test]
    fn budget_exhaustion_returns_the_error_and_counts() {
        let policy = RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(20),
        };
        let counters = ChaosCounters::new();
        let mut attempts = 0u32;
        let result: Result<(), &str> = policy.run(
            Some(&counters),
            |_| true,
            || {
                attempts += 1;
                Err("still down")
            },
        );
        assert_eq!(result, Err("still down"));
        assert_eq!(attempts, 3, "first try + 2 retries");
        assert_eq!(counters.retries(), 2);
        let report = counters.report(0, 0, &recd_storage::TectonicSim::new(1));
        assert_eq!(report.retry_exhausted, 1);
    }

    #[test]
    fn non_transient_errors_are_not_retried() {
        let policy = RetryPolicy::storage_default();
        let mut attempts = 0u32;
        let result: Result<(), &str> = policy.run(
            None,
            |e| *e == "transient",
            || {
                attempts += 1;
                Err("fatal")
            },
        );
        assert_eq!(result, Err("fatal"));
        assert_eq!(attempts, 1);
    }
}
