//! # recd-chaos
//!
//! Seeded fault injection and bounded-retry machinery for the continuous
//! RecD pipeline.
//!
//! The paper's production setting is hostile: trainers stall and die, storage
//! browns out, DPP hosts crash or partition from the control plane, and the
//! ETL pump restarts mid-hour — yet training must resume without losing or
//! double-delivering a sample. This crate supplies the
//! *schedule* side of that story; the checkpoint/resume side lives with each
//! tier (`EtlService::checkpoint`/`resume_from`, `DppService::resume`), and
//! the deterministic replay harness is the oracle that any fault schedule
//! must converge to the fault-free trainer-batch union.
//!
//! * [`FaultPlan`] — a seeded, clock-driven schedule of typed faults
//!   ([`FaultKind`]), buildable programmatically, parsed from the CLI
//!   grammar (`--chaos-plan`), or generated deterministically from a seed
//!   (`--chaos-seed`).
//! * [`FaultInjector`] — executes a plan against a [`TectonicSim`]: storage
//!   faults (latency brown-outs, transient get/put failures) are applied
//!   directly through the store's shared knobs; trainer- and pump-level
//!   faults are surfaced as [`FaultAction`]s for the layer that owns those
//!   resources to apply.
//! * [`RetryPolicy`] — exponential backoff with a bounded retry budget for
//!   storage-facing paths (reader fill workers, ETL landing), so transient
//!   faults degrade gracefully instead of erroring out.
//! * [`ChaosCounters`] / [`ChaosReport`] — accounting for everything above,
//!   exported through the `recd-obs` Collector plane as `recd_chaos_*`.
//!
//! [`TectonicSim`]: recd_storage::TectonicSim

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inject;
mod plan;
mod retry;

pub use inject::{ChaosCounters, ChaosReport, FaultAction, FaultInjector};
pub use plan::{FaultKind, FaultPlan, ScheduledFault};
pub use retry::RetryPolicy;
