//! The fault injector: executes a [`FaultPlan`] against live pipeline knobs,
//! plus the shared chaos accounting it and the retry paths feed.

use crate::plan::{FaultKind, FaultPlan, ScheduledFault};
use recd_storage::TectonicSim;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A fault the injector cannot apply itself because it does not own the
/// resource: the pipeline layer that owns the trainer handles / the pump loop
/// receives these from [`FaultInjector::poll`] and applies them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Stall trainer `lane` for `ms` of wall time.
    StallTrainer {
        /// Trainer lane index.
        lane: usize,
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Drain and drop trainer `lane`'s handle.
    KillTrainer {
        /// Trainer lane index.
        lane: usize,
    },
    /// Discard the ETL pump's in-memory state and resume from the latest
    /// checkpoint.
    CrashEtlPump,
    /// Tear down DPP host `host` and stop its heartbeats.
    KillHost {
        /// Fleet host index.
        host: usize,
    },
    /// Suppress host `host`'s heartbeats (and queue its submissions) for
    /// `ms` of pipeline-clock time.
    PartitionHost {
        /// Fleet host index.
        host: usize,
        /// Partition duration in pipeline-clock milliseconds.
        ms: u64,
    },
    /// Restart dead host `host` from the coordinator's last checkpoint.
    RejoinHost {
        /// Fleet host index.
        host: usize,
    },
}

/// Shared chaos accounting: fault firings by kind, retry/backoff totals from
/// the bounded-retry paths, and pump crash/recovery bookkeeping. Exported
/// through the `recd-obs` Collector plane as `recd_chaos_*`.
#[derive(Debug, Default)]
pub struct ChaosCounters {
    fired: [AtomicU64; 9],
    retries: AtomicU64,
    retry_exhausted: AtomicU64,
    backoff_nanos: AtomicU64,
    pump_crashes: AtomicU64,
    resumes: AtomicU64,
    recovery_nanos: AtomicU64,
}

fn kind_slot(name: &str) -> usize {
    FaultKind::all_names()
        .iter()
        .position(|&n| n == name)
        .expect("every kind name is registered")
}

impl ChaosCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one fired fault of `kind`.
    pub fn note_fault(&self, kind: &FaultKind) {
        self.fired[kind_slot(kind.name())].fetch_add(1, Ordering::AcqRel);
    }

    /// Records one retry that backed off for `backoff` before re-attempting.
    pub fn note_retry(&self, backoff: Duration) {
        self.retries.fetch_add(1, Ordering::AcqRel);
        self.backoff_nanos.fetch_add(
            backoff.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::AcqRel,
        );
    }

    /// Records one operation whose retry budget ran out.
    pub fn note_retry_exhausted(&self) {
        self.retry_exhausted.fetch_add(1, Ordering::AcqRel);
    }

    /// Records one pump crash.
    pub fn note_pump_crash(&self) {
        self.pump_crashes.fetch_add(1, Ordering::AcqRel);
    }

    /// Records one successful resume-from-checkpoint that took `recovery` of
    /// wall time.
    pub fn note_resume(&self, recovery: Duration) {
        self.resumes.fetch_add(1, Ordering::AcqRel);
        self.recovery_nanos.fetch_add(
            recovery.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::AcqRel,
        );
    }

    /// Total faults fired across all kinds.
    pub fn faults_fired(&self) -> u64 {
        self.fired.iter().map(|c| c.load(Ordering::Acquire)).sum()
    }

    /// Retries performed by bounded-retry paths.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Acquire)
    }

    /// Builds the serializable end-of-run report. `planned` is the plan's
    /// fault count; the store supplies injected get/put failure totals.
    pub fn report(&self, seed: u64, planned: usize, store: &TectonicSim) -> ChaosReport {
        let (injected_get_failures, injected_put_failures) = store.injected_failures();
        ChaosReport {
            seed,
            planned_faults: planned,
            faults_fired: self.faults_fired(),
            faults_by_kind: FaultKind::all_names()
                .iter()
                .enumerate()
                .map(|(slot, name)| (name.to_string(), self.fired[slot].load(Ordering::Acquire)))
                .filter(|(_, count)| *count > 0)
                .collect(),
            injected_get_failures,
            injected_put_failures,
            retries: self.retries(),
            retry_exhausted: self.retry_exhausted.load(Ordering::Acquire),
            backoff_ms: self.backoff_nanos.load(Ordering::Acquire) as f64 / 1e6,
            pump_crashes: self.pump_crashes.load(Ordering::Acquire),
            resumes: self.resumes.load(Ordering::Acquire),
            recovery_ms: self.recovery_nanos.load(Ordering::Acquire) as f64 / 1e6,
        }
    }
}

impl recd_obs::Collector for ChaosCounters {
    fn collect(&self, out: &mut recd_obs::MetricsBuf) {
        for (slot, name) in FaultKind::all_names().iter().enumerate() {
            out.counter(
                "recd_chaos_faults_total",
                "Faults fired by the chaos engine, by kind.",
                &[("kind", name)],
                self.fired[slot].load(Ordering::Acquire) as f64,
            );
        }
        out.counter(
            "recd_chaos_retries_total",
            "Retries performed by bounded-retry storage paths.",
            &[],
            self.retries() as f64,
        );
        out.counter(
            "recd_chaos_retry_exhausted_total",
            "Operations whose bounded retry budget ran out.",
            &[],
            self.retry_exhausted.load(Ordering::Acquire) as f64,
        );
        out.counter(
            "recd_chaos_backoff_seconds_total",
            "Wall time spent in retry backoff.",
            &[],
            self.backoff_nanos.load(Ordering::Acquire) as f64 / 1e9,
        );
        out.counter(
            "recd_chaos_pump_crashes_total",
            "ETL pump crash-restarts injected.",
            &[],
            self.pump_crashes.load(Ordering::Acquire) as f64,
        );
        out.counter(
            "recd_chaos_resumes_total",
            "Successful resumes from a pipeline checkpoint.",
            &[],
            self.resumes.load(Ordering::Acquire) as f64,
        );
        out.counter(
            "recd_chaos_recovery_seconds_total",
            "Wall time spent rebuilding state from checkpoints.",
            &[],
            self.recovery_nanos.load(Ordering::Acquire) as f64 / 1e9,
        );
    }
}

/// End-of-run chaos summary, recorded into `PipelineReport`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Seed of the executed plan (0 for hand-written plans).
    pub seed: u64,
    /// Faults the plan scheduled.
    pub planned_faults: usize,
    /// Faults actually fired (≤ planned when the run drains early).
    pub faults_fired: u64,
    /// Fired-fault counts by kind name (zero kinds omitted).
    pub faults_by_kind: Vec<(String, u64)>,
    /// Blob-store gets failed by injection.
    pub injected_get_failures: u64,
    /// Blob-store puts failed by injection.
    pub injected_put_failures: u64,
    /// Retries performed by bounded-retry paths.
    pub retries: u64,
    /// Operations whose retry budget ran out.
    pub retry_exhausted: u64,
    /// Total wall time spent backing off, in milliseconds.
    pub backoff_ms: f64,
    /// Pump crash-restarts injected.
    pub pump_crashes: u64,
    /// Successful resumes from checkpoint.
    pub resumes: u64,
    /// Total recovery (rebuild-from-checkpoint) wall time, in milliseconds.
    pub recovery_ms: f64,
}

/// Executes a [`FaultPlan`] against a live pipeline.
///
/// Storage-level faults are applied directly through the [`TectonicSim`]'s
/// shared knobs (latency multiplier, armed transient-failure budgets);
/// trainer- and pump-level faults are returned from [`poll`](Self::poll) as
/// [`FaultAction`]s for the owning layer to apply. `poll` is driven by the
/// same manual clock as the pipeline pump, so fault timing is deterministic.
#[derive(Debug)]
pub struct FaultInjector {
    schedule: Vec<ScheduledFault>,
    next: usize,
    store: TectonicSim,
    counters: Arc<ChaosCounters>,
    /// Latency to restore after a brown-out, and when to restore it.
    base_latency: Duration,
    restore_at_ms: Option<u64>,
    seed: u64,
    planned: usize,
}

impl FaultInjector {
    /// Builds an injector for `plan` against `store`. The store's current
    /// get latency is captured as the brown-out restore point.
    pub fn new(plan: &FaultPlan, store: TectonicSim) -> Self {
        Self {
            schedule: plan.sorted(),
            next: 0,
            base_latency: store.get_latency(),
            store,
            counters: Arc::new(ChaosCounters::new()),
            restore_at_ms: None,
            seed: plan.seed,
            planned: plan.len(),
        }
    }

    /// The shared chaos counters — register these into a `MetricsRegistry`
    /// and hand them to [`RetryPolicy::run`](crate::RetryPolicy::run) sites.
    pub fn counters(&self) -> Arc<ChaosCounters> {
        Arc::clone(&self.counters)
    }

    /// Whether every scheduled fault has fired and no brown-out is pending
    /// restoration.
    pub fn done(&self) -> bool {
        self.next == self.schedule.len() && self.restore_at_ms.is_none()
    }

    /// Advances the injector to pipeline-clock `now_ms`: applies every due
    /// storage fault directly, restores expired brown-outs, and returns the
    /// due trainer/pump actions for the caller to apply, in schedule order.
    pub fn poll(&mut self, now_ms: u64) -> Vec<FaultAction> {
        let mut actions = Vec::new();
        if let Some(restore_at) = self.restore_at_ms {
            if now_ms >= restore_at {
                self.restore_brownout();
                self.restore_at_ms = None;
            }
        }
        while self.next < self.schedule.len() && self.schedule[self.next].at_ms <= now_ms {
            let fault = self.schedule[self.next];
            self.next += 1;
            self.counters.note_fault(&fault.kind);
            match fault.kind {
                FaultKind::SlowStorage { factor, ms } => {
                    if self.store.queueing_enabled() {
                        // Queue-modeled store: a brown-out is a service-rate
                        // cut, so latency degrades with load instead of
                        // jumping by a flat amount.
                        self.store.set_rate_cut(f64::from(factor.max(1)));
                    } else {
                        // Flat-latency store: a zero-latency store still
                        // browns out — the floor makes the multiplier
                        // meaningful either way.
                        let base = self.base_latency.max(Duration::from_micros(200));
                        self.store.set_get_latency(base * factor);
                    }
                    self.restore_at_ms = Some(now_ms.saturating_add(ms));
                }
                FaultKind::FailGet { count } => self.store.fail_next_gets(count),
                FaultKind::FailPut { count } => self.store.fail_next_puts(count),
                FaultKind::StallTrainer { lane, ms } => {
                    actions.push(FaultAction::StallTrainer { lane, ms });
                }
                FaultKind::KillTrainer { lane } => {
                    actions.push(FaultAction::KillTrainer { lane });
                }
                FaultKind::CrashEtlPump => actions.push(FaultAction::CrashEtlPump),
                FaultKind::KillHost { host } => {
                    actions.push(FaultAction::KillHost { host });
                }
                FaultKind::PartitionHost { host, ms } => {
                    actions.push(FaultAction::PartitionHost { host, ms });
                }
                FaultKind::RejoinHost { host } => {
                    actions.push(FaultAction::RejoinHost { host });
                }
            }
        }
        actions
    }

    /// Finishes the run: restores any pending brown-out and returns the
    /// serializable report.
    pub fn finish(&mut self) -> ChaosReport {
        if self.restore_at_ms.take().is_some() {
            self.restore_brownout();
        }
        self.counters.report(self.seed, self.planned, &self.store)
    }

    /// Ends a brown-out on whichever model is active: rate cut back to
    /// healthy on a queue-modeled store, base latency otherwise.
    fn restore_brownout(&self) {
        if self.store.queueing_enabled() {
            self.store.set_rate_cut(1.0);
        } else {
            self.store.set_get_latency(self.base_latency);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_obs::{sample_value, Collector, MetricsBuf};

    #[test]
    fn storage_faults_apply_directly_and_restore_on_schedule() {
        let store = TectonicSim::new(1).with_get_latency(Duration::from_millis(1));
        store.put("a", vec![1]);
        let plan = FaultPlan::new()
            .with_fault(1_000, FaultKind::SlowStorage { factor: 8, ms: 500 })
            .with_fault(1_000, FaultKind::FailGet { count: 1 });
        let mut injector = FaultInjector::new(&plan, store.clone());

        assert!(injector.poll(999).is_empty());
        assert_eq!(store.get_latency(), Duration::from_millis(1));

        assert!(injector.poll(1_000).is_empty());
        assert_eq!(store.get_latency(), Duration::from_millis(8));
        assert!(store.get("a").is_err(), "armed get fault fires");
        assert!(store.get("a").is_ok(), "budget spent");

        assert!(!injector.done(), "brown-out restoration still pending");
        injector.poll(1_500);
        assert_eq!(store.get_latency(), Duration::from_millis(1));
        assert!(injector.done());

        let report = injector.finish();
        assert_eq!(report.faults_fired, 2);
        assert_eq!(report.injected_get_failures, 1);
        assert_eq!(report.faults_by_kind.len(), 2);
    }

    #[test]
    fn trainer_and_pump_faults_surface_as_actions_in_order() {
        let store = TectonicSim::new(1);
        let plan = FaultPlan::new()
            .with_fault(300, FaultKind::CrashEtlPump)
            .with_fault(100, FaultKind::KillTrainer { lane: 2 })
            .with_fault(200, FaultKind::StallTrainer { lane: 0, ms: 10 });
        let mut injector = FaultInjector::new(&plan, store);
        let actions = injector.poll(1_000);
        assert_eq!(
            actions,
            vec![
                FaultAction::KillTrainer { lane: 2 },
                FaultAction::StallTrainer { lane: 0, ms: 10 },
                FaultAction::CrashEtlPump,
            ]
        );
        assert!(injector.done());
        // A later poll fires nothing further.
        assert!(injector.poll(2_000).is_empty());
    }

    #[test]
    fn host_faults_surface_as_actions_in_order() {
        let store = TectonicSim::new(1);
        let plan = FaultPlan::new()
            .with_fault(300, FaultKind::RejoinHost { host: 1 })
            .with_fault(100, FaultKind::KillHost { host: 1 })
            .with_fault(200, FaultKind::PartitionHost { host: 0, ms: 50 });
        let mut injector = FaultInjector::new(&plan, store);
        let actions = injector.poll(1_000);
        assert_eq!(
            actions,
            vec![
                FaultAction::KillHost { host: 1 },
                FaultAction::PartitionHost { host: 0, ms: 50 },
                FaultAction::RejoinHost { host: 1 },
            ]
        );
        let report = injector.finish();
        assert_eq!(report.faults_fired, 3);
        assert_eq!(report.faults_by_kind.len(), 3);
    }

    #[test]
    fn finish_restores_a_mid_brownout_store() {
        let store = TectonicSim::new(1).with_get_latency(Duration::from_millis(2));
        let plan = FaultPlan::new().with_fault(
            0,
            FaultKind::SlowStorage {
                factor: 4,
                ms: 9999,
            },
        );
        let mut injector = FaultInjector::new(&plan, store.clone());
        injector.poll(0);
        assert_eq!(store.get_latency(), Duration::from_millis(8));
        injector.finish();
        assert_eq!(store.get_latency(), Duration::from_millis(2));
    }

    #[test]
    fn brownouts_on_queued_stores_cut_rates_not_latency() {
        use recd_storage::NodeConfig;
        let store = TectonicSim::new(2).with_node_config(NodeConfig::new(1e6, 1e9));
        store.put("a", vec![1]);
        let plan =
            FaultPlan::new().with_fault(1_000, FaultKind::SlowStorage { factor: 8, ms: 500 });
        let mut injector = FaultInjector::new(&plan, store.clone());
        injector.poll(999);
        assert_eq!(store.rate_cut(), 1.0);
        injector.poll(1_000);
        assert_eq!(store.rate_cut(), 8.0);
        // The flat latency knob stays untouched on the queued model.
        assert_eq!(store.get_latency(), Duration::ZERO);
        injector.poll(1_499);
        assert_eq!(store.rate_cut(), 8.0);
        injector.poll(1_500);
        assert_eq!(store.rate_cut(), 1.0);
        assert!(injector.done());
    }

    #[test]
    fn finish_restores_a_mid_brownout_rate_cut() {
        use recd_storage::NodeConfig;
        let store = TectonicSim::new(1).with_node_config(NodeConfig::new(1e6, 1e9));
        let plan = FaultPlan::new().with_fault(
            0,
            FaultKind::SlowStorage {
                factor: 4,
                ms: 9999,
            },
        );
        let mut injector = FaultInjector::new(&plan, store.clone());
        injector.poll(0);
        assert_eq!(store.rate_cut(), 4.0);
        injector.finish();
        assert_eq!(store.rate_cut(), 1.0);
    }

    #[test]
    fn counters_export_every_kind_series_zeroed() {
        let counters = ChaosCounters::new();
        counters.note_fault(&FaultKind::CrashEtlPump);
        counters.note_retry(Duration::from_millis(2));
        let mut buf = MetricsBuf::new();
        counters.collect(&mut buf);
        let families = buf.into_families();
        assert_eq!(
            sample_value(
                &families,
                "recd_chaos_faults_total",
                &[("kind", "crash_etl_pump")]
            ),
            Some(1.0)
        );
        assert_eq!(
            sample_value(
                &families,
                "recd_chaos_faults_total",
                &[("kind", "fail_get")]
            ),
            Some(0.0)
        );
        assert_eq!(
            sample_value(&families, "recd_chaos_retries_total", &[]),
            Some(1.0)
        );
        let backoff = sample_value(&families, "recd_chaos_backoff_seconds_total", &[]).unwrap();
        assert!((backoff - 0.002).abs() < 1e-9);
    }
}
