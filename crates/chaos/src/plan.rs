//! Fault plans: typed, clock-driven schedules of injected faults.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One typed fault the chaos engine knows how to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Stall trainer `lane` for `ms` of wall time: the lane stops consuming,
    /// backpressure builds, then consumption resumes.
    StallTrainer {
        /// Trainer lane index.
        lane: usize,
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Kill trainer `lane`: its handle is drained and dropped, never to
    /// return. Surviving lanes must absorb the load without stranding
    /// batches.
    KillTrainer {
        /// Trainer lane index.
        lane: usize,
    },
    /// Brown out the blob store: multiply its simulated per-fetch latency by
    /// `factor` for `ms` of pipeline-clock time, then restore it.
    SlowStorage {
        /// Latency multiplier over the pre-fault base latency.
        factor: u32,
        /// Brown-out duration in pipeline-clock milliseconds.
        ms: u64,
    },
    /// Fail the next `count` blob-store gets with a transient error.
    FailGet {
        /// Number of get operations to fail.
        count: u64,
    },
    /// Fail the next `count` fallible blob-store puts with a transient error.
    FailPut {
        /// Number of put operations to fail.
        count: u64,
    },
    /// Crash the ETL pump: the service's in-memory state is discarded and
    /// rebuilt from the most recent checkpoint, replaying the log tail from
    /// the checkpointed cursor.
    CrashEtlPump,
    /// Kill DPP host `host`: its service tears down and its heartbeats stop.
    /// The fleet coordinator must detect the death via heartbeat timeout and
    /// re-place the host's shards with bounded replay.
    KillHost {
        /// Fleet host index.
        host: usize,
    },
    /// Partition DPP host `host` from the control plane for `ms` of
    /// pipeline-clock time: the host keeps computing but its heartbeats are
    /// suppressed and new submissions to it queue. Healing before the
    /// detection window elapses is a flap; healing after is a zombie whose
    /// late deliveries the fleet must deduplicate.
    PartitionHost {
        /// Fleet host index.
        host: usize,
        /// Partition duration in pipeline-clock milliseconds.
        ms: u64,
    },
    /// Rejoin previously dead host `host`: a fresh service resumes from the
    /// coordinator's last checkpoint for that slot and becomes eligible for
    /// rebalanced shards.
    RejoinHost {
        /// Fleet host index.
        host: usize,
    },
}

impl FaultKind {
    /// Stable snake_case name, used as the `kind` label on
    /// `recd_chaos_faults_total`.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::StallTrainer { .. } => "stall_trainer",
            FaultKind::KillTrainer { .. } => "kill_trainer",
            FaultKind::SlowStorage { .. } => "slow_storage",
            FaultKind::FailGet { .. } => "fail_get",
            FaultKind::FailPut { .. } => "fail_put",
            FaultKind::CrashEtlPump => "crash_etl_pump",
            FaultKind::KillHost { .. } => "kill_host",
            FaultKind::PartitionHost { .. } => "partition_host",
            FaultKind::RejoinHost { .. } => "rejoin_host",
        }
    }

    /// All kind names, in a stable order (drives zero-initialised counter
    /// export so every series exists before its first fault fires).
    pub fn all_names() -> &'static [&'static str] {
        &[
            "stall_trainer",
            "kill_trainer",
            "slow_storage",
            "fail_get",
            "fail_put",
            "crash_etl_pump",
            "kill_host",
            "partition_host",
            "rejoin_host",
        ]
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::StallTrainer { lane, ms } => write!(f, "stall-trainer:{lane}:{ms}"),
            FaultKind::KillTrainer { lane } => write!(f, "kill-trainer:{lane}"),
            FaultKind::SlowStorage { factor, ms } => write!(f, "slow-storage:{factor}:{ms}"),
            FaultKind::FailGet { count } => write!(f, "fail-get:{count}"),
            FaultKind::FailPut { count } => write!(f, "fail-put:{count}"),
            FaultKind::CrashEtlPump => write!(f, "crash-pump"),
            FaultKind::KillHost { host } => write!(f, "kill-host:{host}"),
            FaultKind::PartitionHost { host, ms } => write!(f, "partition-host:{host}:{ms}"),
            FaultKind::RejoinHost { host } => write!(f, "rejoin-host:{host}"),
        }
    }
}

/// A fault bound to the pipeline-clock instant at which it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// Pipeline-clock time (ms) at which the fault fires.
    pub at_ms: u64,
    /// What fires.
    pub kind: FaultKind,
}

impl fmt::Display for ScheduledFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.at_ms, self.kind)
    }
}

/// A seeded, clock-driven schedule of typed faults.
///
/// The grammar accepted by [`FaultPlan::parse`] (and emitted by `Display`)
/// is semicolon-separated `at_ms:kind[:args]` entries:
///
/// ```text
/// 1800000:kill-trainer:1;3600000:slow-storage:8:600000;5400000:fail-get:5;7200000:crash-pump
/// ```
///
/// | entry                        | fault                                     |
/// |------------------------------|-------------------------------------------|
/// | `T:stall-trainer:LANE:MS`    | [`FaultKind::StallTrainer`]               |
/// | `T:kill-trainer:LANE`        | [`FaultKind::KillTrainer`]                |
/// | `T:slow-storage:FACTOR:MS`   | [`FaultKind::SlowStorage`]                |
/// | `T:fail-get:COUNT`           | [`FaultKind::FailGet`]                    |
/// | `T:fail-put:COUNT`           | [`FaultKind::FailPut`]                    |
/// | `T:crash-pump`               | [`FaultKind::CrashEtlPump`]               |
/// | `T:kill-host:HOST`           | [`FaultKind::KillHost`]                   |
/// | `T:partition-host:HOST:MS`   | [`FaultKind::PartitionHost`]              |
/// | `T:rejoin-host:HOST`         | [`FaultKind::RejoinHost`]                 |
///
/// Duplicate entries — the same `at_ms` with the same fault kind — are
/// rejected loudly: a plan that schedules the "same" fault twice at one
/// instant is almost always a typo, and last-wins silence would hide it.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed the plan was generated from (0 for hand-written plans); recorded
    /// in the [`ChaosReport`](crate::ChaosReport) so runs are reproducible.
    pub seed: u64,
    faults: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault at `at_ms`. Faults may be pushed in any order; the
    /// injector fires them in schedule order (ties fire in push order).
    #[must_use]
    pub fn with_fault(mut self, at_ms: u64, kind: FaultKind) -> Self {
        self.faults.push(ScheduledFault { at_ms, kind });
        self
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The schedule, in push order.
    pub fn faults(&self) -> &[ScheduledFault] {
        &self.faults
    }

    /// The schedule sorted by fire time (stable, so same-instant faults keep
    /// push order) — the order the injector executes.
    pub fn sorted(&self) -> Vec<ScheduledFault> {
        let mut faults = self.faults.clone();
        faults.sort_by_key(|f| f.at_ms);
        faults
    }

    /// Generates a deterministic plan from a seed: a storage brown-out, a
    /// burst of transient get failures, a trainer kill (when `lanes > 1` —
    /// killing the only lane would strand every batch by construction), a
    /// trainer stall, and a pump crash-restart, scattered across the middle
    /// of `[0, horizon_ms)`. The same `(seed, horizon_ms, lanes)` always
    /// yields the same plan — the property the chaos convergence tests and
    /// the CI smoke step rely on.
    pub fn seeded(seed: u64, horizon_ms: u64, lanes: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5EED);
        let span = horizon_ms.max(10);
        // Fire inside the middle 80% so every fault lands while the pipeline
        // is actually moving data.
        let at = |rng: &mut StdRng| rng.gen_range(span / 10..span.saturating_sub(span / 10));
        let mut plan = Self {
            seed,
            faults: Vec::new(),
        };
        plan.faults.push(ScheduledFault {
            at_ms: at(&mut rng),
            kind: FaultKind::SlowStorage {
                factor: rng.gen_range(4u32..16),
                ms: span / rng.gen_range(8u64..16),
            },
        });
        plan.faults.push(ScheduledFault {
            at_ms: at(&mut rng),
            kind: FaultKind::FailGet {
                count: rng.gen_range(2u64..8),
            },
        });
        plan.faults.push(ScheduledFault {
            at_ms: at(&mut rng),
            kind: FaultKind::FailPut {
                count: rng.gen_range(1u64..4),
            },
        });
        if lanes > 1 {
            plan.faults.push(ScheduledFault {
                at_ms: at(&mut rng),
                kind: FaultKind::KillTrainer {
                    lane: rng.gen_range(0..lanes),
                },
            });
            plan.faults.push(ScheduledFault {
                at_ms: at(&mut rng),
                kind: FaultKind::StallTrainer {
                    lane: rng.gen_range(0..lanes),
                    ms: rng.gen_range(5u64..25),
                },
            });
        }
        plan.faults.push(ScheduledFault {
            at_ms: at(&mut rng),
            kind: FaultKind::CrashEtlPump,
        });
        plan
    }

    /// Generates a deterministic plan that deliberately fires **concurrent**
    /// faults: a storage brown-out, a transient get burst, and a put burst
    /// all at one instant, and — with more than one lane — a trainer stall
    /// sharing a second instant with a pump crash. [`FaultPlan::seeded`]
    /// scatters one fault of each kind and therefore never overlaps them;
    /// this mode exists so fault *interaction* (not just each fault in
    /// isolation) is exercised. Deterministic in `(seed, horizon_ms, lanes)`.
    pub fn seeded_overlapping(seed: u64, horizon_ms: u64, lanes: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x07E2_14AF);
        let span = horizon_ms.max(10);
        let at = |rng: &mut StdRng| rng.gen_range(span / 10..span.saturating_sub(span / 10));
        let mut plan = Self {
            seed,
            faults: Vec::new(),
        };
        // First concurrent cluster: every storage-level fault at one instant.
        let burst_at = at(&mut rng);
        plan.faults.push(ScheduledFault {
            at_ms: burst_at,
            kind: FaultKind::SlowStorage {
                factor: rng.gen_range(4u32..16),
                ms: span / rng.gen_range(8u64..16),
            },
        });
        plan.faults.push(ScheduledFault {
            at_ms: burst_at,
            kind: FaultKind::FailGet {
                count: rng.gen_range(2u64..8),
            },
        });
        plan.faults.push(ScheduledFault {
            at_ms: burst_at,
            kind: FaultKind::FailPut {
                count: rng.gen_range(1u64..4),
            },
        });
        // Second concurrent cluster: a consumer-side stall racing a pump
        // crash-restart.
        let clash_at = at(&mut rng);
        if lanes > 1 {
            plan.faults.push(ScheduledFault {
                at_ms: clash_at,
                kind: FaultKind::StallTrainer {
                    lane: rng.gen_range(0..lanes),
                    ms: rng.gen_range(5u64..25),
                },
            });
        }
        plan.faults.push(ScheduledFault {
            at_ms: clash_at,
            kind: FaultKind::CrashEtlPump,
        });
        plan
    }

    /// Generates a deterministic host-level plan for an M-host fleet: one
    /// host is killed and later rejoined, another is partitioned from the
    /// control plane, with a storage brown-out, a transient get burst, and —
    /// with more than one lane — a trainer stall riding along. The kill
    /// always precedes the rejoin by at least a fifth of the horizon so the
    /// death has time to be detected between them. Falls back to
    /// [`FaultPlan::seeded`] when `hosts < 2` (killing the only host would
    /// strand the stream by construction). Deterministic in
    /// `(seed, horizon_ms, lanes, hosts)`.
    pub fn seeded_fleet(seed: u64, horizon_ms: u64, lanes: usize, hosts: usize) -> Self {
        if hosts < 2 {
            return Self::seeded(seed, horizon_ms, lanes);
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF1EE_7C4A);
        let span = horizon_ms.max(100);
        let mut plan = Self {
            seed,
            faults: Vec::new(),
        };
        // The killed and partitioned hosts are distinct, so at least one
        // host stays reachable throughout.
        let killed = rng.gen_range(0..hosts);
        let partitioned = (killed + 1 + rng.gen_range(0..hosts - 1)) % hosts;
        let kill_at = rng.gen_range(span / 5..(2 * span) / 5);
        let rejoin_at = rng.gen_range((3 * span) / 5..(4 * span) / 5);
        plan.faults.push(ScheduledFault {
            at_ms: kill_at,
            kind: FaultKind::KillHost { host: killed },
        });
        plan.faults.push(ScheduledFault {
            at_ms: rng.gen_range(span / 4..span / 2),
            kind: FaultKind::PartitionHost {
                host: partitioned,
                ms: span / rng.gen_range(6u64..12),
            },
        });
        plan.faults.push(ScheduledFault {
            at_ms: rejoin_at,
            kind: FaultKind::RejoinHost { host: killed },
        });
        plan.faults.push(ScheduledFault {
            at_ms: rng.gen_range(span / 10..(9 * span) / 10),
            kind: FaultKind::SlowStorage {
                factor: rng.gen_range(4u32..12),
                ms: span / rng.gen_range(8u64..16),
            },
        });
        plan.faults.push(ScheduledFault {
            at_ms: rng.gen_range(span / 10..(9 * span) / 10),
            kind: FaultKind::FailGet {
                count: rng.gen_range(2u64..6),
            },
        });
        if lanes > 1 {
            // No kill-trainer here: fleet lanes are pinned stable slices of
            // the shard space, so killing one would drop its shards' batches
            // by construction. A stall only delays.
            plan.faults.push(ScheduledFault {
                at_ms: rng.gen_range(span / 10..(9 * span) / 10),
                kind: FaultKind::StallTrainer {
                    lane: rng.gen_range(0..lanes),
                    ms: rng.gen_range(5u64..25),
                },
            });
        }
        plan
    }

    /// Parses the `--chaos-plan` grammar (see the type docs).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::new();
        let mut seen: std::collections::HashSet<(u64, &'static str)> = Default::default();
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let parts: Vec<&str> = entry.split(':').collect();
            let parse_u64 = |field: &str, what: &str| -> Result<u64, String> {
                field
                    .parse()
                    .map_err(|e| format!("`{entry}`: bad {what}: {e}"))
            };
            if parts.len() < 2 {
                return Err(format!("`{entry}`: expected `at_ms:kind[:args]`"));
            }
            let at_ms = parse_u64(parts[0], "fire time")?;
            let kind = match (parts[1], parts.len()) {
                ("stall-trainer", 4) => FaultKind::StallTrainer {
                    lane: parse_u64(parts[2], "lane")? as usize,
                    ms: parse_u64(parts[3], "stall ms")?,
                },
                ("kill-trainer", 3) => FaultKind::KillTrainer {
                    lane: parse_u64(parts[2], "lane")? as usize,
                },
                ("slow-storage", 4) => FaultKind::SlowStorage {
                    factor: parse_u64(parts[2], "factor")? as u32,
                    ms: parse_u64(parts[3], "duration ms")?,
                },
                ("fail-get", 3) => FaultKind::FailGet {
                    count: parse_u64(parts[2], "count")?,
                },
                ("fail-put", 3) => FaultKind::FailPut {
                    count: parse_u64(parts[2], "count")?,
                },
                ("crash-pump", 2) => FaultKind::CrashEtlPump,
                ("kill-host", 3) => FaultKind::KillHost {
                    host: parse_u64(parts[2], "host")? as usize,
                },
                ("partition-host", 4) => FaultKind::PartitionHost {
                    host: parse_u64(parts[2], "host")? as usize,
                    ms: parse_u64(parts[3], "partition ms")?,
                },
                ("rejoin-host", 3) => FaultKind::RejoinHost {
                    host: parse_u64(parts[2], "host")? as usize,
                },
                (kind, _) => {
                    return Err(format!(
                        "`{entry}`: unknown fault `{kind}` or wrong arity \
                         (stall-trainer:LANE:MS | kill-trainer:LANE | \
                         slow-storage:FACTOR:MS | fail-get:COUNT | \
                         fail-put:COUNT | crash-pump | kill-host:HOST | \
                         partition-host:HOST:MS | rejoin-host:HOST)"
                    ))
                }
            };
            if !seen.insert((at_ms, kind.name())) {
                return Err(format!(
                    "`{entry}`: duplicate `{at_ms}:{}` — an entry with the same \
                     fire time and fault kind was already scheduled; duplicates \
                     are rejected instead of silently overwriting",
                    kind.name()
                ));
            }
            plan.faults.push(ScheduledFault { at_ms, kind });
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for fault in &self.faults {
            if !first {
                write!(f, ";")?;
            }
            write!(f, "{fault}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips_through_display() {
        let spec = "1000:stall-trainer:2:50;2000:kill-trainer:1;3000:slow-storage:8:600;\
                    4000:fail-get:5;5000:fail-put:2;6000:crash-pump;\
                    7000:kill-host:1;8000:partition-host:2:4000;9000:rejoin-host:1";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.len(), 9);
        assert_eq!(plan.to_string(), spec);
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in [
            "oops",
            "1000:warp-core-breach",
            "1000:kill-trainer",
            "1000:kill-trainer:one",
            "x:crash-pump",
            "1000:slow-storage:8",
            "1000:kill-host",
            "1000:partition-host:2",
            "1000:rejoin-host:0:9",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
        // Empty entries and surrounding whitespace are tolerated.
        let plan = FaultPlan::parse(" 5:crash-pump ; ;").unwrap();
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn parse_rejects_duplicate_at_ms_kind_entries_loudly() {
        let err = FaultPlan::parse("1000:crash-pump;1000:crash-pump").unwrap_err();
        assert!(
            err.contains("duplicate"),
            "error must name the problem: {err}"
        );
        assert!(
            err.contains("1000:crash_etl_pump"),
            "error names the entry: {err}"
        );
        // Same kind with different *arguments* at the same instant is still a
        // duplicate (the kind name collides)...
        assert!(FaultPlan::parse("500:fail-get:2;500:fail-get:7").is_err());
        // ...but the same instant with different kinds is a legal overlap,
        // and the same kind at different instants is a legal repeat.
        assert!(FaultPlan::parse("500:fail-get:2;500:fail-put:2").is_ok());
        assert!(FaultPlan::parse("500:crash-pump;900:crash-pump").is_ok());
    }

    #[test]
    fn seeded_overlapping_schedules_concurrent_faults() {
        let a = FaultPlan::seeded_overlapping(7, 3_600_000, 3);
        assert_eq!(a, FaultPlan::seeded_overlapping(7, 3_600_000, 3));
        assert_ne!(a, FaultPlan::seeded_overlapping(8, 3_600_000, 3));
        // At least one instant carries two or more distinct faults — the
        // property plain `seeded` never has.
        let mut by_instant = std::collections::HashMap::new();
        for f in a.faults() {
            *by_instant.entry(f.at_ms).or_insert(0usize) += 1;
        }
        assert!(
            by_instant.values().any(|&n| n >= 2),
            "overlap mode must fire concurrent faults: {a}"
        );
        let plain = FaultPlan::seeded(7, 3_600_000, 3);
        let mut plain_instants = std::collections::HashSet::new();
        assert!(
            plain
                .faults()
                .iter()
                .all(|f| plain_instants.insert(f.at_ms)),
            "plain seeded plans scatter; if this starts overlapping, \
             seeded_overlapping is no longer the distinguishing mode"
        );
    }

    #[test]
    fn seeded_fleet_plans_kill_then_rejoin_with_margin() {
        for seed in [1u64, 7, 42] {
            let plan = FaultPlan::seeded_fleet(seed, 3_600_000, 2, 4);
            assert_eq!(plan, FaultPlan::seeded_fleet(seed, 3_600_000, 2, 4));
            let kill = plan
                .faults()
                .iter()
                .find(|f| matches!(f.kind, FaultKind::KillHost { .. }))
                .expect("fleet plan kills a host");
            let rejoin = plan
                .faults()
                .iter()
                .find(|f| matches!(f.kind, FaultKind::RejoinHost { .. }))
                .expect("fleet plan rejoins the killed host");
            let FaultKind::KillHost { host: killed } = kill.kind else {
                unreachable!()
            };
            assert!(matches!(rejoin.kind, FaultKind::RejoinHost { host } if host == killed));
            assert!(
                rejoin.at_ms >= kill.at_ms + 3_600_000 / 5,
                "rejoin must trail the kill by a detection margin"
            );
            let FaultKind::PartitionHost { host: parted, .. } = plan
                .faults()
                .iter()
                .find(|f| matches!(f.kind, FaultKind::PartitionHost { .. }))
                .expect("fleet plan partitions a host")
                .kind
            else {
                unreachable!()
            };
            assert_ne!(parted, killed, "kill and partition target distinct hosts");
            assert!(plan
                .faults()
                .iter()
                .all(|f| !matches!(f.kind, FaultKind::KillTrainer { .. })));
        }
        // Degenerate fleets fall back to the host-free plan.
        assert_eq!(
            FaultPlan::seeded_fleet(7, 3_600_000, 2, 1),
            FaultPlan::seeded(7, 3_600_000, 2)
        );
    }

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(7, 3_600_000, 4);
        let b = FaultPlan::seeded(7, 3_600_000, 4);
        let c = FaultPlan::seeded(8, 3_600_000, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.len() >= 4);
        assert!(a
            .faults()
            .iter()
            .any(|f| matches!(f.kind, FaultKind::CrashEtlPump)));
        assert!(a
            .faults()
            .iter()
            .any(|f| matches!(f.kind, FaultKind::KillTrainer { .. })));
        let horizon = 3_600_000u64;
        assert!(a
            .faults()
            .iter()
            .all(|f| f.at_ms >= horizon / 10 && f.at_ms < horizon - horizon / 10));
    }

    #[test]
    fn seeded_single_lane_plan_never_kills_the_only_trainer() {
        let plan = FaultPlan::seeded(3, 1_000_000, 1);
        assert!(plan.faults().iter().all(|f| !matches!(
            f.kind,
            FaultKind::KillTrainer { .. } | FaultKind::StallTrainer { .. }
        )));
    }

    #[test]
    fn sorted_is_stable_for_simultaneous_faults() {
        let plan = FaultPlan::new()
            .with_fault(500, FaultKind::FailGet { count: 1 })
            .with_fault(100, FaultKind::CrashEtlPump)
            .with_fault(500, FaultKind::FailPut { count: 2 });
        let sorted = plan.sorted();
        assert_eq!(sorted[0].kind, FaultKind::CrashEtlPump);
        assert_eq!(sorted[1].kind, FaultKind::FailGet { count: 1 });
        assert_eq!(sorted[2].kind, FaultKind::FailPut { count: 2 });
    }
}
