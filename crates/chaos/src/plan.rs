//! Fault plans: typed, clock-driven schedules of injected faults.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One typed fault the chaos engine knows how to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Stall trainer `lane` for `ms` of wall time: the lane stops consuming,
    /// backpressure builds, then consumption resumes.
    StallTrainer {
        /// Trainer lane index.
        lane: usize,
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Kill trainer `lane`: its handle is drained and dropped, never to
    /// return. Surviving lanes must absorb the load without stranding
    /// batches.
    KillTrainer {
        /// Trainer lane index.
        lane: usize,
    },
    /// Brown out the blob store: multiply its simulated per-fetch latency by
    /// `factor` for `ms` of pipeline-clock time, then restore it.
    SlowStorage {
        /// Latency multiplier over the pre-fault base latency.
        factor: u32,
        /// Brown-out duration in pipeline-clock milliseconds.
        ms: u64,
    },
    /// Fail the next `count` blob-store gets with a transient error.
    FailGet {
        /// Number of get operations to fail.
        count: u64,
    },
    /// Fail the next `count` fallible blob-store puts with a transient error.
    FailPut {
        /// Number of put operations to fail.
        count: u64,
    },
    /// Crash the ETL pump: the service's in-memory state is discarded and
    /// rebuilt from the most recent checkpoint, replaying the log tail from
    /// the checkpointed cursor.
    CrashEtlPump,
}

impl FaultKind {
    /// Stable snake_case name, used as the `kind` label on
    /// `recd_chaos_faults_total`.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::StallTrainer { .. } => "stall_trainer",
            FaultKind::KillTrainer { .. } => "kill_trainer",
            FaultKind::SlowStorage { .. } => "slow_storage",
            FaultKind::FailGet { .. } => "fail_get",
            FaultKind::FailPut { .. } => "fail_put",
            FaultKind::CrashEtlPump => "crash_etl_pump",
        }
    }

    /// All kind names, in a stable order (drives zero-initialised counter
    /// export so every series exists before its first fault fires).
    pub fn all_names() -> &'static [&'static str] {
        &[
            "stall_trainer",
            "kill_trainer",
            "slow_storage",
            "fail_get",
            "fail_put",
            "crash_etl_pump",
        ]
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::StallTrainer { lane, ms } => write!(f, "stall-trainer:{lane}:{ms}"),
            FaultKind::KillTrainer { lane } => write!(f, "kill-trainer:{lane}"),
            FaultKind::SlowStorage { factor, ms } => write!(f, "slow-storage:{factor}:{ms}"),
            FaultKind::FailGet { count } => write!(f, "fail-get:{count}"),
            FaultKind::FailPut { count } => write!(f, "fail-put:{count}"),
            FaultKind::CrashEtlPump => write!(f, "crash-pump"),
        }
    }
}

/// A fault bound to the pipeline-clock instant at which it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// Pipeline-clock time (ms) at which the fault fires.
    pub at_ms: u64,
    /// What fires.
    pub kind: FaultKind,
}

impl fmt::Display for ScheduledFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.at_ms, self.kind)
    }
}

/// A seeded, clock-driven schedule of typed faults.
///
/// The grammar accepted by [`FaultPlan::parse`] (and emitted by `Display`)
/// is semicolon-separated `at_ms:kind[:args]` entries:
///
/// ```text
/// 1800000:kill-trainer:1;3600000:slow-storage:8:600000;5400000:fail-get:5;7200000:crash-pump
/// ```
///
/// | entry                        | fault                                     |
/// |------------------------------|-------------------------------------------|
/// | `T:stall-trainer:LANE:MS`    | [`FaultKind::StallTrainer`]               |
/// | `T:kill-trainer:LANE`        | [`FaultKind::KillTrainer`]                |
/// | `T:slow-storage:FACTOR:MS`   | [`FaultKind::SlowStorage`]                |
/// | `T:fail-get:COUNT`           | [`FaultKind::FailGet`]                    |
/// | `T:fail-put:COUNT`           | [`FaultKind::FailPut`]                    |
/// | `T:crash-pump`               | [`FaultKind::CrashEtlPump`]               |
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed the plan was generated from (0 for hand-written plans); recorded
    /// in the [`ChaosReport`](crate::ChaosReport) so runs are reproducible.
    pub seed: u64,
    faults: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault at `at_ms`. Faults may be pushed in any order; the
    /// injector fires them in schedule order (ties fire in push order).
    #[must_use]
    pub fn with_fault(mut self, at_ms: u64, kind: FaultKind) -> Self {
        self.faults.push(ScheduledFault { at_ms, kind });
        self
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The schedule, in push order.
    pub fn faults(&self) -> &[ScheduledFault] {
        &self.faults
    }

    /// The schedule sorted by fire time (stable, so same-instant faults keep
    /// push order) — the order the injector executes.
    pub fn sorted(&self) -> Vec<ScheduledFault> {
        let mut faults = self.faults.clone();
        faults.sort_by_key(|f| f.at_ms);
        faults
    }

    /// Generates a deterministic plan from a seed: a storage brown-out, a
    /// burst of transient get failures, a trainer kill (when `lanes > 1` —
    /// killing the only lane would strand every batch by construction), a
    /// trainer stall, and a pump crash-restart, scattered across the middle
    /// of `[0, horizon_ms)`. The same `(seed, horizon_ms, lanes)` always
    /// yields the same plan — the property the chaos convergence tests and
    /// the CI smoke step rely on.
    pub fn seeded(seed: u64, horizon_ms: u64, lanes: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5EED);
        let span = horizon_ms.max(10);
        // Fire inside the middle 80% so every fault lands while the pipeline
        // is actually moving data.
        let at = |rng: &mut StdRng| rng.gen_range(span / 10..span.saturating_sub(span / 10));
        let mut plan = Self {
            seed,
            faults: Vec::new(),
        };
        plan.faults.push(ScheduledFault {
            at_ms: at(&mut rng),
            kind: FaultKind::SlowStorage {
                factor: rng.gen_range(4u32..16),
                ms: span / rng.gen_range(8u64..16),
            },
        });
        plan.faults.push(ScheduledFault {
            at_ms: at(&mut rng),
            kind: FaultKind::FailGet {
                count: rng.gen_range(2u64..8),
            },
        });
        plan.faults.push(ScheduledFault {
            at_ms: at(&mut rng),
            kind: FaultKind::FailPut {
                count: rng.gen_range(1u64..4),
            },
        });
        if lanes > 1 {
            plan.faults.push(ScheduledFault {
                at_ms: at(&mut rng),
                kind: FaultKind::KillTrainer {
                    lane: rng.gen_range(0..lanes),
                },
            });
            plan.faults.push(ScheduledFault {
                at_ms: at(&mut rng),
                kind: FaultKind::StallTrainer {
                    lane: rng.gen_range(0..lanes),
                    ms: rng.gen_range(5u64..25),
                },
            });
        }
        plan.faults.push(ScheduledFault {
            at_ms: at(&mut rng),
            kind: FaultKind::CrashEtlPump,
        });
        plan
    }

    /// Parses the `--chaos-plan` grammar (see the type docs).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::new();
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let parts: Vec<&str> = entry.split(':').collect();
            let parse_u64 = |field: &str, what: &str| -> Result<u64, String> {
                field
                    .parse()
                    .map_err(|e| format!("`{entry}`: bad {what}: {e}"))
            };
            if parts.len() < 2 {
                return Err(format!("`{entry}`: expected `at_ms:kind[:args]`"));
            }
            let at_ms = parse_u64(parts[0], "fire time")?;
            let kind = match (parts[1], parts.len()) {
                ("stall-trainer", 4) => FaultKind::StallTrainer {
                    lane: parse_u64(parts[2], "lane")? as usize,
                    ms: parse_u64(parts[3], "stall ms")?,
                },
                ("kill-trainer", 3) => FaultKind::KillTrainer {
                    lane: parse_u64(parts[2], "lane")? as usize,
                },
                ("slow-storage", 4) => FaultKind::SlowStorage {
                    factor: parse_u64(parts[2], "factor")? as u32,
                    ms: parse_u64(parts[3], "duration ms")?,
                },
                ("fail-get", 3) => FaultKind::FailGet {
                    count: parse_u64(parts[2], "count")?,
                },
                ("fail-put", 3) => FaultKind::FailPut {
                    count: parse_u64(parts[2], "count")?,
                },
                ("crash-pump", 2) => FaultKind::CrashEtlPump,
                (kind, _) => {
                    return Err(format!(
                        "`{entry}`: unknown fault `{kind}` or wrong arity \
                         (stall-trainer:LANE:MS | kill-trainer:LANE | \
                         slow-storage:FACTOR:MS | fail-get:COUNT | \
                         fail-put:COUNT | crash-pump)"
                    ))
                }
            };
            plan.faults.push(ScheduledFault { at_ms, kind });
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for fault in &self.faults {
            if !first {
                write!(f, ";")?;
            }
            write!(f, "{fault}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips_through_display() {
        let spec = "1000:stall-trainer:2:50;2000:kill-trainer:1;3000:slow-storage:8:600;\
                    4000:fail-get:5;5000:fail-put:2;6000:crash-pump";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.len(), 6);
        assert_eq!(plan.to_string(), spec);
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in [
            "oops",
            "1000:warp-core-breach",
            "1000:kill-trainer",
            "1000:kill-trainer:one",
            "x:crash-pump",
            "1000:slow-storage:8",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
        // Empty entries and surrounding whitespace are tolerated.
        let plan = FaultPlan::parse(" 5:crash-pump ; ;").unwrap();
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(7, 3_600_000, 4);
        let b = FaultPlan::seeded(7, 3_600_000, 4);
        let c = FaultPlan::seeded(8, 3_600_000, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.len() >= 4);
        assert!(a
            .faults()
            .iter()
            .any(|f| matches!(f.kind, FaultKind::CrashEtlPump)));
        assert!(a
            .faults()
            .iter()
            .any(|f| matches!(f.kind, FaultKind::KillTrainer { .. })));
        let horizon = 3_600_000u64;
        assert!(a
            .faults()
            .iter()
            .all(|f| f.at_ms >= horizon / 10 && f.at_ms < horizon - horizon / 10));
    }

    #[test]
    fn seeded_single_lane_plan_never_kills_the_only_trainer() {
        let plan = FaultPlan::seeded(3, 1_000_000, 1);
        assert!(plan.faults().iter().all(|f| !matches!(
            f.kind,
            FaultKind::KillTrainer { .. } | FaultKind::StallTrainer { .. }
        )));
    }

    #[test]
    fn sorted_is_stable_for_simultaneous_faults() {
        let plan = FaultPlan::new()
            .with_fault(500, FaultKind::FailGet { count: 1 })
            .with_fault(100, FaultKind::CrashEtlPump)
            .with_fault(500, FaultKind::FailPut { count: 2 });
        let sorted = plan.sorted();
        assert_eq!(sorted[0].kind, FaultKind::CrashEtlPump);
        assert_eq!(sorted[1].kind, FaultKind::FailGet { count: 1 });
        assert_eq!(sorted[2].kind, FaultKind::FailPut { count: 2 });
    }
}
