//! The cross-tier metrics aggregator: polls a [`MetricsRegistry`] on a
//! [`ScaleClock`], keeps a bounded ring of time-series points per metric,
//! derives rates, and renders a one-shot text report.
//!
//! This is the single pane of glass over the continuous pipeline — every
//! tier's counters in one place, with the derived quantities an operator
//! (or, later, a multi-host control plane) actually watches: end-to-end
//! records per second, whether the ETL tail lag is growing or shrinking, and
//! whether the batch pools are still recycling.

use crate::clock::ScaleClock;
use crate::registry::{MetricFamily, MetricKind, MetricsRegistry, SampleValue};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Aggregator tuning.
#[derive(Debug, Clone, Copy)]
pub struct AggregatorConfig {
    /// Maximum time-series points retained per metric. Older points fall off
    /// the ring, bounding memory for any run length.
    pub ring_capacity: usize,
}

impl Default for AggregatorConfig {
    fn default() -> Self {
        Self { ring_capacity: 256 }
    }
}

/// One metric's retained trajectory.
#[derive(Debug)]
struct Series {
    kind: MetricKind,
    /// `(clock seconds, value)` points, oldest first, bounded by
    /// `ring_capacity`.
    points: VecDeque<(f64, f64)>,
}

/// The operator-facing quantities derived from the rings. Every field is
/// `None` until the corresponding families have been polled at least twice
/// (rates need two points).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DerivedMetrics {
    /// Samples emitted toward trainers per second, over the retained window
    /// (rate of `recd_dpp_samples_out_total`) — the paper's end-to-end
    /// throughput number.
    pub records_per_second: Option<f64>,
    /// Trend of the ETL tail lag in ms per second of clock time (slope of
    /// `recd_etl_tail_lag_ms` over the window). Negative means the streaming
    /// ETL is catching up to the tail; positive means it is falling behind.
    pub tail_lag_trend_ms_per_s: Option<f64>,
    /// Aggregate pool hit ratio `Σhits / Σ(hits + misses)` over every
    /// `recd_dpp_pool_acquires_total` sample — all pools, all hosts — from
    /// the latest poll. Near 1.0 at steady state; a drop means some part of
    /// the fleet is allocating again.
    pub pool_hit_ratio: Option<f64>,
    /// Per-pool hit ratios (summed across hosts, sorted by pool name). The
    /// aggregate alone misweights fleets with heterogeneous pool traffic: a
    /// cold blob pool hides behind a hot batch pool.
    pub pool_hit_ratios: Vec<(String, f64)>,
    /// The worst entry of [`pool_hit_ratios`](Self::pool_hit_ratios) — the
    /// pool to look at first when the aggregate dips.
    pub min_pool_hit_ratio: Option<f64>,
}

/// The aggregator. Poll it manually with [`MetricsAggregator::poll_at`]
/// (deterministic tests, pump-driven pipelines) or spawn a polling thread on
/// a clock with [`MetricsAggregator::spawn`].
pub struct MetricsAggregator {
    registry: Arc<MetricsRegistry>,
    ring_capacity: usize,
    series: Mutex<BTreeMap<String, Series>>,
}

/// A running aggregator polling thread; [`AggregatorHandle::stop`] shuts the
/// clock down and joins it.
pub struct AggregatorHandle {
    clock: Arc<dyn ScaleClock>,
    thread: Option<JoinHandle<()>>,
}

impl AggregatorHandle {
    /// Stops the polling thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.clock.shutdown();
            let _ = thread.join();
        }
    }
}

impl Drop for AggregatorHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn series_key(family: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        family.to_string()
    } else {
        let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{family}{{{}}}", parts.join(","))
    }
}

impl MetricsAggregator {
    /// Creates an aggregator over a registry.
    pub fn new(registry: Arc<MetricsRegistry>, config: AggregatorConfig) -> Self {
        Self {
            registry,
            ring_capacity: config.ring_capacity.max(2),
            series: Mutex::new(BTreeMap::new()),
        }
    }

    /// Polls every registered source once, stamping the points `seconds` on
    /// the aggregator's time axis. Histogram families contribute their
    /// `_count` as a counter series.
    pub fn poll_at(&self, seconds: f64) {
        let families = self.registry.gather();
        let mut series = self.series.lock().expect("aggregator lock");
        for family in &families {
            for sample in &family.samples {
                let (value, kind) = match &sample.value {
                    SampleValue::Scalar(v) => (*v, family.kind),
                    SampleValue::Histogram(h) => (h.count as f64, MetricKind::Counter),
                };
                let key = series_key(&family.name, &sample.labels);
                let entry = series.entry(key).or_insert_with(|| Series {
                    kind,
                    points: VecDeque::with_capacity(self.ring_capacity.min(64)),
                });
                // A counter that went backwards was reset (a killed host
                // rejoined with a fresh registry). Restart the window at the
                // reset instead of deriving a negative rate from it.
                if entry.kind == MetricKind::Counter
                    && entry.points.back().is_some_and(|(_, last)| value < *last)
                {
                    entry.points.clear();
                }
                if entry.points.len() == self.ring_capacity {
                    entry.points.pop_front();
                }
                entry.points.push_back((seconds, value));
            }
        }
    }

    /// Spawns a thread polling once per clock tick until the clock shuts
    /// down.
    pub fn spawn(self: &Arc<Self>, clock: Arc<dyn ScaleClock>) -> AggregatorHandle {
        let aggregator = Arc::clone(self);
        let tick_clock = Arc::clone(&clock);
        let thread = std::thread::Builder::new()
            .name("obs-aggregator".to_string())
            .spawn(move || {
                while tick_clock.wait_tick() {
                    aggregator.poll_at(tick_clock.now_seconds());
                }
            })
            .expect("spawn aggregator");
        AggregatorHandle {
            clock,
            thread: Some(thread),
        }
    }

    /// Number of distinct series retained.
    pub fn series_count(&self) -> usize {
        self.series.lock().expect("aggregator lock").len()
    }

    /// Points currently retained for one series key (family name plus the
    /// sorted `{k="v",...}` label block, as rendered).
    pub fn points(&self, key: &str) -> Vec<(f64, f64)> {
        self.series
            .lock()
            .expect("aggregator lock")
            .get(key)
            .map(|s| s.points.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Rate of change over the retained window of one series:
    /// `(last - first) / (t_last - t_first)`. `None` without two points or
    /// without elapsed time between them.
    pub fn rate(&self, key: &str) -> Option<f64> {
        let series = self.series.lock().expect("aggregator lock");
        let s = series.get(key)?;
        let (t0, v0) = *s.points.front()?;
        let (t1, v1) = *s.points.back()?;
        if s.points.len() < 2 || t1 <= t0 {
            return None;
        }
        Some((v1 - v0) / (t1 - t0))
    }

    /// Latest value of one series.
    pub fn last(&self, key: &str) -> Option<f64> {
        let series = self.series.lock().expect("aggregator lock");
        Some(series.get(key)?.points.back()?.1)
    }

    /// Sum of [`rate`](Self::rate) across every series of one family —
    /// the bare `family` key plus every labelled `family{...}` variant.
    /// Equals `rate(family)` for a single unlabelled series, and sums the
    /// per-host series a [`RegistryFederation`](crate::RegistryFederation)
    /// contributes, so fleet-wide throughput is one number regardless of
    /// how many hosts the samples came from. `None` while no series of the
    /// family has two points yet.
    pub fn family_rate(&self, family: &str) -> Option<f64> {
        let series = self.series.lock().expect("aggregator lock");
        let prefix = format!("{family}{{");
        let mut total = None;
        for (key, s) in series.iter() {
            if key != family && !key.starts_with(&prefix) {
                continue;
            }
            let (Some(&(t0, v0)), Some(&(t1, v1))) = (s.points.front(), s.points.back()) else {
                continue;
            };
            if s.points.len() < 2 || t1 <= t0 {
                continue;
            }
            *total.get_or_insert(0.0) += (v1 - v0) / (t1 - t0);
        }
        total
    }

    /// Computes the operator-facing derived metrics from the rings plus one
    /// fresh gather (for the point-in-time ratios).
    pub fn derived(&self) -> DerivedMetrics {
        let families: Vec<MetricFamily> = self.registry.gather();
        // Group acquire counters by pool, summing across every other label
        // (federated `host` tags in particular): per-pool ratios first, the
        // aggregate from the per-pool sums.
        let mut per_pool: BTreeMap<String, (f64, f64)> = BTreeMap::new();
        if let Some(family) = families
            .iter()
            .find(|f| f.name == "recd_dpp_pool_acquires_total")
        {
            for sample in &family.samples {
                let SampleValue::Scalar(value) = &sample.value else {
                    continue;
                };
                let label = |key: &str| {
                    sample
                        .labels
                        .iter()
                        .find(|(k, _)| k == key)
                        .map(|(_, v)| v.as_str())
                };
                let pool = label("pool").unwrap_or("").to_string();
                let (hits, misses) = per_pool.entry(pool).or_insert((0.0, 0.0));
                match label("outcome") {
                    Some("hit") => *hits += value,
                    Some("miss") => *misses += value,
                    _ => {}
                }
            }
        }
        let pool_hit_ratios: Vec<(String, f64)> = per_pool
            .iter()
            .filter(|(_, (h, m))| h + m > 0.0)
            .map(|(pool, (h, m))| (pool.clone(), h / (h + m)))
            .collect();
        let (hits, misses) = per_pool
            .values()
            .fold((0.0, 0.0), |(h, m), (ph, pm)| (h + ph, m + pm));
        let pool_hit_ratio = (hits + misses > 0.0).then(|| hits / (hits + misses));
        let min_pool_hit_ratio = pool_hit_ratios
            .iter()
            .map(|(_, ratio)| *ratio)
            .reduce(f64::min);
        DerivedMetrics {
            // Family-summed so a federated fleet (per-host `host="h<i>"`
            // series) derives fleet-wide throughput; identical to the plain
            // series rate when the family has one unlabelled series.
            records_per_second: self.family_rate("recd_dpp_samples_out_total"),
            tail_lag_trend_ms_per_s: self.family_rate("recd_etl_tail_lag_ms"),
            pool_hit_ratio,
            pool_hit_ratios,
            min_pool_hit_ratio,
        }
    }

    /// Renders the one-shot text report: the derived metrics followed by
    /// every retained series with its latest value and window rate.
    pub fn report(&self) -> String {
        let derived = self.derived();
        let series = self.series.lock().expect("aggregator lock");
        let window = series
            .values()
            .filter_map(|s| {
                let first = s.points.front()?.0;
                let last = s.points.back()?.0;
                Some(last - first)
            })
            .fold(0.0f64, f64::max);
        let mut out = format!(
            "== metrics aggregator report: {} sources, {} series, {:.1}s window ==\n",
            self.registry.sources(),
            series.len(),
            window
        );
        out.push_str("derived:\n");
        match derived.records_per_second {
            Some(r) => out.push_str(&format!("  end_to_end_records_per_second: {r:.1}\n")),
            None => out.push_str("  end_to_end_records_per_second: n/a\n"),
        }
        match derived.tail_lag_trend_ms_per_s {
            Some(t) => out.push_str(&format!(
                "  tail_lag_trend_ms_per_s: {t:.1} ({})\n",
                if t <= 0.0 {
                    "catching up"
                } else {
                    "falling behind"
                }
            )),
            None => out.push_str("  tail_lag_trend_ms_per_s: n/a\n"),
        }
        match derived.pool_hit_ratio {
            Some(p) => out.push_str(&format!("  pool_hit_ratio: {p:.3}\n")),
            None => out.push_str("  pool_hit_ratio: n/a\n"),
        }
        for (pool, ratio) in &derived.pool_hit_ratios {
            out.push_str(&format!("    pool {pool}: {ratio:.3}\n"));
        }
        if let Some(min) = derived.min_pool_hit_ratio {
            out.push_str(&format!("  min_pool_hit_ratio: {min:.3}\n"));
        }
        out.push_str("series (last | window rate/s | points):\n");
        for (key, s) in series.iter() {
            let last = s.points.back().map_or(0.0, |p| p.1);
            let rate = match (s.points.front(), s.points.back()) {
                (Some(&(t0, v0)), Some(&(t1, v1))) if t1 > t0 => {
                    format!("{:.2}", (v1 - v0) / (t1 - t0))
                }
                _ => "n/a".to_string(),
            };
            let marker = match s.kind {
                MetricKind::Counter => "C",
                MetricKind::Gauge => "G",
                MetricKind::Histogram => "H",
            };
            out.push_str(&format!(
                "  [{marker}] {key}  {last} | {rate} | {}\n",
                s.points.len()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::registry::{Collector, MetricsBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A fake tier: a counter that advances by 100 per poll and a gauge that
    /// descends, driven entirely by the test.
    #[derive(Default)]
    struct FakeTier {
        polls: AtomicU64,
    }

    impl Collector for FakeTier {
        fn collect(&self, out: &mut MetricsBuf) {
            let n = self.polls.fetch_add(1, Ordering::Relaxed);
            out.counter(
                "recd_dpp_samples_out_total",
                "samples",
                &[],
                (n * 100) as f64,
            );
            out.gauge("recd_etl_tail_lag_ms", "lag", &[], (1_000 - n * 50) as f64);
            out.counter(
                "recd_dpp_pool_acquires_total",
                "acquires",
                &[("pool", "batch"), ("outcome", "hit")],
                (n * 9) as f64,
            );
            out.counter(
                "recd_dpp_pool_acquires_total",
                "acquires",
                &[("pool", "batch"), ("outcome", "miss")],
                n as f64,
            );
        }
    }

    #[test]
    fn manual_clock_polls_bound_the_ring_and_derive_rates() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.register(Arc::new(FakeTier::default()));
        let aggregator = Arc::new(MetricsAggregator::new(
            Arc::clone(&registry),
            AggregatorConfig { ring_capacity: 4 },
        ));
        let clock = Arc::new(ManualClock::new());
        let handle = aggregator.spawn(Arc::clone(&clock) as Arc<dyn ScaleClock>);

        // 6 deterministic polls; the ManualClock's time axis is its tick
        // count, so each poll is 1s apart.
        for _ in 0..6 {
            assert!(clock.step());
        }
        handle.stop();

        // Ring is bounded: 6 polls, 4 retained.
        let points = aggregator.points("recd_dpp_samples_out_total");
        assert_eq!(points.len(), 4);
        // Oldest retained poll is #3 (t=3s, v=200): polls are stamped after
        // wait_tick consumed the grant, and the counter advanced once per
        // gather (derived() gathers too — but not before the polls ran).
        let derived = aggregator.derived();
        // Counter advances 100 per 1s tick → rate 100/s over any window.
        let rate = derived.records_per_second.expect("two points retained");
        assert!((rate - 100.0).abs() < 1e-9, "rate {rate} != 100/s");
        // Gauge descends 50 per tick → trend -50 ms/s (catching up).
        let trend = derived.tail_lag_trend_ms_per_s.expect("trend");
        assert!((trend + 50.0).abs() < 1e-9, "trend {trend}");
        // Hit ratio from the latest poll: 9n / (9n + n) = 0.9.
        let ratio = derived.pool_hit_ratio.expect("ratio");
        assert!((ratio - 0.9).abs() < 1e-9, "ratio {ratio}");

        let report = aggregator.report();
        assert!(report.contains("end_to_end_records_per_second: 100.0"));
        assert!(report.contains("catching up"));
        assert!(report.contains("recd_dpp_samples_out_total"));
    }

    /// A counter that climbs, resets to zero (a killed host rejoining with
    /// a fresh registry), then climbs again.
    #[derive(Default)]
    struct ResettingTier {
        polls: AtomicU64,
    }

    impl Collector for ResettingTier {
        fn collect(&self, out: &mut MetricsBuf) {
            let n = self.polls.fetch_add(1, Ordering::Relaxed);
            // Polls 0..3 climb to 300, poll 3 resets to 0, then climbs.
            let value = if n < 3 { n * 100 } else { (n - 3) * 40 };
            out.counter("recd_dpp_samples_out_total", "samples", &[], value as f64);
            out.gauge("recd_etl_tail_lag_ms", "lag", &[], 5.0);
        }
    }

    #[test]
    fn counter_reset_restarts_the_window_instead_of_going_negative() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.register(Arc::new(ResettingTier::default()));
        let aggregator =
            MetricsAggregator::new(Arc::clone(&registry), AggregatorConfig { ring_capacity: 8 });

        aggregator.poll_at(1.0); // 0
        aggregator.poll_at(2.0); // 100
        aggregator.poll_at(3.0); // 200
        let before = aggregator.rate("recd_dpp_samples_out_total").unwrap();
        assert!((before - 100.0).abs() < 1e-9, "pre-reset rate {before}");

        // The reset poll drops to 0: without the monotonicity guard the
        // window (0 .. 200) would derive a negative records/sec.
        aggregator.poll_at(4.0); // reset -> 0
        assert_eq!(aggregator.rate("recd_dpp_samples_out_total"), None);
        assert_eq!(aggregator.points("recd_dpp_samples_out_total").len(), 1);

        aggregator.poll_at(5.0); // 40
        aggregator.poll_at(6.0); // 80
        let after = aggregator.rate("recd_dpp_samples_out_total").unwrap();
        assert!(
            after > 0.0 && (after - 40.0).abs() < 1e-9,
            "post-reset rate {after}"
        );
        assert!(
            aggregator
                .family_rate("recd_dpp_samples_out_total")
                .unwrap()
                > 0.0
        );

        // Gauges may legitimately descend; their window is never restarted.
        assert_eq!(aggregator.points("recd_etl_tail_lag_ms").len(), 6);
    }

    #[test]
    fn rate_needs_two_points_and_elapsed_time() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.register(Arc::new(FakeTier::default()));
        let aggregator = MetricsAggregator::new(registry, AggregatorConfig::default());
        assert_eq!(aggregator.rate("recd_dpp_samples_out_total"), None);
        aggregator.poll_at(1.0);
        assert_eq!(aggregator.rate("recd_dpp_samples_out_total"), None);
        // A second poll at the same instant still cannot produce a rate.
        aggregator.poll_at(1.0);
        assert_eq!(aggregator.rate("recd_dpp_samples_out_total"), None);
        aggregator.poll_at(2.0);
        assert!(aggregator.rate("recd_dpp_samples_out_total").is_some());
        assert!(aggregator.series_count() >= 4);
    }

    /// Two federated hosts advancing at different speeds: the family rate is
    /// their sum, while per-series rates stay individually addressable.
    struct FederatedPair {
        polls: AtomicU64,
    }

    impl Collector for FederatedPair {
        fn collect(&self, out: &mut MetricsBuf) {
            let n = self.polls.fetch_add(1, Ordering::Relaxed);
            out.counter(
                "recd_dpp_samples_out_total",
                "samples",
                &[("host", "h0")],
                (n * 30) as f64,
            );
            out.counter(
                "recd_dpp_samples_out_total",
                "samples",
                &[("host", "h1")],
                (n * 70) as f64,
            );
        }
    }

    #[test]
    fn family_rate_sums_per_host_series() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.register(Arc::new(FederatedPair {
            polls: AtomicU64::new(0),
        }));
        let aggregator = MetricsAggregator::new(registry, AggregatorConfig::default());
        assert_eq!(aggregator.family_rate("recd_dpp_samples_out_total"), None);
        aggregator.poll_at(1.0);
        aggregator.poll_at(2.0);
        // 30/s + 70/s across the host-labelled series.
        let rate = aggregator
            .family_rate("recd_dpp_samples_out_total")
            .expect("two polls");
        assert!((rate - 100.0).abs() < 1e-9, "family rate {rate}");
        // derived() reports the same fleet-wide number.
        let derived = aggregator.derived();
        assert!((derived.records_per_second.expect("rate") - 100.0).abs() < 1e-9);
        // The unlabelled key matches nothing: only exact/prefixed keys sum.
        assert_eq!(aggregator.rate("recd_dpp_samples_out_total"), None);
    }

    /// A host with fixed per-pool acquire counters.
    struct PoolHost {
        batch: (f64, f64),
        blob: (f64, f64),
    }

    impl Collector for PoolHost {
        fn collect(&self, out: &mut MetricsBuf) {
            for (pool, (hits, misses)) in [("batch", self.batch), ("blob", self.blob)] {
                out.counter(
                    "recd_dpp_pool_acquires_total",
                    "acquires",
                    &[("pool", pool), ("outcome", "hit")],
                    hits,
                );
                out.counter(
                    "recd_dpp_pool_acquires_total",
                    "acquires",
                    &[("pool", pool), ("outcome", "miss")],
                    misses,
                );
            }
        }
    }

    /// Two federated member registries with heterogeneous pool traffic: the
    /// per-pool ratios sum each pool across hosts, the minimum exposes the
    /// cold pool the traffic-weighted aggregate hides.
    #[test]
    fn per_pool_hit_ratios_survive_federation_and_expose_the_cold_pool() {
        let federation = Arc::new(crate::RegistryFederation::new());
        // Host 0: hot batch pool (90/10), cold blob pool (2/8).
        let h0 = Arc::new(MetricsRegistry::new());
        h0.register(Arc::new(PoolHost {
            batch: (90.0, 10.0),
            blob: (2.0, 8.0),
        }));
        federation.set_member("h0", h0);
        // Host 1: perfect batch pool (110/0), cold blob pool (3/7).
        let h1 = Arc::new(MetricsRegistry::new());
        h1.register(Arc::new(PoolHost {
            batch: (110.0, 0.0),
            blob: (3.0, 7.0),
        }));
        federation.set_member("h1", h1);
        let parent = Arc::new(MetricsRegistry::new());
        parent.register(Arc::clone(&federation) as Arc<dyn Collector>);

        let aggregator = MetricsAggregator::new(parent, AggregatorConfig::default());
        let derived = aggregator.derived();

        // batch: (90+110)/(90+110+10+0) = 200/210; blob: 5/20 = 0.25.
        let ratios: std::collections::HashMap<&str, f64> = derived
            .pool_hit_ratios
            .iter()
            .map(|(p, r)| (p.as_str(), *r))
            .collect();
        assert!((ratios["batch"] - 200.0 / 210.0).abs() < 1e-9);
        assert!((ratios["blob"] - 0.25).abs() < 1e-9);
        // The minimum flags the blob pool; the aggregate (205/230 ≈ 0.89)
        // would have hidden it.
        assert!((derived.min_pool_hit_ratio.unwrap() - 0.25).abs() < 1e-9);
        let aggregate = derived.pool_hit_ratio.unwrap();
        assert!((aggregate - 205.0 / 230.0).abs() < 1e-9, "{aggregate}");

        let report = aggregator.report();
        assert!(report.contains("min_pool_hit_ratio: 0.250"));
        assert!(report.contains("pool blob: 0.250"));
    }

    #[test]
    fn labeled_series_keys_are_stable() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.register(Arc::new(FakeTier::default()));
        let aggregator = MetricsAggregator::new(registry, AggregatorConfig::default());
        aggregator.poll_at(0.0);
        // Labels render sorted by key, matching the exposition ordering.
        assert_eq!(
            aggregator
                .points("recd_dpp_pool_acquires_total{outcome=\"hit\",pool=\"batch\"}")
                .len(),
            1
        );
    }
}
