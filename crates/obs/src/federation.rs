//! Multi-registry scrape federation: re-exports every member registry's
//! families into one parent registry with a `host="<label>"` tag appended —
//! the single-pane view over a fleet of per-host registries.
//!
//! The federation is itself a [`Collector`]: register it on the parent
//! [`MetricsRegistry`] and every parent gather (scrape, aggregator poll)
//! fans out to the members. Members are added or replaced by label at any
//! time — a host whose incarnation changed keeps its label and the fleet's
//! dashboards never re-key.

use crate::registry::{Collector, MetricKind, MetricsBuf, MetricsRegistry, SampleValue};
use std::sync::{Arc, Mutex};

/// A set of labelled member registries scraped as one collector.
#[derive(Default)]
pub struct RegistryFederation {
    members: Mutex<Vec<(String, Arc<MetricsRegistry>)>>,
}

impl RegistryFederation {
    /// An empty federation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a member registry under `label`, or replaces the member already
    /// holding that label.
    pub fn set_member(&self, label: impl Into<String>, registry: Arc<MetricsRegistry>) {
        let label = label.into();
        let mut members = self.members.lock().expect("federation lock");
        match members.iter_mut().find(|(existing, _)| *existing == label) {
            Some(slot) => slot.1 = registry,
            None => members.push((label, registry)),
        }
    }

    /// Number of member registries.
    pub fn members(&self) -> usize {
        self.members.lock().expect("federation lock").len()
    }
}

impl Collector for RegistryFederation {
    fn collect(&self, out: &mut MetricsBuf) {
        let members = self.members.lock().expect("federation lock").clone();
        for (label, registry) in &members {
            for family in registry.gather() {
                for sample in &family.samples {
                    // Re-emit under the member's host tag; the member's own
                    // labels come first so the host tag never shadows them.
                    let mut labels: Vec<(&str, &str)> = sample
                        .labels
                        .iter()
                        .map(|(k, v)| (k.as_str(), v.as_str()))
                        .collect();
                    labels.push(("host", label.as_str()));
                    match (&sample.value, family.kind) {
                        (SampleValue::Scalar(value), MetricKind::Counter) => {
                            out.counter(&family.name, &family.help, &labels, *value);
                        }
                        (SampleValue::Scalar(value), MetricKind::Gauge) => {
                            out.gauge(&family.name, &family.help, &labels, *value);
                        }
                        (SampleValue::Histogram(snapshot), _) => {
                            out.histogram(&family.name, &family.help, &labels, snapshot.clone());
                        }
                        // A scalar sample inside a histogram family cannot be
                        // produced by MetricsBuf; skip rather than invent one.
                        (SampleValue::Scalar(_), MetricKind::Histogram) => {}
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::sample_value;

    struct Fixed(f64);

    impl Collector for Fixed {
        fn collect(&self, out: &mut MetricsBuf) {
            out.counter("recd_dpp_samples_out_total", "samples", &[], self.0);
            out.gauge(
                "recd_dpp_queue_depth",
                "depth",
                &[("queue", "input")],
                self.0 / 10.0,
            );
        }
    }

    #[test]
    fn members_federate_under_host_labels() {
        let federation = Arc::new(RegistryFederation::new());
        for (host, value) in [("h0", 100.0), ("h1", 250.0)] {
            let member = Arc::new(MetricsRegistry::new());
            member.register(Arc::new(Fixed(value)));
            federation.set_member(host, member);
        }
        let parent = Arc::new(MetricsRegistry::new());
        parent.register(Arc::clone(&federation) as Arc<dyn Collector>);

        let families = parent.gather();
        assert_eq!(
            sample_value(&families, "recd_dpp_samples_out_total", &[("host", "h0")]),
            Some(100.0)
        );
        assert_eq!(
            sample_value(&families, "recd_dpp_samples_out_total", &[("host", "h1")]),
            Some(250.0)
        );
        // Member labels survive next to the host tag.
        assert_eq!(
            sample_value(
                &families,
                "recd_dpp_queue_depth",
                &[("host", "h1"), ("queue", "input")],
            ),
            Some(25.0)
        );
    }

    #[test]
    fn set_member_replaces_by_label() {
        let federation = RegistryFederation::new();
        let first = Arc::new(MetricsRegistry::new());
        first.register(Arc::new(Fixed(1.0)));
        federation.set_member("h0", first);
        let second = Arc::new(MetricsRegistry::new());
        second.register(Arc::new(Fixed(2.0)));
        federation.set_member("h0", second);
        assert_eq!(federation.members(), 1);

        let mut out = MetricsBuf::new();
        federation.collect(&mut out);
        let families = out.into_families();
        assert_eq!(
            sample_value(&families, "recd_dpp_samples_out_total", &[("host", "h0")]),
            Some(2.0)
        );
    }
}
