//! The tick clocks shared by every polling controller in the workspace: the
//! `recd-dpp` scaling controller and the [`MetricsAggregator`] both sample
//! gauges on a [`ScaleClock`], so both are deterministic under test via
//! [`ManualClock`].
//!
//! [`MetricsAggregator`]: crate::MetricsAggregator

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A polling controller's notion of time. `wait_tick` blocks until the next
/// evaluation should run; `shutdown` releases any waiter permanently.
pub trait ScaleClock: Send + Sync {
    /// Blocks until the next tick. Returns `false` once the clock has been
    /// shut down (the controller then exits).
    fn wait_tick(&self) -> bool;

    /// Permanently wakes every waiter; subsequent `wait_tick` calls return
    /// `false` immediately.
    fn shutdown(&self);

    /// Seconds elapsed on this clock, used to timestamp samples and events.
    fn now_seconds(&self) -> f64;
}

/// The production clock: one tick per fixed wall-clock period.
#[derive(Debug)]
pub struct WallClock {
    period: Duration,
    started: Instant,
    stop: Mutex<bool>,
    cond: Condvar,
}

impl WallClock {
    /// Creates a clock ticking every `period`.
    pub fn new(period: Duration) -> Self {
        Self {
            period: period.max(Duration::from_millis(1)),
            started: Instant::now(),
            stop: Mutex::new(false),
            cond: Condvar::new(),
        }
    }
}

impl ScaleClock for WallClock {
    fn wait_tick(&self) -> bool {
        let deadline = Instant::now() + self.period;
        let mut stopped = self.stop.lock().expect("clock lock");
        loop {
            if *stopped {
                return false;
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return true;
            };
            let (guard, _) = self
                .cond
                .wait_timeout(stopped, remaining)
                .expect("clock lock");
            stopped = guard;
        }
    }

    fn shutdown(&self) {
        *self.stop.lock().expect("clock lock") = true;
        self.cond.notify_all();
    }

    fn now_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// A test clock that never advances on its own. Each [`ManualClock::step`]
/// grants the controller exactly one evaluation and blocks until that
/// evaluation has finished, making polling decisions fully deterministic:
/// the test, not the scheduler, decides when gauges are sampled.
#[derive(Debug, Default)]
pub struct ManualClock {
    state: Mutex<ManualState>,
    cond: Condvar,
}

#[derive(Debug, Default)]
struct ManualState {
    granted: u64,
    consumed: u64,
    evaluated: u64,
    shutdown: bool,
}

impl ManualClock {
    /// Creates a paused clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants one tick and blocks until the controller has fully evaluated
    /// it. Returns `false` if the clock was shut down before the evaluation
    /// completed (e.g. the service finished).
    pub fn step(&self) -> bool {
        let mut state = self.state.lock().expect("manual clock lock");
        state.granted += 1;
        let target = state.granted;
        self.cond.notify_all();
        while state.evaluated < target && !state.shutdown {
            state = self.cond.wait(state).expect("manual clock lock");
        }
        state.evaluated >= target
    }

    /// Ticks evaluated so far.
    pub fn evaluations(&self) -> u64 {
        self.state.lock().expect("manual clock lock").evaluated
    }
}

impl ScaleClock for ManualClock {
    fn wait_tick(&self) -> bool {
        let mut state = self.state.lock().expect("manual clock lock");
        // Entering the wait means the work since the previous tick is done.
        state.evaluated = state.consumed;
        self.cond.notify_all();
        while state.granted == state.consumed && !state.shutdown {
            state = self.cond.wait(state).expect("manual clock lock");
        }
        if state.shutdown {
            return false;
        }
        state.consumed += 1;
        true
    }

    fn shutdown(&self) {
        let mut state = self.state.lock().expect("manual clock lock");
        state.shutdown = true;
        self.cond.notify_all();
    }

    fn now_seconds(&self) -> f64 {
        self.state.lock().expect("manual clock lock").consumed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn manual_clock_grants_exactly_one_evaluation_per_step() {
        let clock = Arc::new(ManualClock::new());
        let worker_clock = Arc::clone(&clock);
        let evaluated = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&evaluated);
        let controller = std::thread::spawn(move || {
            while worker_clock.wait_tick() {
                seen.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(clock.step());
        assert_eq!(evaluated.load(Ordering::SeqCst), 1);
        assert!(clock.step());
        assert_eq!(evaluated.load(Ordering::SeqCst), 2);
        clock.shutdown();
        controller.join().unwrap();
        assert!(!clock.step(), "steps after shutdown must not hang");
    }

    #[test]
    fn wall_clock_ticks_until_shutdown() {
        let clock = WallClock::new(Duration::from_millis(1));
        assert!(clock.wait_tick());
        clock.shutdown();
        assert!(!clock.wait_tick());
        assert!(clock.now_seconds() >= 0.0);
    }
}
