//! # recd-obs
//!
//! The observability plane of the reproduction: a dependency-free (pure
//! `std`) metrics layer every tier plugs into.
//!
//! * [`MetricsRegistry`] holds [`Collector`]s — one per tier — that map the
//!   tiers' existing snapshot structs (`DppSnapshot`, `EtlGauges`,
//!   `ReaderMetrics`, trainer lane gauges, blob-store counters) into labeled
//!   counter/gauge/histogram samples on each scrape.
//! * [`MetricsServer`] exposes the registry at `GET /metrics` in the
//!   Prometheus text exposition format (HELP/TYPE lines, label escaping,
//!   deterministic family ordering) on a plain [`std::net::TcpListener`],
//!   because the workspace is offline and ships no HTTP crate.
//! * [`MetricsAggregator`] polls the registry on a [`ScaleClock`], keeps a
//!   bounded ring of time-series points per metric, derives rates
//!   (records/sec end-to-end, tail-lag trend, pool hit ratio), and renders a
//!   one-shot text report — the single pane of glass a future multi-host
//!   control plane will scrape per host.
//!
//! The clock abstraction ([`ScaleClock`], [`WallClock`], [`ManualClock`])
//! lives here and is shared with the `recd-dpp` scaling controller: the
//! production clock ticks on a period, while [`ManualClock::step`] grants
//! exactly one evaluation for deterministic tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregator;
pub mod clock;
pub mod federation;
pub mod registry;
pub mod server;

pub use aggregator::{AggregatorConfig, AggregatorHandle, DerivedMetrics, MetricsAggregator};
pub use clock::{ManualClock, ScaleClock, WallClock};
pub use federation::RegistryFederation;
pub use registry::{
    render_families, sample_value, Collector, Histogram, HistogramSnapshot, MetricFamily,
    MetricKind, MetricsBuf, MetricsRegistry, Sample, SampleValue,
};
pub use server::{scrape, MetricsServer};
