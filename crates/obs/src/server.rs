//! A minimal HTTP/1.1 server exposing a [`MetricsRegistry`] at
//! `GET /metrics`, built on [`std::net::TcpListener`] because the offline
//! workspace ships no HTTP crate. Requests are served serially — a metrics
//! endpoint is scraped by one collector at a time, and a slow scrape must
//! never spawn unbounded threads inside the data plane.

use crate::registry::{Collector, Histogram, MetricsBuf, MetricsRegistry};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Self-instrumentation the server registers into the registry it serves:
/// scrape counts and a latency histogram, so the observability plane reports
/// on itself like any other tier.
#[derive(Debug)]
struct ScrapeStats {
    scrapes: AtomicU64,
    not_found: AtomicU64,
    latency: Histogram,
}

impl Default for ScrapeStats {
    fn default() -> Self {
        Self {
            scrapes: AtomicU64::new(0),
            not_found: AtomicU64::new(0),
            latency: Histogram::new(&[0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5]),
        }
    }
}

impl Collector for ScrapeStats {
    fn collect(&self, out: &mut MetricsBuf) {
        out.counter(
            "recd_obs_scrapes_total",
            "Successful /metrics scrapes served.",
            &[],
            self.scrapes.load(Ordering::Relaxed) as f64,
        );
        out.counter(
            "recd_obs_http_not_found_total",
            "Requests for paths other than /metrics.",
            &[],
            self.not_found.load(Ordering::Relaxed) as f64,
        );
        out.histogram(
            "recd_obs_scrape_duration_seconds",
            "Wall time to gather and render one scrape.",
            &[],
            self.latency.snapshot(),
        );
    }
}

/// The exposition endpoint: binds a local TCP port (`0` picks an ephemeral
/// one), serves `GET /metrics` from a background thread, and shuts down
/// cleanly on [`MetricsServer::shutdown`] or drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `127.0.0.1:port` and starts serving the registry. Port `0`
    /// binds an ephemeral port; read the actual one from
    /// [`MetricsServer::local_addr`].
    ///
    /// # Errors
    ///
    /// Returns the bind error if the port is unavailable.
    pub fn start(registry: Arc<MetricsRegistry>, port: u16) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ScrapeStats::default());
        registry.register(Arc::clone(&stats) as Arc<dyn Collector>);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("obs-metrics-server".to_string())
            .spawn(move || {
                for connection in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = connection {
                        // One bad client must not take the endpoint down.
                        let _ = serve_one(stream, &registry, &stats);
                    }
                }
            })
            .expect("spawn metrics server");
        Ok(Self {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port `0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with one last connection.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Reads one request head (up to a small bound), answers it, closes.
fn serve_one(
    mut stream: TcpStream,
    registry: &MetricsRegistry,
    stats: &ScrapeStats,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 4096 {
            break;
        }
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let response = if method == "GET" && (path == "/metrics" || path.starts_with("/metrics?")) {
        let started = Instant::now();
        let body = registry.render();
        stats.latency.observe(started.elapsed().as_secs_f64());
        stats.scrapes.fetch_add(1, Ordering::Relaxed);
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    } else {
        stats.not_found.fetch_add(1, Ordering::Relaxed);
        let body = "not found; try /metrics\n";
        format!(
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    };
    stream.write_all(response.as_bytes())?;
    stream.flush()?;
    let _ = stream.shutdown(Shutdown::Both);
    Ok(())
}

/// Scrapes a metrics endpoint over a fresh [`TcpStream`] and returns the
/// response body. Test and CLI helper — a production scraper would be a real
/// Prometheus.
///
/// # Errors
///
/// Returns connection errors, or `InvalidData` if the response is not a
/// `200` with a well-formed head.
pub fn scrape(addr: SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let Some((head, body)) = response.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response",
        ));
    };
    if !head.starts_with("HTTP/1.1 200") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("scrape failed: {}", head.lines().next().unwrap_or("")),
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct One;
    impl Collector for One {
        fn collect(&self, out: &mut MetricsBuf) {
            out.gauge("one", "the number one", &[], 1.0);
        }
    }

    #[test]
    fn serves_metrics_and_self_instrumentation() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.register(Arc::new(One));
        let server = MetricsServer::start(Arc::clone(&registry), 0).expect("bind ephemeral");
        let addr = server.local_addr();

        let body = scrape(addr).expect("first scrape");
        assert!(body.contains("# TYPE one gauge\none 1\n"));
        // The second scrape sees the first one's self-instrumentation.
        let body = scrape(addr).expect("second scrape");
        assert!(body.contains("recd_obs_scrapes_total 1\n"));
        assert!(body.contains("recd_obs_scrape_duration_seconds_bucket"));
        server.shutdown();
    }

    #[test]
    fn unknown_path_is_404_and_counted() {
        let registry = Arc::new(MetricsRegistry::new());
        let server = MetricsServer::start(Arc::clone(&registry), 0).expect("bind ephemeral");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 404"));
        let body = scrape(addr).expect("scrape after 404");
        assert!(body.contains("recd_obs_http_not_found_total 1\n"));
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_and_port_is_released() {
        let registry = Arc::new(MetricsRegistry::new());
        let server = MetricsServer::start(registry, 0).expect("bind");
        let addr = server.local_addr();
        server.shutdown();
        // The listener is gone: a fresh bind to the same port succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok());
    }
}
