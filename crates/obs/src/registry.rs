//! The metrics registry: counter/gauge/histogram families assembled from
//! per-tier [`Collector`]s and rendered in the Prometheus text exposition
//! format.
//!
//! The registry holds no metric state of its own — every scrape calls each
//! registered collector, which maps its tier's *existing* snapshot structs
//! into labeled samples. That keeps the hot paths untouched: tiers already
//! maintain atomic counters and gauges for their own reports; observability
//! is a read-only projection of them.
//!
//! Rendering is deterministic: families sort by name, samples sort by their
//! label sets, histogram buckets render cumulatively, and label values are
//! escaped per the exposition-format rules — the conformance tests below pin
//! all of it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The exposition type of one metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonically increasing value (rendered as `counter`).
    Counter,
    /// A value that can go up and down (rendered as `gauge`).
    Gauge,
    /// A bucketed distribution (rendered as `histogram` with cumulative
    /// `_bucket` series plus `_sum` and `_count`).
    Histogram,
}

impl MetricKind {
    fn type_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A point-in-time snapshot of a [`Histogram`]: per-bucket (non-cumulative)
/// counts aligned with the upper bounds, plus the total sum and count.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (`le` values), sorted ascending, all finite.
    pub bounds: Vec<f64>,
    /// Observations per bucket: `counts[i]` counts values in
    /// `(bounds[i-1], bounds[i]]`. Values above the last bound only appear
    /// in `count` (the implicit `+Inf` bucket).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total number of observations (including overflows).
    pub count: u64,
}

/// A concurrent fixed-bucket histogram instrument. Tiers that want a
/// distribution (rather than projecting an existing snapshot struct) observe
/// into one of these and export [`Histogram::snapshot`] from their collector.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per bound plus an overflow slot for values above the last
    /// bound.
    counts: Vec<AtomicU64>,
    /// f64 bits of the running sum, updated by CAS.
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given finite upper bounds (sorted and
    /// deduplicated internally).
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        bounds.dedup();
        let slots = bounds.len() + 1;
        Self {
            bounds,
            counts: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let slot = self.bounds.partition_point(|bound| value > *bound);
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time snapshot for exporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts[..self.bounds.len()]
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// One sample's value: a scalar or a histogram snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// A counter or gauge reading.
    Scalar(f64),
    /// A histogram distribution.
    Histogram(HistogramSnapshot),
}

/// One labeled sample of a metric family.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Label pairs, sorted by key (the sort key for deterministic output).
    pub labels: Vec<(String, String)>,
    /// The sample's value.
    pub value: SampleValue,
}

/// One metric family: a name, help text, a kind, and its labeled samples.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    /// The family name (e.g. `recd_dpp_samples_out_total`).
    pub name: String,
    /// The HELP line text.
    pub help: String,
    /// The exposition type.
    pub kind: MetricKind,
    /// Samples, sorted by label set.
    pub samples: Vec<Sample>,
}

/// The buffer collectors write into during a scrape. Families merge by name;
/// a later sample with the same name *and* label set replaces the earlier
/// one, so output never contains duplicate series.
#[derive(Debug, Default)]
pub struct MetricsBuf {
    families: BTreeMap<String, MetricFamily>,
}

impl MetricsBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        value: SampleValue,
    ) {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        let family = self
            .families
            .entry(name.to_string())
            .or_insert_with(|| MetricFamily {
                name: name.to_string(),
                help: help.to_string(),
                kind,
                samples: Vec::new(),
            });
        debug_assert_eq!(
            family.kind, kind,
            "metric family {name} registered with conflicting kinds"
        );
        if let Some(existing) = family.samples.iter_mut().find(|s| s.labels == labels) {
            existing.value = value;
        } else {
            family.samples.push(Sample { labels, value });
        }
    }

    /// Adds a counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(
            name,
            help,
            MetricKind::Counter,
            labels,
            SampleValue::Scalar(value),
        );
    }

    /// Adds a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(
            name,
            help,
            MetricKind::Gauge,
            labels,
            SampleValue::Scalar(value),
        );
    }

    /// Adds a histogram sample.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snapshot: HistogramSnapshot,
    ) {
        self.push(
            name,
            help,
            MetricKind::Histogram,
            labels,
            SampleValue::Histogram(snapshot),
        );
    }

    /// Finishes the scrape: families in name order, samples in label order.
    pub fn into_families(self) -> Vec<MetricFamily> {
        self.families
            .into_values()
            .map(|mut family| {
                family.samples.sort_by(|a, b| a.labels.cmp(&b.labels));
                family
            })
            .collect()
    }
}

/// A tier that can export its live metrics. Implementations map the tier's
/// existing snapshot structs into samples — they must not block on hot-path
/// locks for longer than a snapshot read.
pub trait Collector: Send + Sync {
    /// Writes this tier's current samples into `out`.
    fn collect(&self, out: &mut MetricsBuf);
}

/// The registry: an ordered set of per-tier collectors, gathered on every
/// scrape.
#[derive(Default)]
pub struct MetricsRegistry {
    collectors: Mutex<Vec<Arc<dyn Collector>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tier's collector. Collectors run in registration order on
    /// each scrape; family merging makes the output order independent of it.
    pub fn register(&self, collector: Arc<dyn Collector>) {
        self.collectors
            .lock()
            .expect("registry lock")
            .push(collector);
    }

    /// Number of registered collectors.
    pub fn sources(&self) -> usize {
        self.collectors.lock().expect("registry lock").len()
    }

    /// Runs every collector and returns the merged, deterministically
    /// ordered families.
    pub fn gather(&self) -> Vec<MetricFamily> {
        let collectors: Vec<Arc<dyn Collector>> =
            self.collectors.lock().expect("registry lock").clone();
        let mut buf = MetricsBuf::new();
        for collector in collectors {
            collector.collect(&mut buf);
        }
        buf.into_families()
    }

    /// Gathers and renders the Prometheus text exposition.
    pub fn render(&self) -> String {
        render_families(&self.gather())
    }
}

/// Escapes a HELP line: backslash and newline.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double quote, and newline.
fn escape_label_value(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats a sample value per the exposition format (`+Inf`, `-Inf`, `NaN`).
fn fmt_value(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value.is_infinite() {
        if value > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{value}")
    }
}

fn fmt_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders families in the Prometheus text exposition format, version 0.0.4.
pub fn render_families(families: &[MetricFamily]) -> String {
    let mut out = String::new();
    for family in families {
        out.push_str(&format!(
            "# HELP {} {}\n# TYPE {} {}\n",
            family.name,
            escape_help(&family.help),
            family.name,
            family.kind.type_name()
        ));
        for sample in &family.samples {
            match &sample.value {
                SampleValue::Scalar(value) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        family.name,
                        fmt_labels(&sample.labels, None),
                        fmt_value(*value)
                    ));
                }
                SampleValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (bound, count) in h.bounds.iter().zip(&h.counts) {
                        cumulative += count;
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            family.name,
                            fmt_labels(&sample.labels, Some(("le", &fmt_value(*bound)))),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        family.name,
                        fmt_labels(&sample.labels, Some(("le", "+Inf"))),
                        h.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        family.name,
                        fmt_labels(&sample.labels, None),
                        fmt_value(h.sum)
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        family.name,
                        fmt_labels(&sample.labels, None),
                        h.count
                    ));
                }
            }
        }
    }
    out
}

/// Looks up a scalar sample by family name and a label subset (every pair in
/// `labels` must match; an empty slice matches the family's first sample).
/// The live-monitor render path and the aggregator's derived metrics both
/// read values through this.
pub fn sample_value(families: &[MetricFamily], name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    let family = families.iter().find(|f| f.name == name)?;
    let sample = family.samples.iter().find(|s| {
        labels
            .iter()
            .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
    })?;
    match &sample.value {
        SampleValue::Scalar(v) => Some(*v),
        SampleValue::Histogram(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(fn(&mut MetricsBuf));
    impl Collector for Fixed {
        fn collect(&self, out: &mut MetricsBuf) {
            (self.0)(out);
        }
    }

    #[test]
    fn help_and_type_lines_precede_samples() {
        let registry = MetricsRegistry::new();
        registry.register(Arc::new(Fixed(|buf| {
            buf.counter("a_total", "counts a", &[], 3.0);
            buf.gauge("b_depth", "depth of b", &[("queue", "input")], 2.0);
        })));
        let text = registry.render();
        let expected = "# HELP a_total counts a\n\
                        # TYPE a_total counter\n\
                        a_total 3\n\
                        # HELP b_depth depth of b\n\
                        # TYPE b_depth gauge\n\
                        b_depth{queue=\"input\"} 2\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn label_and_help_escaping() {
        let mut buf = MetricsBuf::new();
        buf.gauge(
            "x",
            "line1\nline2 back\\slash",
            &[("path", "a\"b\\c\nd")],
            1.0,
        );
        let text = render_families(&buf.into_families());
        assert!(text.contains("# HELP x line1\\nline2 back\\\\slash\n"));
        assert!(text.contains("x{path=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn families_and_samples_order_deterministically() {
        // Two collectors registered in the "wrong" order still render
        // sorted by family name and label set.
        let registry = MetricsRegistry::new();
        registry.register(Arc::new(Fixed(|buf| {
            buf.gauge("zz", "z", &[], 1.0);
            buf.gauge("aa", "a", &[("t", "1")], 1.0);
        })));
        registry.register(Arc::new(Fixed(|buf| {
            buf.gauge("aa", "a", &[("t", "0")], 2.0);
        })));
        let families = registry.gather();
        let names: Vec<&str> = families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["aa", "zz"]);
        let labels: Vec<&str> = families[0]
            .samples
            .iter()
            .map(|s| s.labels[0].1.as_str())
            .collect();
        assert_eq!(labels, ["0", "1"]);
        // Gathering twice renders byte-identically.
        assert_eq!(registry.render(), registry.render());
    }

    #[test]
    fn duplicate_series_last_write_wins() {
        let mut buf = MetricsBuf::new();
        buf.counter("c_total", "c", &[("k", "v")], 1.0);
        buf.counter("c_total", "c", &[("k", "v")], 5.0);
        let families = buf.into_families();
        assert_eq!(families.len(), 1);
        assert_eq!(families[0].samples.len(), 1);
        assert_eq!(families[0].samples[0].value, SampleValue::Scalar(5.0));
    }

    #[test]
    fn histogram_buckets_render_cumulatively() {
        let hist = Histogram::new(&[0.1, 0.5, 1.0]);
        hist.observe(0.05); // bucket le=0.1
        hist.observe(0.3); // bucket le=0.5
        hist.observe(0.4); // bucket le=0.5
        hist.observe(0.5); // boundary value belongs to le=0.5
        hist.observe(2.0); // overflow: only in +Inf
        let mut buf = MetricsBuf::new();
        buf.histogram("lat_seconds", "latency", &[], hist.snapshot());
        let text = render_families(&buf.into_families());
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 1\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.5\"} 4\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 4\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("lat_seconds_count 5\n"));
        // Cumulativity invariant: bucket counts never decrease as le grows.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_seconds_bucket"))
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        let sum: f64 = 0.05 + 0.3 + 0.4 + 0.5 + 2.0;
        assert!(text.contains(&format!("lat_seconds_sum {sum}\n")));
    }

    #[test]
    fn special_values_render_per_format() {
        let mut buf = MetricsBuf::new();
        buf.gauge("g", "g", &[("v", "nan")], f64::NAN);
        buf.gauge("g", "g", &[("v", "pinf")], f64::INFINITY);
        buf.gauge("g", "g", &[("v", "ninf")], f64::NEG_INFINITY);
        let text = render_families(&buf.into_families());
        assert!(text.contains("g{v=\"nan\"} NaN\n"));
        assert!(text.contains("g{v=\"pinf\"} +Inf\n"));
        assert!(text.contains("g{v=\"ninf\"} -Inf\n"));
    }

    #[test]
    fn sample_value_lookup_honors_label_subsets() {
        let mut buf = MetricsBuf::new();
        buf.gauge("q", "q", &[("queue", "input"), ("tier", "dpp")], 4.0);
        buf.gauge("q", "q", &[("queue", "work"), ("tier", "dpp")], 7.0);
        let families = buf.into_families();
        assert_eq!(
            sample_value(&families, "q", &[("queue", "work")]),
            Some(7.0)
        );
        assert_eq!(sample_value(&families, "q", &[]), Some(4.0));
        assert_eq!(sample_value(&families, "missing", &[]), None);
        assert_eq!(sample_value(&families, "q", &[("queue", "absent")]), None);
    }

    #[test]
    fn histogram_concurrent_observations_account_every_value() {
        let hist = Arc::new(Histogram::new(&[10.0, 100.0]));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        hist.observe((t * 250 + i) as f64 % 150.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1000);
        assert!(snap.counts.iter().sum::<u64>() <= snap.count);
    }
}
