//! Dataset characterization (paper §3, Figures 3 and 4).
//!
//! Reproduces, over a generated partition, the three measurements the paper
//! uses to motivate RecD:
//!
//! 1. the histogram of samples per session within the partition and within a
//!    training batch (Figure 3);
//! 2. the percentage of exact and partial duplicate feature values across
//!    sparse features (Figure 4);
//! 3. the byte-weighted exact/partial duplicate totals (81.6% / 89.4% in the
//!    paper).

use recd_codec::hash_ids;
use recd_data::{FeatureClass, Sample, Schema, SessionId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Histogram of the number of samples each session contributes to a scope
/// (a partition or a batch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplesPerSessionHistogram {
    /// `(upper_bound, session_count)` pairs; sessions whose sample count is
    /// `<= upper_bound` (and greater than the previous bound) land in the
    /// bucket. Bounds grow geometrically: 1, 2, 4, 8, ...
    pub buckets: Vec<(u64, usize)>,
    /// Mean samples per session.
    pub mean: f64,
    /// Maximum samples contributed by any single session.
    pub max: u64,
    /// Number of distinct sessions observed.
    pub sessions: usize,
    /// Number of samples observed.
    pub samples: usize,
}

impl SamplesPerSessionHistogram {
    /// Builds the histogram for a slice of samples.
    pub fn from_samples(samples: &[Sample]) -> Self {
        let mut per_session: HashMap<SessionId, u64> = HashMap::new();
        for s in samples {
            *per_session.entry(s.session_id).or_insert(0) += 1;
        }
        let sessions = per_session.len();
        let max = per_session.values().copied().max().unwrap_or(0);
        let mean = if sessions == 0 {
            0.0
        } else {
            samples.len() as f64 / sessions as f64
        };

        // Geometric buckets up to the max count.
        let mut bounds = vec![1u64];
        while *bounds.last().expect("non-empty") < max.max(1) {
            let next = bounds.last().expect("non-empty") * 2;
            bounds.push(next);
        }
        let mut buckets: Vec<(u64, usize)> = bounds.iter().map(|&b| (b, 0)).collect();
        for &count in per_session.values() {
            let idx = buckets
                .iter()
                .position(|&(bound, _)| count <= bound)
                .unwrap_or(buckets.len() - 1);
            buckets[idx].1 += 1;
        }

        Self {
            buckets,
            mean,
            max,
            sessions,
            samples: samples.len(),
        }
    }
}

/// Exact and partial duplication measured for one sparse feature across a
/// partition, computed within sessions (paper Figure 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureDuplication {
    /// Feature name.
    pub name: String,
    /// Whether the feature is a user, item, or context feature.
    pub class: FeatureClass,
    /// Average value-list length observed.
    pub avg_len: f64,
    /// Fraction of samples whose value exactly matches an earlier sample of
    /// the same session (duplicate copies / total samples).
    pub exact_fraction: f64,
    /// Fraction of individual ids that are duplicates of ids already seen in
    /// the same session for this feature.
    pub partial_fraction: f64,
    /// Total ids observed for the feature.
    pub total_values: usize,
}

/// Full §3-style characterization of a partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationReport {
    /// Samples-per-session histogram over the whole partition (Figure 3,
    /// left).
    pub partition_histogram: SamplesPerSessionHistogram,
    /// Samples-per-session histogram within one batch of `batch_size`
    /// samples taken from the partition in storage order (Figure 3, right).
    pub batch_histogram: SamplesPerSessionHistogram,
    /// Batch size used for the batch histogram.
    pub batch_size: usize,
    /// Per-feature duplication, sorted by descending exact fraction.
    pub per_feature: Vec<FeatureDuplication>,
    /// Byte-weighted exact duplicate fraction across all features (paper:
    /// 81.6%).
    pub weighted_exact_fraction: f64,
    /// Byte-weighted partial duplicate fraction across all features (paper:
    /// 89.4%).
    pub weighted_partial_fraction: f64,
}

impl CharacterizationReport {
    /// Mean exact-duplicate fraction across features (unweighted, the
    /// paper's "80.0% on average across all features").
    pub fn mean_exact_fraction(&self) -> f64 {
        if self.per_feature.is_empty() {
            0.0
        } else {
            self.per_feature
                .iter()
                .map(|f| f.exact_fraction)
                .sum::<f64>()
                / self.per_feature.len() as f64
        }
    }

    /// Mean partial-duplicate fraction across features.
    pub fn mean_partial_fraction(&self) -> f64 {
        if self.per_feature.is_empty() {
            0.0
        } else {
            self.per_feature
                .iter()
                .map(|f| f.partial_fraction)
                .sum::<f64>()
                / self.per_feature.len() as f64
        }
    }
}

/// Characterizes a partition: samples-per-session histograms and per-feature
/// exact/partial duplication.
///
/// `samples` must be in the order the partition is stored in (inference-time
/// order for a baseline table, clustered order after the RecD ETL); the batch
/// histogram simply takes the first `batch_size` samples in that order.
pub fn characterize(
    schema: &Schema,
    samples: &[Sample],
    batch_size: usize,
) -> CharacterizationReport {
    let partition_histogram = SamplesPerSessionHistogram::from_samples(samples);
    let batch = &samples[..batch_size.min(samples.len())];
    let batch_histogram = SamplesPerSessionHistogram::from_samples(batch);

    // Group sample indices by session once.
    let mut by_session: HashMap<SessionId, Vec<usize>> = HashMap::new();
    for (idx, s) in samples.iter().enumerate() {
        by_session.entry(s.session_id).or_default().push(idx);
    }

    let mut per_feature = Vec::with_capacity(schema.sparse_count());
    let mut weighted_exact_dups = 0usize;
    let mut weighted_partial_dups = 0usize;
    let mut weighted_total = 0usize;

    for spec in schema.sparse_features() {
        let fi = spec.id.index();
        let mut duplicate_samples = 0usize;
        let mut total_samples = 0usize;
        let mut duplicate_ids = 0usize;
        let mut total_ids = 0usize;

        for indices in by_session.values() {
            // Exact duplicates: samples whose list was already seen in the
            // session (hash + equality confirmation).
            let mut seen_lists: HashMap<u64, Vec<usize>> = HashMap::new();
            // Partial duplicates: individual ids already seen in the session.
            let mut seen_ids: HashSet<u64> = HashSet::new();
            for &idx in indices {
                let value = &samples[idx].sparse[fi];
                total_samples += 1;
                total_ids += value.len();

                let digest = hash_ids(value);
                let candidates = seen_lists.entry(digest).or_default();
                let exact = candidates
                    .iter()
                    .any(|&earlier| samples[earlier].sparse[fi] == *value);
                if exact {
                    duplicate_samples += 1;
                } else {
                    candidates.push(idx);
                }

                for &id in value {
                    if !seen_ids.insert(id) {
                        duplicate_ids += 1;
                    }
                }
            }
        }

        let exact_fraction = if total_samples == 0 {
            0.0
        } else {
            duplicate_samples as f64 / total_samples as f64
        };
        let partial_fraction = if total_ids == 0 {
            0.0
        } else {
            duplicate_ids as f64 / total_ids as f64
        };
        let avg_len = if total_samples == 0 {
            0.0
        } else {
            total_ids as f64 / total_samples as f64
        };

        // Byte weighting: exact duplicates contribute their full list length.
        weighted_exact_dups += (exact_fraction * total_ids as f64) as usize;
        weighted_partial_dups += duplicate_ids;
        weighted_total += total_ids;

        per_feature.push(FeatureDuplication {
            name: spec.name.clone(),
            class: spec.class,
            avg_len,
            exact_fraction,
            partial_fraction,
            total_values: total_ids,
        });
    }

    per_feature.sort_by(|a, b| {
        b.exact_fraction
            .partial_cmp(&a.exact_fraction)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let weighted_exact_fraction = if weighted_total == 0 {
        0.0
    } else {
        weighted_exact_dups as f64 / weighted_total as f64
    };
    let weighted_partial_fraction = if weighted_total == 0 {
        0.0
    } else {
        weighted_partial_dups as f64 / weighted_total as f64
    };

    CharacterizationReport {
        partition_histogram,
        batch_histogram,
        batch_size,
        per_feature,
        weighted_exact_fraction,
        weighted_partial_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{WorkloadConfig, WorkloadPreset};
    use crate::generator::DatasetGenerator;

    #[test]
    fn histogram_counts_sessions_and_mean() {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        let partition = gen.generate_partition();
        let hist = SamplesPerSessionHistogram::from_samples(&partition.samples);
        assert_eq!(hist.sessions, partition.sessions);
        assert_eq!(hist.samples, partition.len());
        assert!((hist.mean - partition.samples_per_session()).abs() < 1e-9);
        let bucketed: usize = hist.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(bucketed, hist.sessions);
        assert!(hist.max >= 1);
    }

    #[test]
    fn interleaved_batches_have_few_samples_per_session() {
        // Reproduces the Figure 3 contrast: the partition has a high mean
        // samples-per-session while a storage-order batch has close to 1.
        let gen =
            DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Small).with_sessions(300));
        let partition = gen.generate_partition();
        let report = characterize(&partition.schema, &partition.samples, 512);
        assert!(report.partition_histogram.mean > 5.0);
        assert!(
            report.batch_histogram.mean < report.partition_histogram.mean / 3.0,
            "interleaved batch should have far fewer samples per session ({}) than the partition ({})",
            report.batch_histogram.mean,
            report.partition_histogram.mean
        );
    }

    #[test]
    fn user_features_dominate_duplication() {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        let partition = gen.generate_partition();
        let report = characterize(&partition.schema, &partition.samples, 256);

        let user_exact: Vec<f64> = report
            .per_feature
            .iter()
            .filter(|f| f.class == FeatureClass::User)
            .map(|f| f.exact_fraction)
            .collect();
        let item_exact: Vec<f64> = report
            .per_feature
            .iter()
            .filter(|f| f.class == FeatureClass::Item)
            .map(|f| f.exact_fraction)
            .collect();
        let user_mean = user_exact.iter().sum::<f64>() / user_exact.len() as f64;
        let item_mean = item_exact.iter().sum::<f64>() / item_exact.len() as f64;
        assert!(
            user_mean > 0.5,
            "user features should be mostly duplicated, got {user_mean}"
        );
        assert!(
            item_mean < 0.3,
            "item features should rarely duplicate, got {item_mean}"
        );

        // Partial duplication captures at least as much as exact duplication.
        assert!(report.weighted_partial_fraction >= report.weighted_exact_fraction - 1e-9);
        assert!(report.mean_partial_fraction() >= 0.0);
        assert!(report.mean_exact_fraction() <= 1.0);
    }

    #[test]
    fn empty_partition_characterization() {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        let schema = gen.schema().clone();
        let report = characterize(&schema, &[], 128);
        assert_eq!(report.partition_histogram.sessions, 0);
        assert_eq!(report.weighted_exact_fraction, 0.0);
        assert_eq!(report.mean_exact_fraction(), 0.0);
        assert!(report.per_feature.iter().all(|f| f.total_values == 0));
    }
}
