//! # recd-datagen
//!
//! Session-centric synthetic workload generation for the RecD reproduction.
//!
//! The paper characterizes a proprietary O(100 PB) DLRM dataset; this crate
//! substitutes a generator that reproduces the *statistical structure* that
//! matters to RecD:
//!
//! * each user session produces a heavy-tailed number of training samples
//!   (mean ≈ 16.5 in the paper, configurable here);
//! * user-class sparse features rarely change across a session's samples
//!   (high stay probability `d(f)`), and when they do change they shift like
//!   a sliding interaction history;
//! * item-class sparse features change on almost every impression;
//! * samples from different sessions interleave in inference-time order, so
//!   a naive batch contains ≈ 1 sample per session until the ETL clusters
//!   them.
//!
//! [`WorkloadConfig`] describes the workload, [`DatasetGenerator`] produces
//! raw logs and hourly partitions of [`Sample`](recd_data::Sample)s, and
//! [`characterize`] reproduces the paper's §3 dataset characterization
//! (Figures 3 and 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod config;
pub mod distributions;
pub mod generator;
pub mod session;

pub use characterize::{
    characterize, CharacterizationReport, FeatureDuplication, SamplesPerSessionHistogram,
};
pub use config::{DedupPolicy, FeatureProfile, WorkloadConfig, WorkloadPreset};
pub use distributions::{LogNormalSampler, PowerLawIdSampler};
pub use generator::{DatasetGenerator, GeneratedPartition};
pub use session::SessionGenerator;
