//! Small samplers used by the workload generator.

use rand::Rng;

/// Samples a heavy-tailed positive integer from a discretized log-normal
/// distribution, used for the number of samples a session generates.
///
/// The paper's Figure 3 shows a mean of 16.5 samples per session within an
/// hourly partition with a tail beyond 1000; a log-normal with
/// `sigma ≈ 1.4–1.6` reproduces that shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormalSampler {
    mu: f64,
    sigma: f64,
}

impl LogNormalSampler {
    /// Creates a sampler from the distribution's natural parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        Self {
            mu,
            sigma: sigma.max(1e-6),
        }
    }

    /// Creates a sampler whose distribution has the requested arithmetic
    /// mean, given the log-space standard deviation `sigma`.
    pub fn with_mean(mean: f64, sigma: f64) -> Self {
        let sigma = sigma.max(1e-6);
        let mu = mean.max(1.0).ln() - sigma * sigma / 2.0;
        Self::new(mu, sigma)
    }

    /// Draws a sample, rounded to an integer and clamped to at least 1.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Box-Muller transform over two uniforms.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let value = (self.mu + self.sigma * z).exp();
        value.round().max(1.0) as u64
    }
}

/// Samples categorical ids with a skewed (power-law-like) popularity, so a
/// few ids are hot and most are cold — the shape real DLRM id spaces have.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawIdSampler {
    cardinality: u64,
    skew: f64,
}

impl PowerLawIdSampler {
    /// Creates a sampler over `[0, cardinality)` with the given skew
    /// exponent (larger = more skewed; 0 = uniform).
    pub fn new(cardinality: u64, skew: f64) -> Self {
        Self {
            cardinality: cardinality.max(1),
            skew: skew.max(0.0),
        }
    }

    /// Draws one id.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        // Inverse-transform of a bounded Pareto-like CDF: u^(1+skew) pushes
        // mass toward small ids.
        let skewed = u.powf(1.0 + self.skew);
        ((skewed * self.cardinality as f64) as u64).min(self.cardinality - 1)
    }

    /// Draws a list of `len` ids.
    pub fn sample_list<R: Rng + ?Sized>(&self, rng: &mut R, len: usize) -> Vec<u64> {
        (0..len).map(|_| self.sample(rng)).collect()
    }

    /// The id-space size.
    pub fn cardinality(&self) -> u64 {
        self.cardinality
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_mean_is_close_to_target() {
        let sampler = LogNormalSampler::with_mean(16.5, 1.4);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let total: u64 = (0..n).map(|_| sampler.sample(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 16.5).abs() < 1.5,
            "empirical mean {mean} too far from 16.5"
        );
    }

    #[test]
    fn lognormal_has_a_heavy_tail_but_never_returns_zero() {
        let sampler = LogNormalSampler::with_mean(16.5, 1.5);
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<u64> = (0..100_000).map(|_| sampler.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| s >= 1));
        assert!(
            samples.iter().any(|&s| s > 300),
            "expected a tail beyond 300 samples per session"
        );
    }

    #[test]
    fn power_law_ids_stay_in_range_and_are_skewed() {
        let sampler = PowerLawIdSampler::new(1000, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<u64> = (0..50_000).map(|_| sampler.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&id| id < 1000));
        let small_fraction =
            samples.iter().filter(|&&id| id < 100).count() as f64 / samples.len() as f64;
        assert!(
            small_fraction > 0.3,
            "skewed sampler should favor small ids, got {small_fraction}"
        );
        assert_eq!(sampler.cardinality(), 1000);
    }

    #[test]
    fn degenerate_cardinality() {
        let sampler = PowerLawIdSampler::new(0, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(sampler.sample(&mut rng), 0);
        assert_eq!(sampler.sample_list(&mut rng, 3), vec![0, 0, 0]);
    }
}
