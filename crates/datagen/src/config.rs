//! Workload configuration: how many sessions, how long they are, and what
//! the feature schema looks like.

use recd_data::{DedupGroupId, FeatureClass, Schema};
use serde::{Deserialize, Serialize};

/// How the features described by a [`FeatureProfile`] are assigned to IKJT
/// dedup groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DedupPolicy {
    /// Features stay in KJT form (no deduplication).
    None,
    /// Each feature gets its own single-feature IKJT group.
    Individual,
    /// Features are distributed round-robin into this many shared groups
    /// (the paper's grouped IKJTs for synchronously-updated sequences).
    Grouped(u32),
}

/// Describes one family of sparse features sharing the same statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureProfile {
    /// Prefix for generated feature names (`"{prefix}_{i}"`).
    pub name_prefix: String,
    /// Number of features generated from this profile.
    pub count: usize,
    /// Whether the features reflect user, item, or context traits.
    pub class: FeatureClass,
    /// Average list length `l(f)`.
    pub avg_len: usize,
    /// Probability `d(f)` that the value stays identical across adjacent
    /// impressions of a session.
    pub stay_prob: f64,
    /// Categorical id space size.
    pub cardinality: u64,
    /// Embedding dimension used by the trainer for these features.
    pub embedding_dim: usize,
    /// How the features are assigned to dedup groups.
    pub dedup: DedupPolicy,
}

impl FeatureProfile {
    /// A long user interaction-history sequence feature family (high
    /// duplication, long lists).
    pub fn user_sequence(count: usize, avg_len: usize, groups: u32) -> Self {
        Self {
            name_prefix: "user_seq".to_string(),
            count,
            class: FeatureClass::User,
            avg_len,
            stay_prob: 0.95,
            cardinality: 1 << 22,
            embedding_dim: 128,
            dedup: DedupPolicy::Grouped(groups),
        }
    }

    /// A short element-wise pooled user feature family (high duplication,
    /// short lists) — the "additional ≈100 features" each RM deduplicates.
    pub fn user_elementwise(count: usize) -> Self {
        Self {
            name_prefix: "user_ew".to_string(),
            count,
            class: FeatureClass::User,
            avg_len: 4,
            stay_prob: 0.85,
            cardinality: 1 << 20,
            embedding_dim: 64,
            dedup: DedupPolicy::Individual,
        }
    }

    /// An item feature family (low duplication, typically length 1).
    pub fn item(count: usize) -> Self {
        Self {
            name_prefix: "item".to_string(),
            count,
            class: FeatureClass::Item,
            avg_len: 1,
            stay_prob: 0.05,
            cardinality: 1 << 24,
            embedding_dim: 64,
            dedup: DedupPolicy::None,
        }
    }
}

/// Named workload presets used throughout the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadPreset {
    /// A tiny workload for unit tests and doc examples.
    Tiny,
    /// A small but statistically representative workload (CI-sized).
    Small,
    /// A wide-schema workload for the §3 dataset characterization
    /// (Figures 3 and 4).
    Characterization,
}

/// Full description of a synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of user sessions to generate.
    pub sessions: usize,
    /// Target mean of the samples-per-session distribution (paper: 16.5).
    pub samples_per_session_mean: f64,
    /// Log-space standard deviation of the samples-per-session distribution.
    pub samples_per_session_sigma: f64,
    /// Number of dense (float) features.
    pub dense_features: usize,
    /// Sparse feature families.
    pub profiles: Vec<FeatureProfile>,
    /// Probability that an impression is labeled positive.
    pub positive_rate: f64,
    /// Milliseconds between consecutive impressions of one session.
    pub impression_gap_ms: u64,
    /// Length of the generated partition window in milliseconds (sessions
    /// start uniformly at random within it).
    pub window_ms: u64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl WorkloadConfig {
    /// Builds a preset workload.
    pub fn preset(preset: WorkloadPreset) -> Self {
        match preset {
            WorkloadPreset::Tiny => Self {
                sessions: 40,
                samples_per_session_mean: 6.0,
                samples_per_session_sigma: 0.8,
                dense_features: 4,
                profiles: vec![
                    FeatureProfile::user_sequence(2, 16, 1),
                    FeatureProfile::user_elementwise(4),
                    FeatureProfile::item(2),
                ],
                positive_rate: 0.2,
                impression_gap_ms: 300_000,
                window_ms: recd_data::Timestamp::MILLIS_PER_HOUR,
                seed: 42,
            },
            WorkloadPreset::Small => Self {
                sessions: 400,
                samples_per_session_mean: 16.5,
                samples_per_session_sigma: 1.2,
                dense_features: 8,
                profiles: vec![
                    FeatureProfile::user_sequence(4, 64, 2),
                    FeatureProfile::user_elementwise(16),
                    FeatureProfile::item(4),
                ],
                positive_rate: 0.1,
                impression_gap_ms: 300_000,
                window_ms: recd_data::Timestamp::MILLIS_PER_HOUR,
                seed: 7,
            },
            WorkloadPreset::Characterization => Self {
                sessions: 2_000,
                samples_per_session_mean: 16.5,
                samples_per_session_sigma: 1.4,
                dense_features: 16,
                profiles: vec![
                    FeatureProfile::user_sequence(8, 96, 4),
                    FeatureProfile::user_elementwise(48),
                    FeatureProfile::item(16),
                ],
                positive_rate: 0.1,
                impression_gap_ms: 240_000,
                window_ms: recd_data::Timestamp::MILLIS_PER_HOUR,
                seed: 13,
            },
        }
    }

    /// Overrides the number of sessions (builder-style).
    #[must_use]
    pub fn with_sessions(mut self, sessions: usize) -> Self {
        self.sessions = sessions;
        self
    }

    /// Overrides the RNG seed (builder-style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the mean samples per session (builder-style).
    #[must_use]
    pub fn with_samples_per_session(mut self, mean: f64) -> Self {
        self.samples_per_session_mean = mean;
        self
    }

    /// Total number of sparse features across all profiles.
    pub fn sparse_feature_count(&self) -> usize {
        self.profiles.iter().map(|p| p.count).sum()
    }

    /// Builds the dataset [`Schema`] implied by this workload: one sparse
    /// feature per profile slot, with dedup groups assigned according to each
    /// profile's [`DedupPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if two profiles generate the same feature name (profiles ship
    /// with distinct prefixes, so this only happens with hand-built configs
    /// that reuse a prefix).
    pub fn schema(&self) -> Schema {
        let mut builder = Schema::builder();
        for i in 0..self.dense_features {
            builder = builder.dense(&format!("dense_{i}"));
        }
        let mut next_group: u32 = 0;
        // First pass: count groups.
        for profile in &self.profiles {
            match profile.dedup {
                DedupPolicy::None => {}
                DedupPolicy::Individual => next_group += profile.count as u32,
                DedupPolicy::Grouped(groups) => next_group += groups.min(profile.count as u32),
            }
        }
        builder = builder.dedup_groups(next_group);

        let mut group_cursor: u32 = 0;
        for profile in &self.profiles {
            let groups_for_profile = match profile.dedup {
                DedupPolicy::None => 0,
                DedupPolicy::Individual => profile.count as u32,
                DedupPolicy::Grouped(groups) => groups.min(profile.count as u32),
            };
            for i in 0..profile.count {
                let group = match profile.dedup {
                    DedupPolicy::None => None,
                    DedupPolicy::Individual => Some(DedupGroupId::new(group_cursor + i as u32)),
                    DedupPolicy::Grouped(_) => Some(DedupGroupId::new(
                        group_cursor + (i as u32 % groups_for_profile.max(1)),
                    )),
                };
                builder = builder.sparse_with(
                    &format!("{}_{i}", profile.name_prefix),
                    profile.class,
                    profile.avg_len as f64,
                    profile.stay_prob,
                    profile.cardinality,
                    profile.embedding_dim,
                    group,
                );
            }
            group_cursor += groups_for_profile;
        }
        builder.build().expect("workload schema must be valid")
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self::preset(WorkloadPreset::Small)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_valid_schemas() {
        for preset in [
            WorkloadPreset::Tiny,
            WorkloadPreset::Small,
            WorkloadPreset::Characterization,
        ] {
            let config = WorkloadConfig::preset(preset);
            let schema = config.schema();
            assert_eq!(schema.sparse_count(), config.sparse_feature_count());
            assert_eq!(schema.dense_count(), config.dense_features);
            assert!(schema.dedup_group_count() > 0);
        }
    }

    #[test]
    fn grouped_policy_assigns_round_robin() {
        let config = WorkloadConfig::preset(WorkloadPreset::Small);
        let schema = config.schema();
        // The 4 user_seq features are spread over 2 groups, 2 features each.
        let groups = schema.groups();
        let seq_groups: Vec<_> = groups
            .iter()
            .filter(|(_, members)| members.len() == 2)
            .collect();
        assert_eq!(seq_groups.len(), 2);
        // Item features are never deduplicated.
        for spec in schema.sparse_features() {
            if spec.name.starts_with("item") {
                assert!(spec.dedup_group.is_none());
            } else {
                assert!(spec.dedup_group.is_some());
            }
        }
    }

    #[test]
    fn builder_overrides() {
        let config = WorkloadConfig::default()
            .with_sessions(10)
            .with_seed(99)
            .with_samples_per_session(4.0);
        assert_eq!(config.sessions, 10);
        assert_eq!(config.seed, 99);
        assert_eq!(config.samples_per_session_mean, 4.0);
    }

    #[test]
    fn individual_policy_gives_each_feature_its_own_group() {
        let config = WorkloadConfig {
            profiles: vec![FeatureProfile::user_elementwise(5)],
            ..WorkloadConfig::preset(WorkloadPreset::Tiny)
        };
        let schema = config.schema();
        assert_eq!(schema.dedup_group_count(), 5);
        for (_, members) in schema.groups() {
            assert_eq!(members.len(), 1);
        }
    }
}
