//! Per-session feature evolution.
//!
//! A session holds the current value of every user feature. Each impression
//! either keeps a feature's value (probability `d(f)`, the stay probability)
//! or updates it; sequence features update by *shifting* (append one new id,
//! drop the oldest), which is what produces the paper's partial duplicates.

use crate::config::WorkloadConfig;
use crate::distributions::PowerLawIdSampler;
use rand::Rng;
use recd_data::{
    EventLog, FeatureClass, FeatureLog, RequestId, Sample, Schema, SessionId, Timestamp,
};

/// The evolving state of one user session.
#[derive(Debug, Clone)]
pub struct SessionState {
    /// The session's identifier.
    pub session_id: SessionId,
    /// Time of the session's first impression.
    pub start: Timestamp,
    /// Number of impressions this session will generate.
    pub impressions: usize,
    /// Current value of every sparse feature (schema order).
    current_sparse: Vec<Vec<u64>>,
    /// Current value of every dense feature (schema order).
    current_dense: Vec<f32>,
}

/// Generates the samples (or raw logs) of one session at a time.
#[derive(Debug, Clone)]
pub struct SessionGenerator {
    config: WorkloadConfig,
    schema: Schema,
    id_samplers: Vec<PowerLawIdSampler>,
}

impl SessionGenerator {
    /// Creates a generator for the given workload.
    pub fn new(config: WorkloadConfig) -> Self {
        let schema = config.schema();
        let id_samplers = schema
            .sparse_features()
            .iter()
            .map(|spec| PowerLawIdSampler::new(spec.cardinality, 1.5))
            .collect();
        Self {
            config,
            schema,
            id_samplers,
        }
    }

    /// Borrows the dataset schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Borrows the workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Initializes a session: samples its length, start time, and initial
    /// feature values.
    pub fn start_session<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        session_id: SessionId,
        impressions: usize,
    ) -> SessionState {
        let start = Timestamp::from_millis(rng.gen_range(0..self.config.window_ms.max(1)));
        let current_sparse = self
            .schema
            .sparse_features()
            .iter()
            .zip(&self.id_samplers)
            .map(|(spec, sampler)| sampler.sample_list(rng, spec.avg_len.max(1.0) as usize))
            .collect();
        let current_dense = (0..self.config.dense_features)
            .map(|_| rng.gen_range(0.0..1.0))
            .collect();
        SessionState {
            session_id,
            start,
            impressions,
            current_sparse,
            current_dense,
        }
    }

    /// Produces the sample for impression `index` of a session, mutating the
    /// session state according to each feature's stay probability.
    pub fn next_sample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        state: &mut SessionState,
        index: usize,
        request_id: RequestId,
    ) -> Sample {
        // Evolve features (the first impression uses the initial values).
        if index > 0 {
            for (feature_idx, spec) in self.schema.sparse_features().iter().enumerate() {
                let stays = rng.gen_bool(spec.stay_prob.clamp(0.0, 1.0));
                if stays {
                    continue;
                }
                let sampler = &self.id_samplers[feature_idx];
                let value = &mut state.current_sparse[feature_idx];
                match spec.class {
                    FeatureClass::User | FeatureClass::Context => {
                        // Shift: append a new id, drop the oldest, keeping the
                        // length stable — the sliding-history update.
                        value.push(sampler.sample(rng));
                        if value.len() > spec.avg_len.max(1.0) as usize {
                            value.remove(0);
                        }
                    }
                    FeatureClass::Item => {
                        // Item features are resampled wholesale: a different
                        // candidate item is being ranked.
                        *value = sampler.sample_list(rng, spec.avg_len.max(1.0) as usize);
                    }
                }
            }
            // Dense features drift slightly every impression.
            for v in &mut state.current_dense {
                *v = (*v + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0);
            }
        }

        let timestamp = state
            .start
            .advanced_by(index as u64 * self.config.impression_gap_ms);
        let label = if rng.gen_bool(self.config.positive_rate.clamp(0.0, 1.0)) {
            1.0
        } else {
            0.0
        };
        Sample::builder(state.session_id, request_id, timestamp)
            .label(label)
            .dense(state.current_dense.clone())
            .sparse(state.current_sparse.clone())
            .build()
    }

    /// Splits a sample into the raw feature/event log pair the inference tier
    /// would emit for it.
    pub fn to_logs(sample: &Sample) -> (FeatureLog, EventLog) {
        (
            FeatureLog {
                request_id: sample.request_id,
                session_id: sample.session_id,
                timestamp: sample.timestamp,
                dense: sample.dense.clone(),
                sparse: sample.sparse.clone(),
            },
            EventLog {
                request_id: sample.request_id,
                session_id: sample.session_id,
                // Outcomes are observed shortly after the impression.
                timestamp: sample.timestamp.advanced_by(500),
                label: sample.label,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadPreset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn generator() -> SessionGenerator {
        SessionGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny))
    }

    #[test]
    fn session_samples_share_session_id_and_advance_in_time() {
        let gen = generator();
        let mut rng = StdRng::seed_from_u64(1);
        let mut state = gen.start_session(&mut rng, SessionId::new(9), 5);
        let samples: Vec<Sample> = (0..5)
            .map(|i| gen.next_sample(&mut rng, &mut state, i, RequestId::new(i as u64)))
            .collect();
        assert!(samples.iter().all(|s| s.session_id == SessionId::new(9)));
        assert!(samples.windows(2).all(|w| w[0].timestamp < w[1].timestamp));
        let schema = gen.schema();
        for s in &samples {
            assert!(schema.validate_sample(s).is_ok());
        }
    }

    #[test]
    fn user_features_are_mostly_duplicated_item_features_are_not() {
        let gen = generator();
        let schema = gen.schema().clone();
        let mut rng = StdRng::seed_from_u64(2);
        let mut user_dups = 0usize;
        let mut user_total = 0usize;
        let mut item_dups = 0usize;
        let mut item_total = 0usize;
        for session in 0..50u64 {
            let mut state = gen.start_session(&mut rng, SessionId::new(session), 10);
            let samples: Vec<Sample> = (0..10)
                .map(|i| {
                    gen.next_sample(
                        &mut rng,
                        &mut state,
                        i,
                        RequestId::new(session * 100 + i as u64),
                    )
                })
                .collect();
            for spec in schema.sparse_features() {
                for pair in samples.windows(2) {
                    let same = pair[0].sparse[spec.id.index()] == pair[1].sparse[spec.id.index()];
                    match spec.class {
                        FeatureClass::User | FeatureClass::Context => {
                            user_total += 1;
                            if same {
                                user_dups += 1;
                            }
                        }
                        FeatureClass::Item => {
                            item_total += 1;
                            if same {
                                item_dups += 1;
                            }
                        }
                    }
                }
            }
        }
        let user_rate = user_dups as f64 / user_total as f64;
        let item_rate = item_dups as f64 / item_total as f64;
        assert!(
            user_rate > 0.7,
            "user duplication rate too low: {user_rate}"
        );
        assert!(
            item_rate < 0.3,
            "item duplication rate too high: {item_rate}"
        );
    }

    #[test]
    fn sequence_updates_are_shifts_not_rewrites() {
        let gen = generator();
        let schema = gen.schema().clone();
        let seq_feature = schema
            .sparse_features()
            .iter()
            .find(|f| f.name.starts_with("user_seq"))
            .unwrap()
            .id;
        let mut rng = StdRng::seed_from_u64(3);
        let mut state = gen.start_session(&mut rng, SessionId::new(1), 40);
        let samples: Vec<Sample> = (0..40)
            .map(|i| gen.next_sample(&mut rng, &mut state, i, RequestId::new(i as u64)))
            .collect();
        // When the value changes, the overlap with the previous value must be
        // nearly complete (a single-element shift).
        for pair in samples.windows(2) {
            let prev = &pair[0].sparse[seq_feature.index()];
            let next = &pair[1].sparse[seq_feature.index()];
            if prev != next {
                let shared = next.iter().filter(|id| prev.contains(id)).count();
                assert!(
                    shared * 10 >= next.len() * 8,
                    "sequence update should preserve most ids"
                );
            }
        }
    }

    #[test]
    fn logs_round_trip_the_sample_content() {
        let gen = generator();
        let mut rng = StdRng::seed_from_u64(4);
        let mut state = gen.start_session(&mut rng, SessionId::new(2), 1);
        let sample = gen.next_sample(&mut rng, &mut state, 0, RequestId::new(77));
        let (features, event) = SessionGenerator::to_logs(&sample);
        assert_eq!(features.request_id, sample.request_id);
        assert_eq!(features.sparse, sample.sparse);
        assert_eq!(event.label, sample.label);
        assert!(event.timestamp > sample.timestamp);
    }
}
