//! Top-level dataset generation: whole partitions of interleaved samples and
//! the raw log streams that produce them.

use crate::config::WorkloadConfig;
use crate::distributions::LogNormalSampler;
use crate::session::SessionGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use recd_data::{LogRecord, RequestId, Sample, SampleBatch, Schema, SessionId};

/// One generated hourly partition: the schema and its samples in
/// inference-time order (sessions interleaved, as the baseline pipeline
/// stores them).
#[derive(Debug, Clone)]
pub struct GeneratedPartition {
    /// The dataset schema the samples conform to.
    pub schema: Schema,
    /// Samples ordered by impression timestamp (interleaved across sessions).
    pub samples: Vec<Sample>,
    /// Number of sessions that produced the samples.
    pub sessions: usize,
}

impl GeneratedPartition {
    /// Number of samples in the partition.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns true if the partition holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The partition's samples as a batch (preserving interleaved order).
    pub fn to_batch(&self) -> SampleBatch {
        SampleBatch::new(self.samples.clone())
    }

    /// Average samples per session across the partition.
    pub fn samples_per_session(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.samples.len() as f64 / self.sessions as f64
        }
    }

    /// Total payload bytes of the partition's samples.
    pub fn payload_bytes(&self) -> usize {
        self.samples.iter().map(Sample::payload_bytes).sum()
    }
}

/// Generates synthetic session-centric datasets.
#[derive(Debug, Clone)]
pub struct DatasetGenerator {
    session_gen: SessionGenerator,
    length_sampler: LogNormalSampler,
}

impl DatasetGenerator {
    /// Creates a generator for the given workload.
    pub fn new(config: WorkloadConfig) -> Self {
        let length_sampler = LogNormalSampler::with_mean(
            config.samples_per_session_mean,
            config.samples_per_session_sigma,
        );
        Self {
            session_gen: SessionGenerator::new(config),
            length_sampler,
        }
    }

    /// Borrows the dataset schema.
    pub fn schema(&self) -> &Schema {
        self.session_gen.schema()
    }

    /// Borrows the workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        self.session_gen.config()
    }

    /// Generates one hourly partition of samples, ordered by inference time
    /// (the baseline, session-interleaved order).
    pub fn generate_partition(&self) -> GeneratedPartition {
        let config = self.session_gen.config().clone();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut samples: Vec<Sample> = Vec::new();
        let mut next_request: u64 = 0;

        for session_idx in 0..config.sessions {
            let impressions = self.length_sampler.sample(&mut rng) as usize;
            let session_id = SessionId::new(session_idx as u64 + 1);
            let mut state = self
                .session_gen
                .start_session(&mut rng, session_id, impressions);
            for i in 0..impressions {
                let sample = self.session_gen.next_sample(
                    &mut rng,
                    &mut state,
                    i,
                    RequestId::new(next_request),
                );
                next_request += 1;
                samples.push(sample);
            }
        }

        // The data generation infrastructure orders samples by inference
        // time, which interleaves sessions (paper §3).
        samples.sort_by_key(|s| (s.timestamp, s.request_id));

        GeneratedPartition {
            schema: self.schema().clone(),
            samples,
            sessions: config.sessions,
        }
    }

    /// Generates the raw inference-time log stream (feature logs and event
    /// logs, interleaved by timestamp) corresponding to one partition.
    ///
    /// This is the input to the Scribe and ETL substrates; joining the two
    /// log kinds on request id reproduces exactly the samples of
    /// [`DatasetGenerator::generate_partition`].
    pub fn generate_logs(&self) -> (Vec<LogRecord>, GeneratedPartition) {
        let partition = self.generate_partition();
        let mut records: Vec<LogRecord> = Vec::with_capacity(partition.samples.len() * 2);
        for sample in &partition.samples {
            let (features, event) = SessionGenerator::to_logs(sample);
            records.push(LogRecord::Feature(features));
            records.push(LogRecord::Event(event));
        }
        records.sort_by_key(|r| (r.timestamp(), r.request_id().raw()));
        (records, partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadPreset;
    use std::collections::HashSet;

    #[test]
    fn partition_is_time_ordered_and_interleaved() {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        let partition = gen.generate_partition();
        assert!(!partition.is_empty());
        assert!(partition
            .samples
            .windows(2)
            .all(|w| w[0].timestamp <= w[1].timestamp));

        // Samples per session should be near the configured mean.
        let mean = partition.samples_per_session();
        assert!(mean > 2.0 && mean < 20.0, "unexpected mean {mean}");

        // Adjacent samples mostly come from different sessions (interleaving).
        let adjacent_same_session = partition
            .samples
            .windows(2)
            .filter(|w| w[0].session_id == w[1].session_id)
            .count();
        assert!(
            (adjacent_same_session as f64) < 0.5 * partition.len() as f64,
            "interleaving should separate most of a session's samples"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = WorkloadConfig::preset(WorkloadPreset::Tiny);
        let a = DatasetGenerator::new(config.clone()).generate_partition();
        let b = DatasetGenerator::new(config).generate_partition();
        assert_eq!(a.samples, b.samples);
        let c = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny).with_seed(1234))
            .generate_partition();
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn request_ids_are_unique_and_samples_validate() {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        let partition = gen.generate_partition();
        let ids: HashSet<_> = partition.samples.iter().map(|s| s.request_id).collect();
        assert_eq!(ids.len(), partition.len());
        for sample in &partition.samples {
            partition.schema.validate_sample(sample).unwrap();
        }
    }

    #[test]
    fn log_stream_matches_partition() {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        let (records, partition) = gen.generate_logs();
        assert_eq!(records.len(), partition.len() * 2);
        let feature_count = records
            .iter()
            .filter(|r| matches!(r, LogRecord::Feature(_)))
            .count();
        assert_eq!(feature_count, partition.len());
        assert!(records
            .windows(2)
            .all(|w| w[0].timestamp() <= w[1].timestamp()));
    }

    #[test]
    fn batch_conversion_preserves_order() {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        let partition = gen.generate_partition();
        let batch = partition.to_batch();
        assert_eq!(batch.len(), partition.len());
        assert_eq!(batch.samples()[0], partition.samples[0]);
        assert!(partition.payload_bytes() > 0);
    }
}
