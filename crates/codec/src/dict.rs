//! Dictionary encoding for columns with repeated values.
//!
//! The paper notes that IKJTs "use a similar encoding mechanism to dictionary
//! encoding commonly used in file formats such as Parquet" (§8). The storage
//! layer uses this module to encode flattened id-list columns: distinct
//! values are collected into a dictionary and each occurrence is replaced by
//! its code, which is then varint-encoded.

use crate::varint;
use crate::{CodecError, Result};
use std::collections::HashMap;

/// A value dictionary built from a column of `u64` values.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dictionary {
    entries: Vec<u64>,
    codes: HashMap<u64, u64>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a dictionary from the distinct values of a column, assigning
    /// codes in first-seen order.
    pub fn build(values: &[u64]) -> Self {
        let mut dict = Self::new();
        for &v in values {
            dict.intern(v);
        }
        dict
    }

    /// Returns the code for `value`, adding it to the dictionary if missing.
    pub fn intern(&mut self, value: u64) -> u64 {
        if let Some(&code) = self.codes.get(&value) {
            return code;
        }
        let code = self.entries.len() as u64;
        self.entries.push(value);
        self.codes.insert(value, code);
        code
    }

    /// Returns the code for `value` if it is present.
    pub fn code(&self, value: u64) -> Option<u64> {
        self.codes.get(&value).copied()
    }

    /// Returns the value for `code`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidDictionaryCode`] if the code is out of
    /// range.
    pub fn value(&self, code: u64) -> Result<u64> {
        self.entries
            .get(code as usize)
            .copied()
            .ok_or(CodecError::InvalidDictionaryCode {
                code,
                len: self.entries.len(),
            })
    }

    /// Number of distinct values in the dictionary.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Borrows the dictionary entries in code order.
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }
}

/// Dictionary-encodes a column: returns the serialized dictionary followed by
/// the varint-encoded code stream.
pub fn encode(values: &[u64]) -> Vec<u8> {
    let mut dict = Dictionary::new();
    let codes: Vec<u64> = values.iter().map(|&v| dict.intern(v)).collect();
    let mut out = Vec::new();
    out.extend_from_slice(&varint::encode_u64_slice(dict.entries()));
    out.extend_from_slice(&varint::encode_u64_slice(&codes));
    out
}

/// Decodes a column produced by [`encode`], returning the values and the
/// number of bytes consumed.
///
/// # Errors
///
/// Returns a [`CodecError`] if the stream is truncated or a code is invalid.
pub fn decode(input: &[u8]) -> Result<(Vec<u64>, usize)> {
    let (entries, used_dict) = varint::decode_u64_slice(input)?;
    let (codes, used_codes) = varint::decode_u64_slice(&input[used_dict..])?;
    let mut values = Vec::with_capacity(codes.len());
    for code in codes {
        let v = entries
            .get(code as usize)
            .copied()
            .ok_or(CodecError::InvalidDictionaryCode {
                code,
                len: entries.len(),
            })?;
        values.push(v);
    }
    Ok((values, used_dict + used_codes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_stable_codes() {
        let mut dict = Dictionary::new();
        assert_eq!(dict.intern(100), 0);
        assert_eq!(dict.intern(200), 1);
        assert_eq!(dict.intern(100), 0);
        assert_eq!(dict.len(), 2);
        assert!(!dict.is_empty());
        assert_eq!(dict.code(200), Some(1));
        assert_eq!(dict.code(999), None);
        assert_eq!(dict.value(1).unwrap(), 200);
        assert!(matches!(
            dict.value(5),
            Err(CodecError::InvalidDictionaryCode { code: 5, .. })
        ));
    }

    #[test]
    fn build_from_column() {
        let dict = Dictionary::build(&[5, 5, 9, 5, 7]);
        assert_eq!(dict.entries(), &[5, 9, 7]);
    }

    #[test]
    fn round_trip_repeated_ids() {
        // A column where a handful of large ids repeat many times (the shape
        // of a duplicated user feature).
        let values: Vec<u64> = (0..2000)
            .map(|i| 0xdead_beef_0000 + (i % 7) as u64)
            .collect();
        let encoded = encode(&values);
        assert!(encoded.len() < values.len() * 8 / 2);
        let (decoded, used) = decode(&encoded).unwrap();
        assert_eq!(decoded, values);
        assert_eq!(used, encoded.len());
    }

    #[test]
    fn round_trip_empty() {
        let encoded = encode(&[]);
        let (decoded, _) = decode(&encoded).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn corrupted_code_stream_is_an_error() {
        // Hand-craft a stream whose codes reference a missing entry.
        let mut out = Vec::new();
        out.extend_from_slice(&varint::encode_u64_slice(&[10])); // 1 entry
        out.extend_from_slice(&varint::encode_u64_slice(&[0, 3])); // code 3 invalid
        assert!(matches!(
            decode(&out),
            Err(CodecError::InvalidDictionaryCode { code: 3, .. })
        ));
    }
}
