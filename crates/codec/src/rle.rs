//! Run-length encoding for integer streams with repeated values.
//!
//! Label columns, inverse-lookup slices, and low-cardinality feature columns
//! contain long runs of identical values; RLE stores each run as a
//! `(value, run_length)` pair of varints.

use crate::varint;
use crate::Result;

/// Run-length encodes a sequence of `u64` values.
pub fn encode(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::new();
    // Count the runs first so the decoder knows how many pairs to read.
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for &v in values {
        match runs.last_mut() {
            Some((value, count)) if *value == v => *count += 1,
            _ => runs.push((v, 1)),
        }
    }
    varint::encode_u64(runs.len() as u64, &mut out);
    for (value, count) in runs {
        varint::encode_u64(value, &mut out);
        varint::encode_u64(count, &mut out);
    }
    out
}

/// Decodes a stream produced by [`encode`], returning the values and the
/// number of bytes consumed.
///
/// # Errors
///
/// Returns a [`CodecError`](crate::CodecError) if the stream is truncated.
pub fn decode(input: &[u8]) -> Result<(Vec<u64>, usize)> {
    let (run_count, mut cursor) = varint::decode_u64(input)?;
    let mut values = Vec::new();
    for _ in 0..run_count {
        let (value, used) = varint::decode_u64(&input[cursor..])?;
        cursor += used;
        let (count, used) = varint::decode_u64(&input[cursor..])?;
        cursor += used;
        values.extend(std::iter::repeat_n(value, count as usize));
    }
    Ok((values, cursor))
}

/// Returns the encoded size without materializing the encoding; used by the
/// storage layer to pick between RLE and plain varint encoding per column.
pub fn encoded_len(values: &[u64]) -> usize {
    encode(values).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CodecError;

    #[test]
    fn round_trip_runs() {
        let values = vec![7u64, 7, 7, 7, 1, 1, 9, 9, 9, 9, 9, 9, 9, 0];
        let encoded = encode(&values);
        let (decoded, used) = decode(&encoded).unwrap();
        assert_eq!(decoded, values);
        assert_eq!(used, encoded.len());
        assert!(encoded.len() < values.len() * 8);
    }

    #[test]
    fn round_trip_no_runs() {
        let values: Vec<u64> = (0..100).collect();
        let (decoded, _) = decode(&encode(&values)).unwrap();
        assert_eq!(decoded, values);
    }

    #[test]
    fn round_trip_empty() {
        let encoded = encode(&[]);
        let (decoded, used) = decode(&encoded).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(used, encoded.len());
    }

    #[test]
    fn long_run_compresses_well() {
        let values = vec![42u64; 10_000];
        let encoded = encode(&values);
        assert!(encoded.len() <= 5);
        assert_eq!(decode(&encoded).unwrap().0, values);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let encoded = encode(&[1, 1, 2, 2]);
        assert!(matches!(
            decode(&encoded[..encoded.len() - 1]),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn encoded_len_matches_encode() {
        let values = vec![3u64, 3, 3, 8, 8, 1];
        assert_eq!(encoded_len(&values), encode(&values).len());
    }
}
