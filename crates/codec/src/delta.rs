//! Delta encoding for monotone or slowly-varying integer streams.
//!
//! Offset streams in jagged tensors and timestamp columns are monotonically
//! non-decreasing, so storing first-order differences followed by zigzag
//! varints shrinks them dramatically.

use crate::varint;
use crate::Result;

/// Delta-encodes a sequence of `u64` values into a byte stream.
///
/// The first value is stored verbatim (as a varint); subsequent values are
/// stored as zigzag-encoded differences from their predecessor.
pub fn encode(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() + 8);
    varint::encode_u64(values.len() as u64, &mut out);
    let mut prev: u64 = 0;
    for (i, &v) in values.iter().enumerate() {
        if i == 0 {
            varint::encode_u64(v, &mut out);
        } else {
            // Wrapping difference so arbitrary u64 values (not just monotone
            // offsets) round-trip; the decoder applies a wrapping add.
            let delta = v.wrapping_sub(prev) as i64;
            varint::encode_i64(delta, &mut out);
        }
        prev = v;
    }
    out
}

/// Decodes a stream produced by [`encode`], returning the values and the
/// number of bytes consumed.
///
/// # Errors
///
/// Returns a [`CodecError`](crate::CodecError) if the stream is truncated.
pub fn decode(input: &[u8]) -> Result<(Vec<u64>, usize)> {
    let mut values = Vec::new();
    let cursor = decode_into(input, &mut values)?;
    Ok((values, cursor))
}

/// Decodes a stream produced by [`encode`] into a caller-provided buffer,
/// clearing it first, and returns the number of bytes consumed — the
/// allocation-free variant of [`decode`] for callers that recycle buffers
/// across streams.
///
/// # Errors
///
/// Returns a [`CodecError`](crate::CodecError) if the stream is truncated.
pub fn decode_into(input: &[u8], values: &mut Vec<u64>) -> Result<usize> {
    let (len, mut cursor) = varint::decode_u64(input)?;
    values.clear();
    values.reserve(len as usize);
    let mut prev: u64 = 0;
    for i in 0..len {
        if i == 0 {
            let (v, used) = varint::decode_u64(&input[cursor..])?;
            cursor += used;
            prev = v;
        } else {
            let (d, used) = varint::decode_i64(&input[cursor..])?;
            cursor += used;
            prev = prev.wrapping_add(d as u64);
        }
        values.push(prev);
    }
    Ok(cursor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CodecError;

    #[test]
    fn round_trip_monotone_offsets() {
        let offsets: Vec<u64> = (0..1000u64).map(|i| i * 37).collect();
        let encoded = encode(&offsets);
        // 1000 values of magnitude up to 37k raw would take >2 bytes each as
        // plain varints; constant deltas of 37 take 1 byte each.
        assert!(encoded.len() < 1100);
        let (decoded, used) = decode(&encoded).unwrap();
        assert_eq!(decoded, offsets);
        assert_eq!(used, encoded.len());
    }

    #[test]
    fn round_trip_non_monotone_values() {
        let values = vec![10u64, 3, 3, 900, 0, u64::MAX, 1];
        let (decoded, _) = decode(&encode(&values)).unwrap();
        assert_eq!(decoded, values);
    }

    #[test]
    fn round_trip_empty_and_single() {
        assert_eq!(decode(&encode(&[])).unwrap().0, Vec::<u64>::new());
        assert_eq!(decode(&encode(&[7])).unwrap().0, vec![7]);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let encoded = encode(&[1, 2, 3, 4, 5]);
        assert!(matches!(
            decode(&encoded[..encoded.len() - 1]),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }
}
