//! LEB128 variable-length integer encoding, plus zigzag encoding for signed
//! values.
//!
//! Varints are the base encoding for every numeric stream in the DWRF-like
//! columnar format: lengths, offsets, dictionary codes, and delta streams.

use crate::{CodecError, Result};

/// Maximum number of bytes a `u64` varint may occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the varint encoding of `value` to `out` and returns the number of
/// bytes written.
pub fn encode_u64(value: u64, out: &mut Vec<u8>) -> usize {
    let mut v = value;
    let mut written = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        written += 1;
        if v == 0 {
            out.push(byte);
            return written;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a varint from the front of `input`, returning the value and the
/// number of bytes consumed.
///
/// # Errors
///
/// Returns [`CodecError::UnexpectedEof`] if the input ends mid-varint and
/// [`CodecError::VarintOverflow`] if the encoding exceeds
/// [`MAX_VARINT_LEN`] bytes.
pub fn decode_u64(input: &[u8]) -> Result<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(CodecError::VarintOverflow);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(CodecError::UnexpectedEof { context: "varint" })
}

/// Zigzag-encodes a signed integer so small magnitudes use few varint bytes.
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Appends the zigzag varint encoding of a signed value.
pub fn encode_i64(value: i64, out: &mut Vec<u8>) -> usize {
    encode_u64(zigzag_encode(value), out)
}

/// Decodes a zigzag varint from the front of `input`.
///
/// # Errors
///
/// Same error conditions as [`decode_u64`].
pub fn decode_i64(input: &[u8]) -> Result<(i64, usize)> {
    let (raw, used) = decode_u64(input)?;
    Ok((zigzag_decode(raw), used))
}

/// Encodes a slice of `u64` values as back-to-back varints.
pub fn encode_u64_slice(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2);
    encode_u64(values.len() as u64, &mut out);
    for &v in values {
        encode_u64(v, &mut out);
    }
    out
}

/// Decodes a slice previously produced by [`encode_u64_slice`], returning the
/// values and the number of bytes consumed.
///
/// # Errors
///
/// Returns a [`CodecError`] if the stream is truncated or malformed.
pub fn decode_u64_slice(input: &[u8]) -> Result<(Vec<u64>, usize)> {
    let mut values = Vec::new();
    let cursor = decode_u64_slice_into(input, &mut values)?;
    Ok((values, cursor))
}

/// Decodes a slice previously produced by [`encode_u64_slice`] into a
/// caller-provided buffer, clearing it first, and returns the number of
/// bytes consumed — the allocation-free variant of [`decode_u64_slice`] for
/// callers that recycle buffers across streams.
///
/// # Errors
///
/// Returns a [`CodecError`] if the stream is truncated or malformed.
pub fn decode_u64_slice_into(input: &[u8], values: &mut Vec<u64>) -> Result<usize> {
    let (len, mut cursor) = decode_u64(input)?;
    values.clear();
    values.reserve(len as usize);
    for _ in 0..len {
        let (v, used) = decode_u64(&input[cursor..])?;
        values.push(v);
        cursor += used;
    }
    Ok(cursor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u64_boundaries() {
        for value in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            let written = encode_u64(value, &mut buf);
            assert_eq!(written, buf.len());
            let (decoded, used) = decode_u64(&buf).unwrap();
            assert_eq!(decoded, value);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn round_trip_i64_boundaries() {
        for value in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            encode_i64(value, &mut buf);
            let (decoded, _) = decode_i64(&buf).unwrap();
            assert_eq!(decoded, value);
        }
    }

    #[test]
    fn small_values_use_one_byte() {
        let mut buf = Vec::new();
        encode_u64(100, &mut buf);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        encode_u64(u64::MAX, &mut buf);
        buf.truncate(3);
        assert!(matches!(
            decode_u64(&buf),
            Err(CodecError::UnexpectedEof { .. })
        ));
        assert!(matches!(
            decode_u64(&[]),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn overlong_varint_is_an_error() {
        let buf = [0x80u8; 11];
        assert!(matches!(decode_u64(&buf), Err(CodecError::VarintOverflow)));
    }

    #[test]
    fn zigzag_maps_small_magnitudes_to_small_codes() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        for v in [-1000i64, -3, 0, 3, 1000] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn slice_round_trip_and_trailing_bytes() {
        let values = vec![5u64, 0, 123_456_789, 42];
        let mut encoded = encode_u64_slice(&values);
        encoded.extend_from_slice(&[0xde, 0xad]);
        let (decoded, used) = decode_u64_slice(&encoded).unwrap();
        assert_eq!(decoded, values);
        assert_eq!(used, encoded.len() - 2);
    }

    #[test]
    fn empty_slice_round_trip() {
        let encoded = encode_u64_slice(&[]);
        let (decoded, used) = decode_u64_slice(&encoded).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(used, encoded.len());
    }
}
