//! A self-contained LZ77-style block compressor — the repository's stand-in
//! for zstd.
//!
//! The format is a sequence of tokens, each describing a literal run followed
//! by an optional back-reference match:
//!
//! ```text
//! block     := varint(decompressed_len) token*
//! token     := varint(literal_len) literal_bytes
//!              [ varint(match_len) varint(distance) ]   -- absent in the final token
//! ```
//!
//! Matching uses a hash table over 4-byte prefixes with greedy extension,
//! which is enough to capture the redundancy RecD cares about: repeated
//! feature value lists that become adjacent once logs are sharded and tables
//! are clustered by session id.

use crate::varint;
use crate::{CodecError, Result};

/// Minimum match length worth encoding (shorter matches cost more than
/// literals).
const MIN_MATCH: usize = 4;
/// Maximum back-reference distance. 64 KiB keeps the hash-table small while
/// comfortably spanning a stripe's worth of adjacent duplicate rows.
const MAX_DISTANCE: usize = 64 * 1024;
/// Number of hash-table buckets (power of two).
const HASH_BUCKETS: usize = 1 << 15;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    ((v.wrapping_mul(2_654_435_761)) >> 17) as usize & (HASH_BUCKETS - 1)
}

/// Compresses a block of bytes.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    varint::encode_u64(data.len() as u64, &mut out);
    if data.is_empty() {
        return out;
    }

    // head[h] = most recent position whose 4-byte prefix hashed to h.
    let mut head = vec![usize::MAX; HASH_BUCKETS];
    let mut literal_start = 0usize;
    let mut pos = 0usize;

    while pos + MIN_MATCH <= data.len() {
        let h = hash4(&data[pos..]);
        let candidate = head[h];
        head[h] = pos;

        let mut match_len = 0usize;
        if candidate != usize::MAX && pos - candidate <= MAX_DISTANCE {
            // Extend the match as far as it goes.
            let max = data.len() - pos;
            while match_len < max && data[candidate + match_len] == data[pos + match_len] {
                match_len += 1;
            }
        }

        if match_len >= MIN_MATCH {
            let distance = pos - candidate;
            // Emit literal run followed by the match.
            let literals = &data[literal_start..pos];
            varint::encode_u64(literals.len() as u64, &mut out);
            out.extend_from_slice(literals);
            varint::encode_u64(match_len as u64, &mut out);
            varint::encode_u64(distance as u64, &mut out);

            // Index a few positions inside the match so later data can refer
            // back into it, then skip past it.
            let end = pos + match_len;
            let mut p = pos + 1;
            while p + MIN_MATCH <= end && p + MIN_MATCH <= data.len() {
                head[hash4(&data[p..])] = p;
                p += 1;
            }
            pos = end;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }

    // Final literal-only token.
    let literals = &data[literal_start..];
    varint::encode_u64(literals.len() as u64, &mut out);
    out.extend_from_slice(literals);
    out
}

/// Decompresses a block produced by [`compress`].
///
/// # Errors
///
/// Returns a [`CodecError`] if the block is truncated, a match references
/// data before the start of the output, or the declared length does not match
/// the decoded content.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    decompress_into(data, &mut out)?;
    Ok(out)
}

/// Decompresses a block produced by [`compress`] into a caller-provided
/// buffer, clearing it first — the allocation-free variant of
/// [`decompress`] for callers that recycle a scratch buffer across blocks.
/// On error the buffer contents are unspecified.
///
/// # Errors
///
/// Same error conditions as [`decompress`].
pub fn decompress_into(data: &[u8], out: &mut Vec<u8>) -> Result<()> {
    let (expected_len, mut cursor) = varint::decode_u64(data)?;
    let expected_len = expected_len as usize;
    out.clear();
    out.reserve(expected_len);

    while out.len() < expected_len {
        let (literal_len, used) = varint::decode_u64(&data[cursor..])?;
        cursor += used;
        let literal_len = literal_len as usize;
        if cursor + literal_len > data.len() {
            return Err(CodecError::UnexpectedEof {
                context: "lz literal run",
            });
        }
        out.extend_from_slice(&data[cursor..cursor + literal_len]);
        cursor += literal_len;

        if out.len() >= expected_len {
            break;
        }
        if cursor >= data.len() {
            // No match token follows the final literal run.
            break;
        }

        let (match_len, used) = varint::decode_u64(&data[cursor..])?;
        cursor += used;
        let (distance, used) = varint::decode_u64(&data[cursor..])?;
        cursor += used;
        let match_len = match_len as usize;
        let distance = distance as usize;
        if distance == 0 || distance > out.len() {
            return Err(CodecError::InvalidMatch {
                distance,
                produced: out.len(),
            });
        }
        // Byte-by-byte copy supports overlapping matches (distance < len).
        let start = out.len() - distance;
        for i in 0..match_len {
            let byte = out[start + i];
            out.push(byte);
        }
    }

    if out.len() != expected_len {
        return Err(CodecError::LengthMismatch {
            expected: expected_len,
            actual: out.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_empty_and_tiny() {
        for data in [&b""[..], b"a", b"ab", b"abc"] {
            assert_eq!(decompress(&compress(data)).unwrap(), data);
        }
    }

    #[test]
    fn round_trip_incompressible_data() {
        // Pseudo-random bytes with no 4-byte repeats to speak of.
        let mut state = 0x12345678u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        let compressed = compress(&data);
        assert_eq!(decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn repeated_rows_compress_much_better_when_adjacent() {
        // Emulates the clustering effect: the same 200-byte "row" appearing
        // 16 times adjacently vs interleaved with 15 distinct rows.
        let row: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        let distinct: Vec<Vec<u8>> = (0..16u64)
            .map(|k| {
                let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (k + 1);
                (0..200)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(k + 1);
                        (state >> 33) as u8
                    })
                    .collect()
            })
            .collect();

        let adjacent: Vec<u8> = std::iter::repeat_n(row.clone(), 16).flatten().collect();
        let interleaved: Vec<u8> = distinct.iter().flatten().copied().collect();

        let adjacent_ratio = adjacent.len() as f64 / compress(&adjacent).len() as f64;
        let interleaved_ratio = interleaved.len() as f64 / compress(&interleaved).len() as f64;
        assert!(
            adjacent_ratio > 2.0 * interleaved_ratio,
            "adjacent duplicates should compress far better: {adjacent_ratio:.2} vs {interleaved_ratio:.2}"
        );
        assert_eq!(decompress(&compress(&adjacent)).unwrap(), adjacent);
        assert_eq!(decompress(&compress(&interleaved)).unwrap(), interleaved);
    }

    #[test]
    fn overlapping_match_round_trip() {
        // A run of a single byte forces distance-1 overlapping matches.
        let data = vec![7u8; 5000];
        let compressed = compress(&data);
        assert!(compressed.len() < 64);
        assert_eq!(decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn corrupted_blocks_are_errors_not_panics() {
        let data: Vec<u8> = (0..100u8).cycle().take(2000).collect();
        let compressed = compress(&data);
        // Truncations at every prefix length must never panic.
        for cut in 0..compressed.len() {
            let _ = decompress(&compressed[..cut]);
        }
        // Declared-length mismatch.
        let mut forged = Vec::new();
        varint::encode_u64(10, &mut forged); // claims 10 bytes
        varint::encode_u64(2, &mut forged); // but only 2 literals follow
        forged.extend_from_slice(b"ab");
        assert!(matches!(
            decompress(&forged),
            Err(CodecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn invalid_distance_is_an_error() {
        let mut forged = Vec::new();
        varint::encode_u64(8, &mut forged);
        varint::encode_u64(2, &mut forged);
        forged.extend_from_slice(b"ab");
        varint::encode_u64(4, &mut forged); // match length
        varint::encode_u64(100, &mut forged); // distance > produced
        assert!(matches!(
            decompress(&forged),
            Err(CodecError::InvalidMatch { .. })
        ));
    }
}
