//! Flat little-endian byte-stream framing for checkpoint persistence.
//!
//! The chaos/checkpoint subsystem needs a real wire format for
//! `PipelineCheckpoint`-style state (the in-tree `serde` shim is derive-only
//! marker traits), so this module provides the minimal primitive layer every
//! tier's checkpoint codec builds on: fixed-width little-endian scalars and
//! length-prefixed strings/sequences over a growable buffer, with a matching
//! bounds-checked reader that fails with [`CodecError::UnexpectedEof`] on
//! truncated input instead of panicking.
//!
//! The format is deliberately boring — no varints, no compression — because a
//! checkpoint round-trip must be byte-exact and trivially auditable; blobs
//! that want to be small can wrap the result in [`crate::Compressor::Lz`]
//! afterwards.

use crate::{CodecError, Result};

/// Append-only little-endian writer backing checkpoint encoders.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a `u32` in little-endian order.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (checkpoints must be portable across
    /// pointer widths).
    pub fn put_usize(&mut self, value: usize) {
        self.put_u64(value as u64);
    }

    /// Appends an `f32` as its little-endian bit pattern (byte-exact for
    /// NaN payloads too).
    pub fn put_f32(&mut self, value: f32) {
        self.buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }

    /// Appends an `f64` as its little-endian bit pattern.
    pub fn put_f64(&mut self, value: f64) {
        self.buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }

    /// Appends a `bool` as a single byte.
    pub fn put_bool(&mut self, value: bool) {
        self.put_u8(u8::from(value));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, value: &str) {
        self.put_usize(value.len());
        self.buf.extend_from_slice(value.as_bytes());
    }

    /// Appends length-prefixed raw bytes.
    pub fn put_bytes(&mut self, value: &[u8]) {
        self.put_usize(value.len());
        self.buf.extend_from_slice(value);
    }

    /// Appends a length-prefixed slice of `u64`s.
    pub fn put_u64_slice(&mut self, values: &[u64]) {
        self.put_usize(values.len());
        for &value in values {
            self.put_u64(value);
        }
    }

    /// Appends a length-prefixed slice of `f32`s.
    pub fn put_f32_slice(&mut self, values: &[f32]) {
        self.put_usize(values.len());
        for &value in values {
            self.put_f32(value);
        }
    }
}

/// Bounds-checked little-endian reader over a checkpoint byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether every byte has been consumed — decoders assert this to catch
    /// trailing garbage.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, len: usize, context: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < len {
            return Err(CodecError::UnexpectedEof { context });
        }
        let slice = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the input is exhausted.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the input is truncated.
    pub fn get_u32(&mut self) -> Result<u32> {
        let bytes = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the input is truncated.
    pub fn get_u64(&mut self) -> Result<u64> {
        let bytes = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` encoded as a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the input is truncated, or
    /// [`CodecError::LengthMismatch`] if the value does not fit in `usize`.
    pub fn get_usize(&mut self) -> Result<usize> {
        let value = self.get_u64()?;
        usize::try_from(value).map_err(|_| CodecError::LengthMismatch {
            expected: usize::MAX,
            actual: 0,
        })
    }

    /// Reads an `f32` from its bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the input is truncated.
    pub fn get_f32(&mut self) -> Result<f32> {
        let bytes = self.take(4, "f32")?;
        Ok(f32::from_bits(u32::from_le_bytes(
            bytes.try_into().expect("4 bytes"),
        )))
    }

    /// Reads an `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the input is truncated.
    pub fn get_f64(&mut self) -> Result<f64> {
        let bytes = self.take(8, "f64")?;
        Ok(f64::from_bits(u64::from_le_bytes(
            bytes.try_into().expect("8 bytes"),
        )))
    }

    /// Reads a `bool` byte (any non-zero value is `true`).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the input is exhausted.
    pub fn get_bool(&mut self) -> Result<bool> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the input is truncated, or
    /// [`CodecError::LengthMismatch`] if the bytes are not valid UTF-8.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_usize()?;
        let bytes = self.take(len, "string payload")?;
        String::from_utf8(bytes.to_vec()).map_err(|e| CodecError::LengthMismatch {
            expected: len,
            actual: e.utf8_error().valid_up_to(),
        })
    }

    /// Reads length-prefixed raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the input is truncated.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.get_usize()?;
        Ok(self.take(len, "byte payload")?.to_vec())
    }

    /// Reads a length-prefixed slice of `u64`s.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the input is truncated.
    pub fn get_u64_slice(&mut self) -> Result<Vec<u64>> {
        let len = self.get_usize()?;
        let mut values = Vec::with_capacity(len.min(self.remaining() / 8 + 1));
        for _ in 0..len {
            values.push(self.get_u64()?);
        }
        Ok(values)
    }

    /// Reads a length-prefixed slice of `f32`s.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the input is truncated.
    pub fn get_f32_slice(&mut self) -> Result<Vec<f32>> {
        let len = self.get_usize()?;
        let mut values = Vec::with_capacity(len.min(self.remaining() / 4 + 1));
        for _ in 0..len {
            values.push(self.get_f32()?);
        }
        Ok(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_usize(42);
        w.put_f32(-0.5);
        w.put_f64(std::f64::consts::PI);
        w.put_bool(true);
        w.put_str("hour-0003");
        w.put_bytes(&[1, 2, 3]);
        w.put_u64_slice(&[9, 8, 7]);
        w.put_f32_slice(&[1.25, -2.5]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_usize().unwrap(), 42);
        assert_eq!(r.get_f32().unwrap(), -0.5);
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "hour-0003");
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u64_slice().unwrap(), vec![9, 8, 7]);
        assert_eq!(r.get_f32_slice().unwrap(), vec![1.25, -2.5]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let weird = f32::from_bits(0x7FC0_1234);
        let mut w = ByteWriter::new();
        w.put_f32(weird);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_f32().unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut w = ByteWriter::new();
        w.put_u64(123);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(r.get_u64(), Err(CodecError::UnexpectedEof { .. })));
        let mut r = ByteReader::new(&bytes);
        r.get_u64().unwrap();
        assert!(matches!(r.get_str(), Err(CodecError::UnexpectedEof { .. })));
    }
}
