//! # recd-codec
//!
//! Encodings and compression used by the RecD storage and messaging
//! substrates.
//!
//! The paper's pipeline relies on two families of byte-shrinking machinery:
//!
//! * **Columnar encodings** applied to flattened feature columns inside DWRF
//!   stripes — dictionary encoding, varint/zigzag encoding, delta encoding,
//!   and run-length encoding. These are implemented in [`varint`], [`delta`],
//!   [`rle`], and [`dict`].
//! * **Black-box block compression** (zstd in the paper) applied to Scribe
//!   shard buffers and to encoded stripe streams. The stand-in here is a
//!   self-contained LZ77-style block compressor in [`lz`], whose compression
//!   ratio responds to data redundancy the same way zstd's does — which is
//!   exactly the property RecD's log sharding (O1) and session clustering
//!   (O2) exploit.
//!
//! The crate also provides the 64-bit hashing used by the deduplicating
//! feature converter ([`hash`]) and small accounting types
//! ([`CompressionStats`]).
//!
//! # Example
//!
//! ```
//! use recd_codec::{Compressor, CompressionStats};
//!
//! # fn main() -> Result<(), recd_codec::CodecError> {
//! let data: Vec<u8> = b"abcabcabcabcabcabcabcabc".repeat(8);
//! let compressor = Compressor::Lz;
//! let compressed = compressor.compress(&data);
//! let stats = CompressionStats::new(data.len(), compressed.len());
//! assert!(stats.ratio() > 2.0);
//! assert_eq!(compressor.decompress(&compressed)?, data);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod delta;
pub mod dict;
pub mod hash;
pub mod lz;
pub mod rle;
pub mod varint;

use std::error::Error;
use std::fmt;

pub use bytes::{ByteReader, ByteWriter};
pub use dict::Dictionary;
pub use hash::{hash_bytes, hash_id, hash_ids, Hasher64};

/// Errors produced when decoding or decompressing malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The input ended before a complete value could be decoded.
    UnexpectedEof {
        /// Human-readable description of what was being decoded.
        context: &'static str,
    },
    /// A varint used more bytes than the maximum allowed for its width.
    VarintOverflow,
    /// A dictionary code referenced an entry that does not exist.
    InvalidDictionaryCode {
        /// The offending code.
        code: u64,
        /// Number of dictionary entries.
        len: usize,
    },
    /// An LZ match referenced data before the start of the output buffer.
    InvalidMatch {
        /// Back-reference distance.
        distance: usize,
        /// Output length at the time the match was applied.
        produced: usize,
    },
    /// The compressed block declared a size that does not match its content.
    LengthMismatch {
        /// Declared decompressed length.
        expected: usize,
        /// Actually produced length.
        actual: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while decoding {context}")
            }
            CodecError::VarintOverflow => write!(f, "varint is longer than the maximum width"),
            CodecError::InvalidDictionaryCode { code, len } => {
                write!(f, "dictionary code {code} out of range ({len} entries)")
            }
            CodecError::InvalidMatch { distance, produced } => write!(
                f,
                "lz match distance {distance} exceeds produced output length {produced}"
            ),
            CodecError::LengthMismatch { expected, actual } => write!(
                f,
                "decompressed length {actual} does not match declared length {expected}"
            ),
        }
    }
}

impl Error for CodecError {}

/// A convenient result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, CodecError>;

/// Block compression algorithms available to the storage and messaging
/// layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Compressor {
    /// No compression; bytes are stored verbatim.
    None,
    /// LZ77-style block compression (the repository's zstd stand-in).
    #[default]
    Lz,
}

impl Compressor {
    /// Compresses a block of bytes.
    pub fn compress(self, data: &[u8]) -> Vec<u8> {
        match self {
            Compressor::None => data.to_vec(),
            Compressor::Lz => lz::compress(data),
        }
    }

    /// Decompresses a block previously produced by [`Compressor::compress`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the block is truncated or corrupted.
    pub fn decompress(self, data: &[u8]) -> Result<Vec<u8>> {
        match self {
            Compressor::None => Ok(data.to_vec()),
            Compressor::Lz => lz::decompress(data),
        }
    }

    /// Decompresses a block into a caller-provided buffer, clearing it
    /// first — the allocation-free variant of [`Compressor::decompress`]
    /// for callers that recycle a scratch buffer across blocks.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the block is truncated or corrupted.
    pub fn decompress_into(self, data: &[u8], out: &mut Vec<u8>) -> Result<()> {
        match self {
            Compressor::None => {
                out.clear();
                out.extend_from_slice(data);
                Ok(())
            }
            Compressor::Lz => lz::decompress_into(data, out),
        }
    }
}

impl fmt::Display for Compressor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Compressor::None => write!(f, "none"),
            Compressor::Lz => write!(f, "lz"),
        }
    }
}

/// Raw-versus-compressed byte accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompressionStats {
    /// Number of bytes before compression.
    pub raw_bytes: usize,
    /// Number of bytes after compression.
    pub compressed_bytes: usize,
}

impl CompressionStats {
    /// Creates a stats record.
    pub const fn new(raw_bytes: usize, compressed_bytes: usize) -> Self {
        Self {
            raw_bytes,
            compressed_bytes,
        }
    }

    /// Compression ratio (raw / compressed). Returns 1.0 for empty input.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }

    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: CompressionStats) {
        self.raw_bytes += other.raw_bytes;
        self.compressed_bytes += other.compressed_bytes;
    }
}

impl fmt::Display for CompressionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} bytes ({:.2}x)",
            self.raw_bytes,
            self.compressed_bytes,
            self.ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressor_none_round_trip() {
        let data = vec![1u8, 2, 3, 4, 5];
        let c = Compressor::None;
        assert_eq!(c.compress(&data), data);
        assert_eq!(c.decompress(&data).unwrap(), data);
    }

    #[test]
    fn compressor_lz_round_trip_and_shrinks_redundant_data() {
        let data: Vec<u8> = (0..64u8).cycle().take(4096).collect();
        let c = Compressor::Lz;
        let compressed = c.compress(&data);
        assert!(compressed.len() < data.len());
        assert_eq!(c.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn stats_ratio_and_merge() {
        let mut s = CompressionStats::new(100, 50);
        assert_eq!(s.ratio(), 2.0);
        s.merge(CompressionStats::new(100, 50));
        assert_eq!(s.raw_bytes, 200);
        assert_eq!(s.ratio(), 2.0);
        assert_eq!(CompressionStats::new(0, 0).ratio(), 1.0);
        assert!(s.to_string().contains("2.00x"));
    }

    #[test]
    fn error_messages() {
        let err = CodecError::UnexpectedEof { context: "varint" };
        assert!(err.to_string().contains("varint"));
        let err = CodecError::InvalidDictionaryCode { code: 7, len: 3 };
        assert!(err.to_string().contains('7'));
    }
}
