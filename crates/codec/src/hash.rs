//! 64-bit hashing used by the deduplicating feature converter and the Scribe
//! shard router.
//!
//! The implementation is an FNV-1a variant with an additional avalanche
//! finalizer (xorshift-multiply, as in SplitMix64/xxHash finalization) so the
//! low bits are well distributed and suitable for modulo-based shard routing
//! and hash-table bucketing.

/// A streaming 64-bit hasher.
///
/// # Example
///
/// ```
/// use recd_codec::Hasher64;
///
/// let mut h = Hasher64::new();
/// h.write_u64(42);
/// h.write_bytes(b"feature");
/// let digest = h.finish();
/// assert_ne!(digest, Hasher64::new().finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hasher64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Hasher64 {
    /// Creates a hasher with the standard FNV offset basis.
    pub const fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Creates a hasher seeded with an arbitrary value, for keyed hashing.
    pub const fn with_seed(seed: u64) -> Self {
        Self {
            state: FNV_OFFSET ^ seed,
        }
    }

    /// Mixes a byte slice into the hash state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut state = self.state;
        for &b in bytes {
            state ^= u64::from(b);
            state = state.wrapping_mul(FNV_PRIME);
        }
        self.state = state;
    }

    /// Mixes a `u64` into the hash state (as its little-endian bytes).
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Mixes a `u32` into the hash state.
    pub fn write_u32(&mut self, value: u32) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Mixes a `u64` into the hash state with a single multiply — a cheaper
    /// (but coarser) alternative to [`Hasher64::write_u64`] used on hot
    /// deduplication paths where every candidate match is confirmed with a
    /// full equality check anyway.
    pub fn mix_u64(&mut self, value: u64) {
        self.state = (self.state ^ value)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(27);
    }

    /// Finalizes the hash with an avalanche mixer and returns the digest.
    pub fn finish(&self) -> u64 {
        finalize(self.state)
    }
}

impl Default for Hasher64 {
    fn default() -> Self {
        Self::new()
    }
}

/// SplitMix64-style finalizer: guarantees every input bit affects every
/// output bit.
const fn finalize(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// FNV-1a over the little-endian bytes of one `u64`, starting from `state` —
/// the const-evaluable core of [`Hasher64::write_u64`].
const fn fnv_write_u64(mut state: u64, value: u64) -> u64 {
    let bytes = value.to_le_bytes();
    let mut i = 0;
    while i < 8 {
        state ^= bytes[i] as u64;
        state = state.wrapping_mul(FNV_PRIME);
        i += 1;
    }
    state
}

/// The hash state shared by every single-id digest: the FNV basis after the
/// length prefix `1u64` has been mixed in. Precomputing it lets
/// [`hash_id`] skip half of the byte mixing that
/// `hash_ids(&[id])` would redo on every call.
const SINGLE_ID_PREFIX: u64 = fnv_write_u64(FNV_OFFSET, 1);

/// Hashes a byte slice to a 64-bit digest.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Hasher64::new();
    h.write_bytes(bytes);
    h.finish()
}

/// Hashes a single id to the exact digest `hash_ids(&[id])` produces, with
/// no slice round-trip and the length prefix folded into a precomputed
/// constant — the fast path for per-value transforms such as hash
/// bucketization.
pub const fn hash_id(id: u64) -> u64 {
    finalize(fnv_write_u64(SINGLE_ID_PREFIX, id))
}

/// Hashes a slice of ids (an id-list feature value) to a 64-bit digest.
///
/// The length is mixed in first so that `[1, 2]` and `[1, 2, 0]`-style
/// prefix collisions cannot hash equal by accident. Single-id slices
/// delegate to [`hash_id`], so the two entry points always agree.
pub fn hash_ids(ids: &[u64]) -> u64 {
    if let [id] = ids {
        return hash_id(*id);
    }
    let mut h = Hasher64::new();
    h.write_u64(ids.len() as u64);
    for &id in ids {
        h.write_u64(id);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_and_input_sensitive() {
        assert_eq!(hash_bytes(b"hello"), hash_bytes(b"hello"));
        assert_ne!(hash_bytes(b"hello"), hash_bytes(b"hellp"));
        assert_eq!(hash_ids(&[1, 2, 3]), hash_ids(&[1, 2, 3]));
        assert_ne!(hash_ids(&[1, 2, 3]), hash_ids(&[3, 2, 1]));
    }

    #[test]
    fn length_is_mixed_into_id_hash() {
        assert_ne!(hash_ids(&[]), hash_ids(&[0]));
        assert_ne!(hash_ids(&[1, 2]), hash_ids(&[1, 2, 0]));
    }

    #[test]
    fn hash_id_matches_slice_digest() {
        // `hash_id` must be bit-identical to the streaming hasher fed a
        // one-element slice, for any id — otherwise bucketization digests
        // would drift between the row-wise and flat transform paths.
        for id in [0u64, 1, 42, 1 << 20, u32::MAX as u64, u64::MAX] {
            let mut h = Hasher64::new();
            h.write_u64(1);
            h.write_u64(id);
            assert_eq!(hash_id(id), h.finish());
            assert_eq!(hash_id(id), hash_ids(&[id]));
        }
        // Const evaluation works too.
        const DIGEST: u64 = hash_id(7);
        assert_eq!(DIGEST, hash_ids(&[7]));
    }

    #[test]
    fn seeded_hashers_differ() {
        let mut a = Hasher64::with_seed(1);
        let mut b = Hasher64::with_seed(2);
        a.write_u64(7);
        b.write_u64(7);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn low_bits_are_spread_for_shard_routing() {
        // Sequential session ids must not all land in the same shard when
        // reduced modulo a small shard count.
        let shards = 16u64;
        let mut hit: HashSet<u64> = HashSet::new();
        for session in 0..256u64 {
            hit.insert(hash_ids(&[session]) % shards);
        }
        assert_eq!(hit.len() as u64, shards, "all shards should be hit");
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Hasher64::new();
        h.write_bytes(b"ab");
        h.write_bytes(b"cd");
        assert_eq!(h.finish(), hash_bytes(b"abcd"));
    }

    #[test]
    fn u32_and_u64_writes_differ() {
        let mut a = Hasher64::new();
        a.write_u32(5);
        let mut b = Hasher64::new();
        b.write_u64(5);
        assert_ne!(a.finish(), b.finish());
    }
}
