//! Per-phase reader accounting (the quantities behind Figure 10 and
//! Table 3).

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;
use std::time::Duration;

/// Accounting for one reader phase (fill, convert, or process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhaseMetrics {
    /// CPU time spent in the phase, in nanoseconds.
    pub cpu_nanos: u64,
    /// Bytes touched by the phase (read bytes for fill, tensor bytes for
    /// convert/process).
    pub bytes: usize,
    /// Work items handled (rows for fill, sparse values for convert and
    /// process).
    pub items: usize,
}

impl PhaseMetrics {
    /// Records one phase invocation.
    pub fn record(&mut self, elapsed: Duration, bytes: usize, items: usize) {
        self.cpu_nanos += elapsed.as_nanos() as u64;
        self.bytes += bytes;
        self.items += items;
    }

    /// CPU time in seconds.
    pub fn cpu_seconds(&self) -> f64 {
        self.cpu_nanos as f64 / 1e9
    }
}

impl AddAssign for PhaseMetrics {
    fn add_assign(&mut self, rhs: Self) {
        self.cpu_nanos += rhs.cpu_nanos;
        self.bytes += rhs.bytes;
        self.items += rhs.items;
    }
}

/// Full accounting for a reader (or a whole reader tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReaderMetrics {
    /// Fetch + decompress + decode rows from storage.
    pub fill: PhaseMetrics,
    /// Rows → KJT/IKJT tensors (includes duplicate detection).
    pub convert: PhaseMetrics,
    /// Preprocessing transforms over the converted tensors.
    pub process: PhaseMetrics,
    /// Samples produced.
    pub samples: usize,
    /// Batches produced.
    pub batches: usize,
    /// Bytes sent from this reader to trainers (preprocessed tensor payload).
    pub egress_bytes: usize,
    /// Partition-boundary barriers that crossed the phase pipeline (each
    /// [`flush_partition`](../recd_dpp/struct.DppHandle.html) call injects
    /// one).
    pub barrier_flushes: usize,
    /// Short batches emitted because a barrier cut a shard accumulator
    /// before it reached the configured batch size. High values mean flushes
    /// arrive faster than shards fill, shrinking the average batch.
    pub flushed_partial_batches: usize,
}

impl ReaderMetrics {
    /// Total CPU nanoseconds across all phases.
    pub fn total_cpu_nanos(&self) -> u64 {
        self.fill.cpu_nanos + self.convert.cpu_nanos + self.process.cpu_nanos
    }

    /// CPU nanoseconds spent per sample, the paper's Figure 10 metric.
    pub fn cpu_nanos_per_sample(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_cpu_nanos() as f64 / self.samples as f64
        }
    }

    /// Reader throughput in samples per CPU-second.
    pub fn samples_per_cpu_second(&self) -> f64 {
        let secs = self.total_cpu_nanos() as f64 / 1e9;
        if secs == 0.0 {
            0.0
        } else {
            self.samples as f64 / secs
        }
    }

    /// Fraction of CPU time spent in each phase `(fill, convert, process)`.
    pub fn phase_fractions(&self) -> (f64, f64, f64) {
        let total = self.total_cpu_nanos() as f64;
        if total == 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (
                self.fill.cpu_nanos as f64 / total,
                self.convert.cpu_nanos as f64 / total,
                self.process.cpu_nanos as f64 / total,
            )
        }
    }
}

impl AddAssign for ReaderMetrics {
    fn add_assign(&mut self, rhs: Self) {
        self.fill += rhs.fill;
        self.convert += rhs.convert;
        self.process += rhs.process;
        self.samples += rhs.samples;
        self.batches += rhs.batches;
        self.egress_bytes += rhs.egress_bytes;
        self.barrier_flushes += rhs.barrier_flushes;
        self.flushed_partial_batches += rhs.flushed_partial_batches;
    }
}

impl ReaderMetrics {
    /// Projects the per-phase accounting into `recd_reader_*` metric
    /// families. Holders of a metrics mutex (e.g. the streaming service's
    /// combined phase metrics) call this from their own
    /// [`Collector`](recd_obs::Collector) implementation.
    pub fn collect_into(&self, out: &mut recd_obs::MetricsBuf) {
        for (phase, m) in [
            ("fill", &self.fill),
            ("convert", &self.convert),
            ("process", &self.process),
        ] {
            let labels = [("phase", phase)];
            out.counter(
                "recd_reader_phase_cpu_seconds_total",
                "CPU seconds spent in each reader phase.",
                &labels,
                m.cpu_seconds(),
            );
            out.counter(
                "recd_reader_phase_bytes_total",
                "Bytes touched by each reader phase.",
                &labels,
                m.bytes as f64,
            );
            out.counter(
                "recd_reader_phase_items_total",
                "Work items handled by each reader phase.",
                &labels,
                m.items as f64,
            );
        }
        out.counter(
            "recd_reader_samples_total",
            "Samples produced by the reader tier.",
            &[],
            self.samples as f64,
        );
        out.counter(
            "recd_reader_batches_total",
            "Batches produced by the reader tier.",
            &[],
            self.batches as f64,
        );
        out.counter(
            "recd_reader_egress_bytes_total",
            "Preprocessed tensor bytes sent toward trainers.",
            &[],
            self.egress_bytes as f64,
        );
        out.counter(
            "recd_reader_barrier_flushes_total",
            "Partition-boundary barriers that crossed the phase pipeline.",
            &[],
            self.barrier_flushes as f64,
        );
        out.counter(
            "recd_reader_flushed_partial_batches_total",
            "Short batches emitted because a barrier cut a shard accumulator.",
            &[],
            self.flushed_partial_batches as f64,
        );
    }
}

/// Modeled per-phase reader CPU time derived from the work counters.
///
/// The production readers the paper profiles spend most of their fill time in
/// byte-proportional work (RPC, decryption, zstd decompression) that this
/// repository's in-memory storage stack does not reproduce, so wall-clock
/// timings of the simulated reader under-weight the fill phase. The cost
/// model below converts the *measured work counters* (bytes fetched, rows
/// decoded, values hashed, values preprocessed) into CPU time with fixed
/// per-unit costs, which is what the Figure 7 / Figure 10 / Table 4 reader
/// results are reported from. Wall-clock timings remain available in
/// [`ReaderMetrics`] and are exercised by the Criterion benches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReaderCostModel {
    /// Fill cost per compressed byte fetched (fetch + decrypt + decompress).
    pub fill_nanos_per_byte: f64,
    /// Fill cost per row decoded.
    pub fill_nanos_per_row: f64,
    /// Convert cost per value hashed for duplicate detection (O3 overhead).
    pub convert_nanos_per_hashed_value: f64,
    /// Convert cost per byte of tensor payload materialized.
    pub convert_nanos_per_payload_byte: f64,
    /// Preprocessing cost per sparse value actually transformed.
    pub process_nanos_per_value: f64,
}

impl Default for ReaderCostModel {
    fn default() -> Self {
        Self {
            fill_nanos_per_byte: 3.0,
            fill_nanos_per_row: 200.0,
            convert_nanos_per_hashed_value: 1.0,
            convert_nanos_per_payload_byte: 0.125,
            process_nanos_per_value: 4.0,
        }
    }
}

impl ReaderCostModel {
    /// Modeled `(fill, convert, process)` CPU nanoseconds for the given
    /// metrics.
    pub fn phase_nanos(&self, m: &ReaderMetrics) -> (f64, f64, f64) {
        let fill = m.fill.bytes as f64 * self.fill_nanos_per_byte
            + m.fill.items as f64 * self.fill_nanos_per_row;
        let convert = m.convert.items as f64 * self.convert_nanos_per_hashed_value
            + m.convert.bytes as f64 * self.convert_nanos_per_payload_byte;
        let process = m.process.items as f64 * self.process_nanos_per_value;
        (fill, convert, process)
    }

    /// Modeled total CPU nanoseconds per sample.
    pub fn nanos_per_sample(&self, m: &ReaderMetrics) -> f64 {
        if m.samples == 0 {
            return 0.0;
        }
        let (fill, convert, process) = self.phase_nanos(m);
        (fill + convert + process) / m.samples as f64
    }

    /// Modeled reader throughput in samples per CPU-second.
    pub fn samples_per_cpu_second(&self, m: &ReaderMetrics) -> f64 {
        let per_sample = self.nanos_per_sample(m);
        if per_sample == 0.0 {
            0.0
        } else {
            1e9 / per_sample
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_and_reader_accumulation() {
        let mut phase = PhaseMetrics::default();
        phase.record(Duration::from_micros(5), 100, 10);
        phase.record(Duration::from_micros(5), 50, 5);
        assert_eq!(phase.cpu_nanos, 10_000);
        assert_eq!(phase.bytes, 150);
        assert_eq!(phase.items, 15);
        assert!(phase.cpu_seconds() > 0.0);

        let mut a = ReaderMetrics {
            fill: phase,
            samples: 4,
            batches: 1,
            egress_bytes: 200,
            ..ReaderMetrics::default()
        };
        let b = a;
        a += b;
        assert_eq!(a.samples, 8);
        assert_eq!(a.egress_bytes, 400);
        assert_eq!(a.total_cpu_nanos(), 20_000);
        assert!(a.cpu_nanos_per_sample() > 0.0);
        assert!(a.samples_per_cpu_second() > 0.0);
        let (fill, convert, process) = a.phase_fractions();
        assert!((fill - 1.0).abs() < 1e-12);
        assert_eq!(convert, 0.0);
        assert_eq!(process, 0.0);
    }

    #[test]
    fn empty_metrics_do_not_divide_by_zero() {
        let m = ReaderMetrics::default();
        assert_eq!(m.cpu_nanos_per_sample(), 0.0);
        assert_eq!(m.samples_per_cpu_second(), 0.0);
        assert_eq!(m.phase_fractions(), (0.0, 0.0, 0.0));
    }
}
