//! Preprocessing transforms (the user-provided TorchScript modules of the
//! paper) and the wrapper that lets them run over deduplicated tensors (O4).
//!
//! Transforms operate **flat and in place**: a transform edits a jagged
//! `(values, offsets)` buffer pair directly, so a whole pipeline runs over a
//! converted batch without allocating a single intermediate tensor. The
//! row-wise allocate-per-apply path is kept as
//! [`SparseTransform::apply_rowwise`] — the correctness oracle the property
//! suite compares the flat path against, and the baseline the benches
//! measure it against.

use recd_core::{ConvertedBatch, DenseMatrix, InverseKeyedJaggedTensor, JaggedTensor};
use serde::{Deserialize, Serialize};

/// Reusable scratch buffers shared by the transforms of one pipeline.
///
/// A [`PhaseEngine`](crate::PhaseEngine) (one per reader or streaming
/// compute worker) owns one scratch for its whole lifetime, so steady-state
/// preprocessing allocates nothing beyond buffer growth.
#[derive(Debug, Default)]
pub struct TransformScratch {
    /// Per-column mean accumulators for dense normalization (also the
    /// affine shift of the write pass — kept in f64 so large-magnitude
    /// columns still center exactly).
    mean: Vec<f64>,
    /// Per-column M2 (sum of squared deviations) accumulators.
    m2: Vec<f64>,
    /// Per-column affine scale applied in the normalization write pass
    /// (`1/std`, or 1.0 for constant columns).
    scale: Vec<f64>,
}

/// A preprocessing transform over one sparse feature's jagged tensor.
///
/// The same transform object is applied either to a full KJT tensor (one row
/// per sample — the baseline) or, through the O4 wrapper, to an IKJT's
/// deduplicated tensor (one row per slot), saving the work for duplicate
/// rows.
pub trait SparseTransform: Send + Sync {
    /// Applies the transform in place to a flat jagged buffer pair. The
    /// buffers must satisfy the jagged invariants on entry and the transform
    /// must restore them on exit (offsets start at zero, are non-decreasing,
    /// end at `values.len()`) while preserving the row count.
    fn apply_flat(
        &self,
        values: &mut Vec<u64>,
        offsets: &mut Vec<usize>,
        scratch: &mut TransformScratch,
    );

    /// Reference row-wise implementation: walks the tensor row by row and
    /// allocates a fresh output tensor. Kept as the oracle the flat path is
    /// property-tested against and as the benchmark baseline; hot paths call
    /// [`SparseTransform::apply_flat`].
    fn apply_rowwise(&self, tensor: &JaggedTensor<u64>) -> JaggedTensor<u64>;

    /// Short name used in reports.
    fn name(&self) -> &'static str;
}

/// Hashes every id into `buckets` buckets — the standard "hashing" transform
/// applied before embedding lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashBucketize {
    /// Number of hash buckets.
    pub buckets: u64,
}

impl SparseTransform for HashBucketize {
    fn apply_flat(
        &self,
        values: &mut Vec<u64>,
        _offsets: &mut Vec<usize>,
        _scratch: &mut TransformScratch,
    ) {
        // Row structure is irrelevant to a per-value map: one pass over the
        // flat buffer, via the single-id hash fast path.
        let buckets = self.buckets.max(1);
        for v in values.iter_mut() {
            *v = recd_codec::hash_id(*v) % buckets;
        }
    }

    fn apply_rowwise(&self, tensor: &JaggedTensor<u64>) -> JaggedTensor<u64> {
        let buckets = self.buckets.max(1);
        let mut out = JaggedTensor::new();
        let mut scratch = Vec::new();
        for row in tensor.iter() {
            scratch.clear();
            scratch.extend(row.iter().map(|&id| recd_codec::hash_ids(&[id]) % buckets));
            out.push_row(&scratch);
        }
        out
    }

    fn name(&self) -> &'static str {
        "hash_bucketize"
    }
}

/// Truncates every list to its most recent `max_len` ids — the standard
/// sequence-length cap for long user histories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TruncateList {
    /// Maximum list length kept.
    pub max_len: usize,
}

impl SparseTransform for TruncateList {
    fn apply_flat(
        &self,
        values: &mut Vec<u64>,
        offsets: &mut Vec<usize>,
        _scratch: &mut TransformScratch,
    ) {
        // One forward sweep compacting kept suffixes toward the front.
        // Until the first row actually shrinks, every row is already in
        // place and the copy is skipped.
        let mut write = 0usize;
        let mut start = 0usize;
        for offset in offsets.iter_mut().skip(1) {
            let end = *offset;
            let keep = (end - start).min(self.max_len);
            let keep_start = end - keep;
            if keep_start != write {
                values.copy_within(keep_start..end, write);
            }
            write += keep;
            start = end;
            *offset = write;
        }
        values.truncate(write);
    }

    fn apply_rowwise(&self, tensor: &JaggedTensor<u64>) -> JaggedTensor<u64> {
        let mut out = JaggedTensor::new();
        for row in tensor.iter() {
            let start = row.len().saturating_sub(self.max_len);
            out.push_row(&row[start..]);
        }
        out
    }

    fn name(&self) -> &'static str {
        "truncate_list"
    }
}

/// Standard deviation below which a dense column is treated as constant:
/// its values are already indistinguishable at f32 precision, and dividing
/// by a clamped epsilon would only amplify accumulated rounding noise.
const DENSE_STD_FLOOR: f64 = 1e-6;

/// Normalizes dense features to zero mean and unit variance per column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DenseNormalize;

impl DenseNormalize {
    /// Applies the normalization in place with throwaway scratch. Hot paths
    /// use [`DenseNormalize::apply_with_scratch`].
    pub fn apply(&self, dense: &mut DenseMatrix) {
        self.apply_with_scratch(dense, &mut TransformScratch::default());
    }

    /// Applies the normalization in place: one fused Welford pass over the
    /// row-major data accumulates every column's mean and variance
    /// simultaneously, then a single write pass applies the per-column
    /// affine `(v - mean) / std`.
    ///
    /// Columns whose standard deviation is below [`DENSE_STD_FLOOR`] are
    /// treated as constant and **centered without scaling** (`v - mean`,
    /// zero mean preserved): the previous implementation divided their
    /// rounding residue by a clamped epsilon, amplifying noise by up to a
    /// million for no information gain. If every column already sits at
    /// zero mean and zero variance, the write pass is skipped entirely.
    pub fn apply_with_scratch(&self, dense: &mut DenseMatrix, scratch: &mut TransformScratch) {
        let rows = dense.rows();
        let cols = dense.cols();
        if rows == 0 || cols == 0 {
            return;
        }

        // Fused statistics pass: textbook Welford, vectorized across columns
        // so the data is read once, row-major (cache order).
        scratch.mean.clear();
        scratch.mean.resize(cols, 0.0);
        scratch.m2.clear();
        scratch.m2.resize(cols, 0.0);
        let data = dense.data();
        for (r, row) in data.chunks_exact(cols).enumerate() {
            let count = (r + 1) as f64;
            for (c, &v) in row.iter().enumerate() {
                let v = v as f64;
                let delta = v - scratch.mean[c];
                scratch.mean[c] += delta / count;
                scratch.m2[c] += delta * (v - scratch.mean[c]);
            }
        }

        // Per-column affine coefficients; constant columns center only.
        scratch.scale.clear();
        let mut any_active = false;
        for c in 0..cols {
            let std = (scratch.m2[c] / rows as f64).sqrt();
            let scale = if std < DENSE_STD_FLOOR {
                1.0
            } else {
                1.0 / std
            };
            any_active |= scratch.mean[c] != 0.0 || scale != 1.0;
            scratch.scale.push(scale);
        }
        if !any_active {
            return;
        }

        // Single write pass applying the per-column affine, in f64 like the
        // statistics pass: an f32 shift would round away up to ulp(mean),
        // biasing large-magnitude columns by whole standard deviations.
        for row in dense.data_mut().chunks_exact_mut(cols) {
            for (c, v) in row.iter_mut().enumerate() {
                *v = ((*v as f64 - scratch.mean[c]) * scratch.scale[c]) as f32;
            }
        }
    }
}

/// Counts of preprocessing work, used to show O4's savings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PreprocessStats {
    /// Sparse values actually run through transforms.
    pub values_processed: usize,
    /// Sparse values that would have been processed without deduplication.
    pub logical_values: usize,
}

/// A pipeline of sparse transforms plus dense normalization, applied to a
/// [`ConvertedBatch`].
#[derive(Default)]
pub struct PreprocessPipeline {
    sparse: Vec<Box<dyn SparseTransform>>,
    normalize_dense: bool,
}

impl std::fmt::Debug for PreprocessPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreprocessPipeline")
            .field(
                "sparse",
                &self.sparse.iter().map(|t| t.name()).collect::<Vec<_>>(),
            )
            .field("normalize_dense", &self.normalize_dense)
            .finish()
    }
}

impl PreprocessPipeline {
    /// Creates an empty pipeline (no transforms).
    pub fn new() -> Self {
        Self::default()
    }

    /// A representative production-style pipeline: hash ids into `buckets`
    /// buckets, cap sequences at `max_len`, and normalize dense features.
    pub fn standard(buckets: u64, max_len: usize) -> Self {
        Self::new()
            .with_sparse(HashBucketize { buckets })
            .with_sparse(TruncateList { max_len })
            .with_dense_normalization()
    }

    /// Adds a sparse transform.
    #[must_use]
    pub fn with_sparse<T: SparseTransform + 'static>(mut self, transform: T) -> Self {
        self.sparse.push(Box::new(transform));
        self
    }

    /// Enables dense normalization.
    #[must_use]
    pub fn with_dense_normalization(mut self) -> Self {
        self.normalize_dense = true;
        self
    }

    /// Number of sparse transforms in the pipeline.
    pub fn sparse_transform_count(&self) -> usize {
        self.sparse.len()
    }

    /// Runs every sparse transform over one tensor, flat and in place: each
    /// transform edits the tensor's own buffers — no intermediate tensor is
    /// ever allocated.
    fn apply_sparse_flat(&self, tensor: &mut JaggedTensor<u64>, scratch: &mut TransformScratch) {
        if self.sparse.is_empty() {
            return;
        }
        tensor
            .edit_flat(|values, offsets| {
                for t in &self.sparse {
                    t.apply_flat(values, offsets, scratch);
                }
            })
            .expect("transforms preserve jagged invariants");
    }

    /// Reference chain of row-wise applies (one fresh tensor per transform).
    fn apply_sparse_rowwise(&self, tensor: &JaggedTensor<u64>) -> JaggedTensor<u64> {
        let mut current = tensor.clone();
        for t in &self.sparse {
            current = t.apply_rowwise(&current);
        }
        current
    }

    /// Preprocesses a converted batch in place, with throwaway scratch.
    /// Long-lived engines use [`PreprocessPipeline::apply_with_scratch`].
    pub fn apply(&self, batch: &mut ConvertedBatch) -> PreprocessStats {
        self.apply_with_scratch(batch, &mut TransformScratch::default())
    }

    /// Preprocesses a converted batch in place over its flat buffers.
    ///
    /// KJT features are transformed row-by-row (every sample pays). IKJT
    /// features are transformed *once per deduplicated slot* — the O4
    /// wrapper — and their outputs remain IKJTs, so downstream network and
    /// trainer savings are preserved. Either way each feature's
    /// `(values, offsets)` buffers are edited in place; the whole phase
    /// performs no per-tensor allocation. Returns work accounting.
    pub fn apply_with_scratch(
        &self,
        batch: &mut ConvertedBatch,
        scratch: &mut TransformScratch,
    ) -> PreprocessStats {
        let mut stats = PreprocessStats::default();

        // KJT path: full per-row work.
        for (_key, tensor) in batch.kjt.iter_mut() {
            stats.values_processed += tensor.value_count();
            stats.logical_values += tensor.value_count();
            self.apply_sparse_flat(tensor, scratch);
        }

        // IKJT path: work on deduplicated slots only. Logical counts are
        // taken before the transforms so truncation does not skew them.
        for ikjt in &mut batch.ikjts {
            stats.logical_values += ikjt.original_value_count();
            for (_key, tensor) in ikjt.iter_mut() {
                stats.values_processed += tensor.value_count();
                self.apply_sparse_flat(tensor, scratch);
            }
        }

        if self.normalize_dense {
            DenseNormalize.apply_with_scratch(&mut batch.dense, scratch);
        }
        stats
    }

    /// Preprocesses a converted batch through the reference row-wise path:
    /// every transform allocates a fresh tensor per feature, exactly as the
    /// pre-flat implementation did. Kept as the oracle the property suite
    /// compares [`PreprocessPipeline::apply`] against and as the benchmark
    /// baseline for the flat rewrite.
    pub fn apply_rowwise(&self, batch: &mut ConvertedBatch) -> PreprocessStats {
        let mut stats = PreprocessStats::default();

        let kjt_entries: Vec<_> = batch
            .kjt
            .iter()
            .map(|(key, tensor)| {
                stats.values_processed += tensor.value_count();
                stats.logical_values += tensor.value_count();
                (key, self.apply_sparse_rowwise(tensor))
            })
            .collect();
        batch.kjt = recd_core::KeyedJaggedTensor::from_tensors(kjt_entries)
            .expect("transforms preserve batch size");

        let ikjts = std::mem::take(&mut batch.ikjts);
        batch.ikjts = ikjts
            .into_iter()
            .map(|ikjt| {
                let keys = ikjt.keys().to_vec();
                let lookup = ikjt.inverse_lookup().to_vec();
                let tensors: Vec<JaggedTensor<u64>> = keys
                    .iter()
                    .map(|&key| {
                        let tensor = ikjt.feature(key).expect("key from the same ikjt");
                        stats.values_processed += tensor.value_count();
                        self.apply_sparse_rowwise(tensor)
                    })
                    .collect();
                stats.logical_values += ikjt.original_value_count();
                InverseKeyedJaggedTensor::from_parts(keys, tensors, lookup)
                    .expect("transforms preserve slot structure")
            })
            .collect();

        if self.normalize_dense {
            DenseNormalize.apply(&mut batch.dense);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_core::{DataLoaderConfig, FeatureConverter};
    use recd_data::{FeatureId, RequestId, Sample, SampleBatch, SessionId, Timestamp};

    fn batch_with_duplicates() -> SampleBatch {
        (0..6u64)
            .map(|i| {
                Sample::builder(
                    SessionId::new(i / 3),
                    RequestId::new(i),
                    Timestamp::from_millis(i),
                )
                .dense(vec![i as f32, 10.0 * i as f32])
                // Feature 0 duplicates within each session; feature 1 unique.
                .sparse(vec![vec![100 + (i / 3), 200 + (i / 3), 300], vec![i]])
                .build()
            })
            .collect()
    }

    fn converted(dedup: bool) -> recd_core::ConvertedBatch {
        let config = if dedup {
            DataLoaderConfig::new()
                .with_kjt_features([FeatureId::new(1)])
                .with_dedup_group([FeatureId::new(0)])
                .with_dense_features(2)
        } else {
            DataLoaderConfig::new()
                .with_kjt_features([FeatureId::new(0), FeatureId::new(1)])
                .with_dense_features(2)
        };
        FeatureConverter::new(config)
            .convert(&batch_with_duplicates())
            .unwrap()
    }

    /// Applies one transform flat, via the same take/edit/restore dance the
    /// pipeline performs.
    fn flat(transform: &dyn SparseTransform, tensor: &JaggedTensor<u64>) -> JaggedTensor<u64> {
        let (mut values, mut offsets) = tensor.clone().into_parts();
        transform.apply_flat(&mut values, &mut offsets, &mut TransformScratch::default());
        JaggedTensor::from_parts(values, offsets).unwrap()
    }

    #[test]
    fn transforms_are_deterministic_and_preserve_shape() {
        let t = HashBucketize { buckets: 97 };
        let tensor = JaggedTensor::from_lists(&[vec![1u64, 2, 3], vec![], vec![u64::MAX]]);
        let out = flat(&t, &tensor);
        assert_eq!(out.lengths(), tensor.lengths());
        assert!(out.values().iter().all(|&v| v < 97));
        assert_eq!(out, flat(&t, &tensor));

        let trunc = TruncateList { max_len: 2 };
        let out = flat(
            &trunc,
            &JaggedTensor::from_lists(&[vec![1u64, 2, 3, 4], vec![5]]),
        );
        assert_eq!(out.row(0), &[3, 4]);
        assert_eq!(out.row(1), &[5]);
    }

    #[test]
    fn flat_transforms_match_rowwise_oracle() {
        let tensors = [
            JaggedTensor::from_lists(&[vec![1u64, 2, 3], vec![], vec![u64::MAX, 7]]),
            JaggedTensor::new(),
            JaggedTensor::from_lists(&[vec![], vec![], vec![]]),
            JaggedTensor::from_lists(&[(0..20u64).collect::<Vec<_>>()]),
        ];
        let transforms: Vec<Box<dyn SparseTransform>> = vec![
            Box::new(HashBucketize { buckets: 97 }),
            Box::new(HashBucketize { buckets: 1 }),
            Box::new(TruncateList { max_len: 0 }),
            Box::new(TruncateList { max_len: 2 }),
            Box::new(TruncateList { max_len: 64 }),
        ];
        for tensor in &tensors {
            for t in &transforms {
                assert_eq!(
                    flat(t.as_ref(), tensor),
                    t.apply_rowwise(tensor),
                    "flat and row-wise {} disagree",
                    t.name()
                );
            }
        }
    }

    #[test]
    fn dense_normalization_zero_mean_unit_variance() {
        let mut m = DenseMatrix::from_vec(vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0], 3, 2).unwrap();
        DenseNormalize.apply(&mut m);
        for c in 0..2 {
            let mean: f32 = (0..3).map(|r| m.row(r)[c]).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5);
            let var: f32 = (0..3).map(|r| m.row(r)[c] * m.row(r)[c]).sum::<f32>() / 3.0;
            assert!((var - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn dense_normalization_is_exact_for_large_magnitude_columns() {
        // The mean (16777217) is not representable in f32: an f32 affine
        // shift would round it to 16777216 and bias the output by a full
        // standard deviation. The write pass must stay in f64.
        let mut m = DenseMatrix::from_vec(vec![16_777_216.0, 16_777_218.0], 2, 1).unwrap();
        DenseNormalize.apply(&mut m);
        assert_eq!(m.row(0), &[-1.0]);
        assert_eq!(m.row(1), &[1.0]);
    }

    #[test]
    fn dense_normalization_centers_constant_columns_without_scaling() {
        // Column 0 is constant at a large magnitude: the old implementation
        // divided its rounding residue by a clamped epsilon; the fused pass
        // centers it (zero mean preserved) without the noise-amplifying
        // division.
        let mut m =
            DenseMatrix::from_vec(vec![1000.0, 1.0, 1000.0, 2.0, 1000.0, 3.0], 3, 2).unwrap();
        DenseNormalize.apply(&mut m);
        for r in 0..3 {
            assert_eq!(m.row(r)[0], 0.0, "constant column must center to zero");
        }
        let mean: f32 = (0..3).map(|r| m.row(r)[1]).sum::<f32>() / 3.0;
        assert!(mean.abs() < 1e-5, "varying column still normalizes");

        // An already-centered constant matrix needs no write pass at all.
        let mut zeros = DenseMatrix::zeros(4, 2);
        let before = zeros.clone();
        DenseNormalize.apply(&mut zeros);
        assert_eq!(zeros, before);
    }

    #[test]
    fn pipeline_flat_apply_matches_rowwise_apply() {
        let pipeline = PreprocessPipeline::standard(1 << 20, 2);
        for dedup in [false, true] {
            let mut flat_batch = converted(dedup);
            let mut rowwise_batch = flat_batch.clone();
            let flat_stats = pipeline.apply(&mut flat_batch);
            let rowwise_stats = pipeline.apply_rowwise(&mut rowwise_batch);
            assert_eq!(flat_stats, rowwise_stats);
            assert_eq!(flat_batch, rowwise_batch);
        }
    }

    #[test]
    fn dedup_preprocessing_touches_fewer_values_but_same_logical_result() {
        let pipeline = PreprocessPipeline::standard(1 << 20, 8);
        let mut baseline = converted(false);
        let mut recd = converted(true);
        let baseline_stats = pipeline.apply(&mut baseline);
        let recd_stats = pipeline.apply(&mut recd);

        assert_eq!(baseline_stats.logical_values, recd_stats.logical_values);
        assert!(
            recd_stats.values_processed < baseline_stats.values_processed,
            "O4 must process fewer values: {} vs {}",
            recd_stats.values_processed,
            baseline_stats.values_processed
        );

        // Logical equality: expanding the preprocessed IKJT matches the
        // preprocessed KJT for the deduplicated feature.
        let expanded = recd.ikjts[0].to_kjt().unwrap();
        let from_baseline = baseline.kjt.feature(FeatureId::new(0)).unwrap();
        let from_recd = expanded.feature(FeatureId::new(0)).unwrap();
        assert_eq!(from_baseline, from_recd);
    }

    #[test]
    fn pipeline_debug_and_empty_pipeline() {
        let pipeline = PreprocessPipeline::standard(16, 4);
        assert_eq!(pipeline.sparse_transform_count(), 2);
        assert!(format!("{pipeline:?}").contains("hash_bucketize"));

        let empty = PreprocessPipeline::new();
        let mut batch = converted(true);
        let before = batch.clone();
        let stats = empty.apply(&mut batch);
        assert_eq!(batch, before);
        assert_eq!(stats.values_processed, batch.stored_sparse_values());
    }
}
