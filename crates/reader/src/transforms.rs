//! Preprocessing transforms (the user-provided TorchScript modules of the
//! paper) and the wrapper that lets them run over deduplicated tensors (O4).

use recd_core::{ConvertedBatch, DenseMatrix, InverseKeyedJaggedTensor, JaggedTensor};
use serde::{Deserialize, Serialize};

/// A preprocessing transform over one sparse feature's jagged tensor.
///
/// The same transform object is applied either to a full KJT tensor (one row
/// per sample — the baseline) or, through the O4 wrapper, to an IKJT's
/// deduplicated tensor (one row per slot), saving the work for duplicate
/// rows.
pub trait SparseTransform: Send + Sync {
    /// Applies the transform to a jagged tensor, producing a new tensor with
    /// the same row count.
    fn apply(&self, tensor: &JaggedTensor<u64>) -> JaggedTensor<u64>;

    /// Short name used in reports.
    fn name(&self) -> &'static str;
}

/// Hashes every id into `buckets` buckets — the standard "hashing" transform
/// applied before embedding lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashBucketize {
    /// Number of hash buckets.
    pub buckets: u64,
}

impl SparseTransform for HashBucketize {
    fn apply(&self, tensor: &JaggedTensor<u64>) -> JaggedTensor<u64> {
        let buckets = self.buckets.max(1);
        let mut out = JaggedTensor::new();
        let mut scratch = Vec::new();
        for row in tensor.iter() {
            scratch.clear();
            scratch.extend(row.iter().map(|&id| recd_codec::hash_ids(&[id]) % buckets));
            out.push_row(&scratch);
        }
        out
    }

    fn name(&self) -> &'static str {
        "hash_bucketize"
    }
}

/// Truncates every list to its most recent `max_len` ids — the standard
/// sequence-length cap for long user histories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TruncateList {
    /// Maximum list length kept.
    pub max_len: usize,
}

impl SparseTransform for TruncateList {
    fn apply(&self, tensor: &JaggedTensor<u64>) -> JaggedTensor<u64> {
        let mut out = JaggedTensor::new();
        for row in tensor.iter() {
            let start = row.len().saturating_sub(self.max_len);
            out.push_row(&row[start..]);
        }
        out
    }

    fn name(&self) -> &'static str {
        "truncate_list"
    }
}

/// Normalizes dense features to zero mean and unit variance per column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DenseNormalize;

impl DenseNormalize {
    /// Applies the normalization in place.
    pub fn apply(&self, dense: &mut DenseMatrix) {
        let rows = dense.rows();
        let cols = dense.cols();
        if rows == 0 || cols == 0 {
            return;
        }
        for c in 0..cols {
            let mut mean = 0.0f64;
            for r in 0..rows {
                mean += dense.row(r)[c] as f64;
            }
            mean /= rows as f64;
            let mut var = 0.0f64;
            for r in 0..rows {
                let d = dense.row(r)[c] as f64 - mean;
                var += d * d;
            }
            let std = (var / rows as f64).sqrt().max(1e-6);
            for r in 0..rows {
                let v = dense.row_mut(r);
                v[c] = ((v[c] as f64 - mean) / std) as f32;
            }
        }
    }
}

/// Counts of preprocessing work, used to show O4's savings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PreprocessStats {
    /// Sparse values actually run through transforms.
    pub values_processed: usize,
    /// Sparse values that would have been processed without deduplication.
    pub logical_values: usize,
}

/// A pipeline of sparse transforms plus dense normalization, applied to a
/// [`ConvertedBatch`].
#[derive(Default)]
pub struct PreprocessPipeline {
    sparse: Vec<Box<dyn SparseTransform>>,
    normalize_dense: bool,
}

impl std::fmt::Debug for PreprocessPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreprocessPipeline")
            .field(
                "sparse",
                &self.sparse.iter().map(|t| t.name()).collect::<Vec<_>>(),
            )
            .field("normalize_dense", &self.normalize_dense)
            .finish()
    }
}

impl PreprocessPipeline {
    /// Creates an empty pipeline (no transforms).
    pub fn new() -> Self {
        Self::default()
    }

    /// A representative production-style pipeline: hash ids into `buckets`
    /// buckets, cap sequences at `max_len`, and normalize dense features.
    pub fn standard(buckets: u64, max_len: usize) -> Self {
        Self::new()
            .with_sparse(HashBucketize { buckets })
            .with_sparse(TruncateList { max_len })
            .with_dense_normalization()
    }

    /// Adds a sparse transform.
    #[must_use]
    pub fn with_sparse<T: SparseTransform + 'static>(mut self, transform: T) -> Self {
        self.sparse.push(Box::new(transform));
        self
    }

    /// Enables dense normalization.
    #[must_use]
    pub fn with_dense_normalization(mut self) -> Self {
        self.normalize_dense = true;
        self
    }

    /// Number of sparse transforms in the pipeline.
    pub fn sparse_transform_count(&self) -> usize {
        self.sparse.len()
    }

    fn apply_sparse(&self, tensor: &JaggedTensor<u64>) -> JaggedTensor<u64> {
        let mut current = tensor.clone();
        for t in &self.sparse {
            current = t.apply(&current);
        }
        current
    }

    /// Preprocesses a converted batch in place.
    ///
    /// KJT features are transformed row-by-row (every sample pays). IKJT
    /// features are transformed *once per deduplicated slot* — the O4
    /// wrapper — and their outputs remain IKJTs, so downstream network and
    /// trainer savings are preserved. Returns work accounting.
    pub fn apply(&self, batch: &mut ConvertedBatch) -> PreprocessStats {
        let mut stats = PreprocessStats::default();

        // KJT path: full per-row work.
        let kjt_entries: Vec<_> = batch
            .kjt
            .iter()
            .map(|(key, tensor)| {
                stats.values_processed += tensor.value_count();
                stats.logical_values += tensor.value_count();
                (key, self.apply_sparse(tensor))
            })
            .collect();
        batch.kjt = recd_core::KeyedJaggedTensor::from_tensors(kjt_entries)
            .expect("transforms preserve batch size");

        // IKJT path: work on deduplicated slots only.
        let ikjts = std::mem::take(&mut batch.ikjts);
        batch.ikjts = ikjts
            .into_iter()
            .map(|ikjt| {
                let keys = ikjt.keys().to_vec();
                let lookup = ikjt.inverse_lookup().to_vec();
                let tensors: Vec<JaggedTensor<u64>> = keys
                    .iter()
                    .map(|&key| {
                        let tensor = ikjt.feature(key).expect("key from the same ikjt");
                        stats.values_processed += tensor.value_count();
                        self.apply_sparse(tensor)
                    })
                    .collect();
                stats.logical_values += ikjt.original_value_count();
                InverseKeyedJaggedTensor::from_parts(keys, tensors, lookup)
                    .expect("transforms preserve slot structure")
            })
            .collect();

        if self.normalize_dense {
            DenseNormalize.apply(&mut batch.dense);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_core::{DataLoaderConfig, FeatureConverter};
    use recd_data::{FeatureId, RequestId, Sample, SampleBatch, SessionId, Timestamp};

    fn batch_with_duplicates() -> SampleBatch {
        (0..6u64)
            .map(|i| {
                Sample::builder(
                    SessionId::new(i / 3),
                    RequestId::new(i),
                    Timestamp::from_millis(i),
                )
                .dense(vec![i as f32, 10.0 * i as f32])
                // Feature 0 duplicates within each session; feature 1 unique.
                .sparse(vec![vec![100 + (i / 3), 200 + (i / 3), 300], vec![i]])
                .build()
            })
            .collect()
    }

    fn converted(dedup: bool) -> recd_core::ConvertedBatch {
        let config = if dedup {
            DataLoaderConfig::new()
                .with_kjt_features([FeatureId::new(1)])
                .with_dedup_group([FeatureId::new(0)])
                .with_dense_features(2)
        } else {
            DataLoaderConfig::new()
                .with_kjt_features([FeatureId::new(0), FeatureId::new(1)])
                .with_dense_features(2)
        };
        FeatureConverter::new(config)
            .convert(&batch_with_duplicates())
            .unwrap()
    }

    #[test]
    fn transforms_are_deterministic_and_preserve_shape() {
        let t = HashBucketize { buckets: 97 };
        let tensor = JaggedTensor::from_lists(&[vec![1u64, 2, 3], vec![], vec![u64::MAX]]);
        let out = t.apply(&tensor);
        assert_eq!(out.lengths(), tensor.lengths());
        assert!(out.values().iter().all(|&v| v < 97));
        assert_eq!(out, t.apply(&tensor));

        let trunc = TruncateList { max_len: 2 };
        let out = trunc.apply(&JaggedTensor::from_lists(&[vec![1u64, 2, 3, 4], vec![5]]));
        assert_eq!(out.row(0), &[3, 4]);
        assert_eq!(out.row(1), &[5]);
    }

    #[test]
    fn dense_normalization_zero_mean_unit_variance() {
        let mut m = DenseMatrix::from_vec(vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0], 3, 2).unwrap();
        DenseNormalize.apply(&mut m);
        for c in 0..2 {
            let mean: f32 = (0..3).map(|r| m.row(r)[c]).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5);
        }
    }

    #[test]
    fn dedup_preprocessing_touches_fewer_values_but_same_logical_result() {
        let pipeline = PreprocessPipeline::standard(1 << 20, 8);
        let mut baseline = converted(false);
        let mut recd = converted(true);
        let baseline_stats = pipeline.apply(&mut baseline);
        let recd_stats = pipeline.apply(&mut recd);

        assert_eq!(baseline_stats.logical_values, recd_stats.logical_values);
        assert!(
            recd_stats.values_processed < baseline_stats.values_processed,
            "O4 must process fewer values: {} vs {}",
            recd_stats.values_processed,
            baseline_stats.values_processed
        );

        // Logical equality: expanding the preprocessed IKJT matches the
        // preprocessed KJT for the deduplicated feature.
        let expanded = recd.ikjts[0].to_kjt().unwrap();
        let from_baseline = baseline.kjt.feature(FeatureId::new(0)).unwrap();
        let from_recd = expanded.feature(FeatureId::new(0)).unwrap();
        assert_eq!(from_baseline, from_recd);
    }

    #[test]
    fn pipeline_debug_and_empty_pipeline() {
        let pipeline = PreprocessPipeline::standard(16, 4);
        assert_eq!(pipeline.sparse_transform_count(), 2);
        assert!(format!("{pipeline:?}").contains("hash_bucketize"));

        let empty = PreprocessPipeline::new();
        let mut batch = converted(true);
        let before = batch.clone();
        let stats = empty.apply(&mut batch);
        assert_eq!(batch, before);
        assert_eq!(stats.values_processed, batch.stored_sparse_values());
    }
}
