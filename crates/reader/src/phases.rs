//! The reader's phase logic — fill, convert (O3), process (O4) — factored
//! out of [`ReaderNode`](crate::ReaderNode) so the one-shot batch tier and
//! the streaming `recd-dpp` service share one implementation.

use crate::metrics::ReaderMetrics;
use crate::reader::ReaderConfig;
use crate::transforms::PreprocessPipeline;
use recd_core::{ConvertedBatch, FeatureConverter};
use recd_data::{Sample, SampleBatch, Schema};
use recd_storage::{DwrfFile, TableStore};
use std::time::Instant;

/// Fill phase over a single file: fetch the blob, decompress and decode its
/// rows. This is the unit of fill work a streaming fill worker claims.
///
/// # Errors
///
/// Propagates storage errors for missing or corrupt files.
pub fn fill_file(
    store: &TableStore,
    schema: &Schema,
    path: &str,
    metrics: &mut ReaderMetrics,
) -> recd_storage::Result<Vec<Sample>> {
    let start = Instant::now();
    let blob = store.blob_store().get(path)?;
    let bytes_read = blob.len();
    let file = DwrfFile::from_blob(&blob)?;
    let rows = file.read_all(schema)?;
    metrics.fill.record(start.elapsed(), bytes_read, rows.len());
    Ok(rows)
}

/// The convert + process engine of one reader or streaming worker: owns the
/// feature converter (O3) and the preprocessing pipeline (O4), both of which
/// are stateless across batches, so an engine can run forever.
#[derive(Debug)]
pub struct PhaseEngine {
    config: ReaderConfig,
    converter: FeatureConverter,
    pipeline: PreprocessPipeline,
}

impl PhaseEngine {
    /// Creates an engine for the given reader configuration and
    /// preprocessing pipeline.
    pub fn new(config: ReaderConfig, pipeline: PreprocessPipeline) -> Self {
        let converter = FeatureConverter::new(config.dataloader.clone());
        Self {
            config,
            converter,
            pipeline,
        }
    }

    /// Borrows the reader configuration.
    pub fn config(&self) -> &ReaderConfig {
        &self.config
    }

    /// Fill phase over an explicit file list (the batch reader's unit of
    /// work).
    ///
    /// # Errors
    ///
    /// Propagates storage errors for missing or corrupt files.
    pub fn fill(
        &self,
        store: &TableStore,
        schema: &Schema,
        files: &[String],
        metrics: &mut ReaderMetrics,
    ) -> recd_storage::Result<Vec<Sample>> {
        let mut rows = Vec::new();
        for path in files {
            rows.extend(fill_file(store, schema, path, metrics)?);
        }
        Ok(rows)
    }

    /// Convert phase: rows → KJT/IKJT tensors.
    ///
    /// # Errors
    ///
    /// Propagates conversion errors (malformed dataloader configuration).
    pub fn convert(
        &self,
        batch: &SampleBatch,
        metrics: &mut ReaderMetrics,
    ) -> recd_core::Result<ConvertedBatch> {
        let start = Instant::now();
        let converted = if self.config.dedup_enabled {
            self.converter.convert(batch)?
        } else {
            self.converter.convert_baseline(batch)?
        };
        // `items` counts the values hashed for duplicate detection (zero on
        // the baseline path); `bytes` is the tensor payload materialized.
        let hashed_values: usize = converted
            .ikjts
            .iter()
            .map(|ikjt| ikjt.original_value_count())
            .sum();
        metrics.convert.record(
            start.elapsed(),
            converted.sparse_payload_bytes(),
            hashed_values,
        );
        Ok(converted)
    }

    /// Process phase: run the preprocessing pipeline over the converted
    /// tensors.
    pub fn process(&self, batch: &mut ConvertedBatch, metrics: &mut ReaderMetrics) {
        let start = Instant::now();
        let stats = self.pipeline.apply(batch);
        metrics.process.record(
            start.elapsed(),
            batch.sparse_payload_bytes(),
            stats.values_processed,
        );
    }

    /// Runs convert + process over one coalesced chunk of rows and records
    /// the batch-level accounting (samples, batches, egress bytes). This is
    /// the unit of compute work a streaming worker claims.
    ///
    /// # Errors
    ///
    /// Propagates conversion errors.
    pub fn run_batch(
        &self,
        rows: Vec<Sample>,
        metrics: &mut ReaderMetrics,
    ) -> recd_core::Result<ConvertedBatch> {
        let sample_batch = SampleBatch::new(rows);
        let mut converted = self.convert(&sample_batch, metrics)?;
        self.process(&mut converted, metrics);
        metrics.samples += converted.batch_size;
        metrics.batches += 1;
        metrics.egress_bytes += converted.sparse_payload_bytes() + converted.dense.payload_bytes();
        Ok(converted)
    }
}
