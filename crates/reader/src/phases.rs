//! The reader's phase logic — fill, convert (O3), process (O4) — factored
//! out of [`ReaderNode`](crate::ReaderNode) so the one-shot batch tier and
//! the streaming `recd-dpp` service share one implementation.

use crate::metrics::ReaderMetrics;
use crate::reader::ReaderConfig;
use crate::transforms::PreprocessPipeline;
use recd_core::{ConvertedBatch, FeatureConverter};
use recd_data::{ColumnarBatch, Sample, SampleBatch, Schema};
use recd_storage::{DwrfFile, TableStore};
use std::time::Instant;

/// Fill phase over a single file: fetch the blob, decompress and decode its
/// rows. This is the unit of fill work a streaming fill worker claims.
///
/// # Errors
///
/// Propagates storage errors for missing or corrupt files.
pub fn fill_file(
    store: &TableStore,
    schema: &Schema,
    path: &str,
    metrics: &mut ReaderMetrics,
) -> recd_storage::Result<Vec<Sample>> {
    // Timed directly (not via fill_file_columnar) so the row-wise fill
    // metric keeps covering Sample materialization, as it always has.
    let start = Instant::now();
    let blob = store.blob_store().get(path)?;
    let bytes_read = blob.len();
    let file = DwrfFile::from_blob(&blob)?;
    let rows = file.read_all(schema)?;
    metrics.fill.record(start.elapsed(), bytes_read, rows.len());
    Ok(rows)
}

/// Columnar fill phase over a single file: fetch the blob, decompress, and
/// decode straight into flat column buffers — no per-row `Sample` is ever
/// materialized. This is the fill path the streaming service and the batch
/// reader both run.
///
/// # Errors
///
/// Propagates storage errors for missing or corrupt files.
pub fn fill_file_columnar(
    store: &TableStore,
    schema: &Schema,
    path: &str,
    metrics: &mut ReaderMetrics,
) -> recd_storage::Result<ColumnarBatch> {
    let start = Instant::now();
    let blob = store.blob_store().get(path)?;
    let bytes_read = blob.len();
    let file = DwrfFile::from_blob(&blob)?;
    let rows = file.read_all_columnar(schema)?;
    metrics.fill.record(start.elapsed(), bytes_read, rows.len());
    Ok(rows)
}

/// The convert + process engine of one reader or streaming worker: owns the
/// feature converter (O3) and the preprocessing pipeline (O4), both of which
/// are stateless across batches, so an engine can run forever.
#[derive(Debug)]
pub struct PhaseEngine {
    config: ReaderConfig,
    converter: FeatureConverter,
    pipeline: PreprocessPipeline,
}

impl PhaseEngine {
    /// Creates an engine for the given reader configuration and
    /// preprocessing pipeline.
    pub fn new(config: ReaderConfig, pipeline: PreprocessPipeline) -> Self {
        let converter = FeatureConverter::new(config.dataloader.clone());
        Self {
            config,
            converter,
            pipeline,
        }
    }

    /// Borrows the reader configuration.
    pub fn config(&self) -> &ReaderConfig {
        &self.config
    }

    /// Fill phase over an explicit file list (the batch reader's unit of
    /// work).
    ///
    /// # Errors
    ///
    /// Propagates storage errors for missing or corrupt files.
    pub fn fill(
        &self,
        store: &TableStore,
        schema: &Schema,
        files: &[String],
        metrics: &mut ReaderMetrics,
    ) -> recd_storage::Result<Vec<Sample>> {
        let mut rows = Vec::new();
        for path in files {
            rows.extend(fill_file(store, schema, path, metrics)?);
        }
        Ok(rows)
    }

    /// Columnar fill phase over an explicit file list: every file decodes
    /// into flat buffers which are concatenated in file order.
    ///
    /// # Errors
    ///
    /// Propagates storage errors for missing or corrupt files.
    pub fn fill_columnar(
        &self,
        store: &TableStore,
        schema: &Schema,
        files: &[String],
        metrics: &mut ReaderMetrics,
    ) -> recd_storage::Result<ColumnarBatch> {
        let mut rows = ColumnarBatch::new(schema.dense_count(), schema.sparse_count());
        for path in files {
            let file_rows = fill_file_columnar(store, schema, path, metrics)?;
            rows.append(&file_rows)
                .expect("files of one schema share a column shape");
        }
        Ok(rows)
    }

    /// Convert phase: rows → KJT/IKJT tensors.
    ///
    /// # Errors
    ///
    /// Propagates conversion errors (malformed dataloader configuration).
    pub fn convert(
        &self,
        batch: &SampleBatch,
        metrics: &mut ReaderMetrics,
    ) -> recd_core::Result<ConvertedBatch> {
        let start = Instant::now();
        let converted = if self.config.dedup_enabled {
            self.converter.convert(batch)?
        } else {
            self.converter.convert_baseline(batch)?
        };
        // `items` counts the values hashed for duplicate detection (zero on
        // the baseline path); `bytes` is the tensor payload materialized.
        let hashed_values: usize = converted
            .ikjts
            .iter()
            .map(|ikjt| ikjt.original_value_count())
            .sum();
        metrics.convert.record(
            start.elapsed(),
            converted.sparse_payload_bytes(),
            hashed_values,
        );
        Ok(converted)
    }

    /// Process phase: run the preprocessing pipeline over the converted
    /// tensors.
    pub fn process(&self, batch: &mut ConvertedBatch, metrics: &mut ReaderMetrics) {
        let start = Instant::now();
        let stats = self.pipeline.apply(batch);
        metrics.process.record(
            start.elapsed(),
            batch.sparse_payload_bytes(),
            stats.values_processed,
        );
    }

    /// Columnar convert phase: flat column buffers → KJT/IKJT tensors,
    /// value-identical to [`PhaseEngine::convert`] over the same rows.
    ///
    /// # Errors
    ///
    /// Propagates conversion errors (malformed dataloader configuration).
    pub fn convert_columnar(
        &self,
        batch: &ColumnarBatch,
        metrics: &mut ReaderMetrics,
    ) -> recd_core::Result<ConvertedBatch> {
        let start = Instant::now();
        let converted = if self.config.dedup_enabled {
            self.converter.convert_columnar(batch)?
        } else {
            self.converter.convert_columnar_baseline(batch)?
        };
        let hashed_values: usize = converted
            .ikjts
            .iter()
            .map(|ikjt| ikjt.original_value_count())
            .sum();
        metrics.convert.record(
            start.elapsed(),
            converted.sparse_payload_bytes(),
            hashed_values,
        );
        Ok(converted)
    }

    /// Runs convert + process over one coalesced chunk of row-wise samples
    /// and records the batch-level accounting (samples, batches, egress
    /// bytes) — the row-wise counterpart of
    /// [`PhaseEngine::run_batch_columnar`].
    ///
    /// # Errors
    ///
    /// Propagates conversion errors.
    pub fn run_batch(
        &self,
        rows: Vec<Sample>,
        metrics: &mut ReaderMetrics,
    ) -> recd_core::Result<ConvertedBatch> {
        let sample_batch = SampleBatch::new(rows);
        let converted = self.convert(&sample_batch, metrics)?;
        Ok(self.finish_batch(converted, metrics))
    }

    /// Runs convert + process over one coalesced columnar chunk — the unit
    /// of compute work a streaming worker claims. Output is value-identical
    /// to [`PhaseEngine::run_batch`] over the same rows.
    ///
    /// # Errors
    ///
    /// Propagates conversion errors.
    pub fn run_batch_columnar(
        &self,
        rows: &ColumnarBatch,
        metrics: &mut ReaderMetrics,
    ) -> recd_core::Result<ConvertedBatch> {
        let converted = self.convert_columnar(rows, metrics)?;
        Ok(self.finish_batch(converted, metrics))
    }

    /// Shared tail of both `run_batch` flavors: the process phase plus the
    /// batch-level accounting.
    fn finish_batch(
        &self,
        mut converted: ConvertedBatch,
        metrics: &mut ReaderMetrics,
    ) -> ConvertedBatch {
        self.process(&mut converted, metrics);
        metrics.samples += converted.batch_size;
        metrics.batches += 1;
        metrics.egress_bytes += converted.sparse_payload_bytes() + converted.dense.payload_bytes();
        converted
    }
}
