//! The reader's phase logic — fill, convert (O3), process (O4) — factored
//! out of [`ReaderNode`](crate::ReaderNode) so the one-shot batch tier and
//! the streaming `recd-dpp` service share one implementation.

use crate::metrics::ReaderMetrics;
use crate::reader::ReaderConfig;
use crate::transforms::{PreprocessPipeline, TransformScratch};
use recd_core::{ConvertedBatch, DedupScratch, FeatureConverter};
use recd_data::{ColumnarBatch, Sample, SampleBatch, Schema};
use recd_storage::{DwrfFile, FileReadScratch, TableStore};
use std::time::Instant;

/// Fill phase over a single file: fetch the blob, decompress and decode its
/// rows. This is the unit of fill work a streaming fill worker claims.
///
/// # Errors
///
/// Propagates storage errors for missing or corrupt files.
pub fn fill_file(
    store: &TableStore,
    schema: &Schema,
    path: &str,
    metrics: &mut ReaderMetrics,
) -> recd_storage::Result<Vec<Sample>> {
    // Timed directly (not via fill_file_columnar) so the row-wise fill
    // metric keeps covering Sample materialization, as it always has.
    let start = Instant::now();
    let blob = store.blob_store().get(path)?;
    let bytes_read = blob.len();
    let file = DwrfFile::from_blob(&blob)?;
    let rows = file.read_all(schema)?;
    metrics.fill.record(start.elapsed(), bytes_read, rows.len());
    Ok(rows)
}

/// Columnar fill phase over a single file: fetch the blob, decompress, and
/// decode straight into flat column buffers — no per-row `Sample` is ever
/// materialized. This is the fill path the streaming service and the batch
/// reader both run.
///
/// # Errors
///
/// Propagates storage errors for missing or corrupt files.
pub fn fill_file_columnar(
    store: &TableStore,
    schema: &Schema,
    path: &str,
    metrics: &mut ReaderMetrics,
) -> recd_storage::Result<ColumnarBatch> {
    let mut out = ColumnarBatch::new(schema.dense_count(), schema.sparse_count());
    fill_file_columnar_into(
        store,
        schema,
        path,
        &mut FileReadScratch::default(),
        &mut out,
        metrics,
    )?;
    Ok(out)
}

/// Columnar fill into a caller-provided (typically pool-recycled) batch —
/// the buffer-reusing variant of [`fill_file_columnar`] the streaming fill
/// workers run: with a long-lived [`FileReadScratch`] and a recycled batch,
/// steady-state fill decodes with no heap allocation beyond the fetched
/// blob itself. On error the batch contents are unspecified.
///
/// # Errors
///
/// Propagates storage errors for missing or corrupt files.
pub fn fill_file_columnar_into(
    store: &TableStore,
    schema: &Schema,
    path: &str,
    scratch: &mut FileReadScratch,
    out: &mut ColumnarBatch,
    metrics: &mut ReaderMetrics,
) -> recd_storage::Result<()> {
    let start = Instant::now();
    // Fetch into the scratch's recycled blob buffer — the last hot-path
    // allocation the fill workers had left.
    let bytes_read = store.blob_store().get_into(path, scratch.blob_buf())?;
    let file = DwrfFile::from_blob(scratch.blob())?;
    file.read_all_columnar_into(schema, scratch, out)?;
    metrics.fill.record(start.elapsed(), bytes_read, out.len());
    Ok(())
}

/// The convert + process engine of one reader or streaming worker: owns the
/// feature converter (O3), the preprocessing pipeline (O4), and the scratch
/// buffers both phases reuse across batches, so an engine can run forever
/// without steady-state allocation.
#[derive(Debug)]
pub struct PhaseEngine {
    config: ReaderConfig,
    converter: FeatureConverter,
    pipeline: PreprocessPipeline,
    transform_scratch: TransformScratch,
    dedup_scratch: DedupScratch,
}

impl PhaseEngine {
    /// Creates an engine for the given reader configuration and
    /// preprocessing pipeline.
    pub fn new(config: ReaderConfig, pipeline: PreprocessPipeline) -> Self {
        let converter = FeatureConverter::new(config.dataloader.clone());
        Self {
            config,
            converter,
            pipeline,
            transform_scratch: TransformScratch::default(),
            dedup_scratch: DedupScratch::default(),
        }
    }

    /// Borrows the reader configuration.
    pub fn config(&self) -> &ReaderConfig {
        &self.config
    }

    /// Fill phase over an explicit file list (the batch reader's unit of
    /// work).
    ///
    /// # Errors
    ///
    /// Propagates storage errors for missing or corrupt files.
    pub fn fill(
        &self,
        store: &TableStore,
        schema: &Schema,
        files: &[String],
        metrics: &mut ReaderMetrics,
    ) -> recd_storage::Result<Vec<Sample>> {
        let mut rows = Vec::new();
        for path in files {
            rows.extend(fill_file(store, schema, path, metrics)?);
        }
        Ok(rows)
    }

    /// Columnar fill phase over an explicit file list: every file decodes
    /// into flat buffers which are concatenated in file order.
    ///
    /// # Errors
    ///
    /// Propagates storage errors for missing or corrupt files.
    pub fn fill_columnar(
        &self,
        store: &TableStore,
        schema: &Schema,
        files: &[String],
        metrics: &mut ReaderMetrics,
    ) -> recd_storage::Result<ColumnarBatch> {
        let mut rows = ColumnarBatch::new(schema.dense_count(), schema.sparse_count());
        let mut file_rows = ColumnarBatch::new(schema.dense_count(), schema.sparse_count());
        let mut scratch = FileReadScratch::default();
        for path in files {
            fill_file_columnar_into(store, schema, path, &mut scratch, &mut file_rows, metrics)?;
            rows.append(&file_rows)
                .expect("files of one schema share a column shape");
        }
        Ok(rows)
    }

    /// Convert phase: rows → KJT/IKJT tensors.
    ///
    /// # Errors
    ///
    /// Propagates conversion errors (malformed dataloader configuration).
    pub fn convert(
        &self,
        batch: &SampleBatch,
        metrics: &mut ReaderMetrics,
    ) -> recd_core::Result<ConvertedBatch> {
        let start = Instant::now();
        let converted = if self.config.dedup_enabled {
            self.converter.convert(batch)?
        } else {
            self.converter.convert_baseline(batch)?
        };
        Self::record_convert(&converted, start, metrics);
        Ok(converted)
    }

    /// Process phase: run the preprocessing pipeline over the converted
    /// tensors, flat and in place, reusing the engine's scratch buffers.
    pub fn process(&mut self, batch: &mut ConvertedBatch, metrics: &mut ReaderMetrics) {
        let start = Instant::now();
        let stats = self
            .pipeline
            .apply_with_scratch(batch, &mut self.transform_scratch);
        metrics.process.record(
            start.elapsed(),
            batch.sparse_payload_bytes(),
            stats.values_processed,
        );
    }

    /// Columnar convert phase: flat column buffers → KJT/IKJT tensors,
    /// value-identical to [`PhaseEngine::convert`] over the same rows.
    ///
    /// # Errors
    ///
    /// Propagates conversion errors (malformed dataloader configuration).
    pub fn convert_columnar(
        &self,
        batch: &ColumnarBatch,
        metrics: &mut ReaderMetrics,
    ) -> recd_core::Result<ConvertedBatch> {
        let start = Instant::now();
        let converted = if self.config.dedup_enabled {
            self.converter.convert_columnar(batch)?
        } else {
            self.converter.convert_columnar_baseline(batch)?
        };
        Self::record_convert(&converted, start, metrics);
        Ok(converted)
    }

    /// Columnar convert into a caller-provided (typically pool-recycled)
    /// shell, reusing both the shell's buffers and the engine's dedup
    /// scratch — the steady-state-allocation-free variant of
    /// [`PhaseEngine::convert_columnar`], with identical output.
    ///
    /// # Errors
    ///
    /// Propagates conversion errors; on error the shell's contents are
    /// unspecified.
    pub fn convert_columnar_into(
        &mut self,
        batch: &ColumnarBatch,
        out: &mut ConvertedBatch,
        metrics: &mut ReaderMetrics,
    ) -> recd_core::Result<()> {
        let start = Instant::now();
        if self.config.dedup_enabled {
            self.converter
                .convert_columnar_into(batch, &mut self.dedup_scratch, out)?;
        } else {
            self.converter.convert_columnar_baseline_into(batch, out)?;
        }
        Self::record_convert(out, start, metrics);
        Ok(())
    }

    /// Shared convert-phase accounting: `items` counts the values hashed for
    /// duplicate detection (zero on the baseline path); `bytes` is the
    /// tensor payload materialized.
    fn record_convert(converted: &ConvertedBatch, start: Instant, metrics: &mut ReaderMetrics) {
        let hashed_values: usize = converted
            .ikjts
            .iter()
            .map(|ikjt| ikjt.original_value_count())
            .sum();
        metrics.convert.record(
            start.elapsed(),
            converted.sparse_payload_bytes(),
            hashed_values,
        );
    }

    /// Runs convert + process over one coalesced chunk of row-wise samples
    /// and records the batch-level accounting (samples, batches, egress
    /// bytes) — the row-wise counterpart of
    /// [`PhaseEngine::run_batch_columnar`].
    ///
    /// # Errors
    ///
    /// Propagates conversion errors.
    pub fn run_batch(
        &mut self,
        rows: Vec<Sample>,
        metrics: &mut ReaderMetrics,
    ) -> recd_core::Result<ConvertedBatch> {
        let sample_batch = SampleBatch::new(rows);
        let mut converted = self.convert(&sample_batch, metrics)?;
        self.finish_batch(&mut converted, metrics);
        Ok(converted)
    }

    /// Runs convert + process over one coalesced columnar chunk — the unit
    /// of compute work a streaming worker claims. Output is value-identical
    /// to [`PhaseEngine::run_batch`] over the same rows.
    ///
    /// # Errors
    ///
    /// Propagates conversion errors.
    pub fn run_batch_columnar(
        &mut self,
        rows: &ColumnarBatch,
        metrics: &mut ReaderMetrics,
    ) -> recd_core::Result<ConvertedBatch> {
        let mut converted = self.convert_columnar(rows, metrics)?;
        self.finish_batch(&mut converted, metrics);
        Ok(converted)
    }

    /// Runs convert + process into a recycled shell — the fully
    /// buffer-reusing unit of compute work: converted tensors land in the
    /// shell's buffers and the flat process phase edits them in place, so a
    /// steady-state batch allocates nothing. Output is value-identical to
    /// [`PhaseEngine::run_batch_columnar`].
    ///
    /// # Errors
    ///
    /// Propagates conversion errors; on error the shell's contents are
    /// unspecified.
    pub fn run_batch_columnar_into(
        &mut self,
        rows: &ColumnarBatch,
        out: &mut ConvertedBatch,
        metrics: &mut ReaderMetrics,
    ) -> recd_core::Result<()> {
        self.convert_columnar_into(rows, out, metrics)?;
        self.finish_batch(out, metrics);
        Ok(())
    }

    /// Shared tail of the `run_batch` flavors: the process phase plus the
    /// batch-level accounting.
    fn finish_batch(&mut self, converted: &mut ConvertedBatch, metrics: &mut ReaderMetrics) {
        self.process(converted, metrics);
        metrics.samples += converted.batch_size;
        metrics.batches += 1;
        metrics.egress_bytes += converted.sparse_payload_bytes() + converted.dense.payload_bytes();
    }
}
