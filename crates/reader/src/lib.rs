//! # recd-reader
//!
//! The reader tier (the paper's DPP readers): stateless nodes that *fill*
//! batches of rows from storage, *convert* them into tensors, and *process*
//! (preprocess) the tensors before sending them to trainers (paper §2.1,
//! Figure 5).
//!
//! RecD touches the reader in two places:
//!
//! * **O3 — feature conversion to IKJTs**: duplicate feature values are
//!   detected (by hashing) during conversion and encoded once per batch.
//! * **O4 — deduplicated preprocessing**: preprocessing transforms run over
//!   the deduplicated `values`/`offsets` slices instead of the full batch,
//!   and their outputs stay deduplicated, cutting both reader CPU time and
//!   reader→trainer network bytes.
//!
//! [`ReaderNode`] implements fill/convert/process with per-phase CPU-time and
//! byte accounting ([`ReaderMetrics`]); [`ReaderTier`] runs several readers
//! over a partition's files in parallel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod phases;
pub mod reader;
pub mod tier;
pub mod transforms;

pub use metrics::{PhaseMetrics, ReaderCostModel, ReaderMetrics};
pub use phases::{fill_file, fill_file_columnar, fill_file_columnar_into, PhaseEngine};
pub use reader::{ReaderConfig, ReaderNode, ReaderOutput};
pub use tier::{ReaderTier, TierReport};
pub use transforms::{
    DenseNormalize, HashBucketize, PreprocessPipeline, PreprocessStats, SparseTransform,
    TransformScratch, TruncateList,
};
