//! The reader tier: several reader nodes splitting a partition's files.

use crate::metrics::{ReaderCostModel, ReaderMetrics};
use crate::reader::{ReaderConfig, ReaderNode, ReaderOutput};
use crate::transforms::PreprocessPipeline;
use recd_data::Schema;
use recd_storage::{StoredPartition, TableStore};
use serde::{Deserialize, Serialize};

/// Aggregate report for a reader-tier run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TierReport {
    /// Number of readers used.
    pub readers: usize,
    /// Combined per-phase metrics across all readers.
    pub metrics: ReaderMetrics,
}

impl TierReport {
    /// Average per-reader throughput (samples per CPU-second under the
    /// [`ReaderCostModel`]) — the quantity Figure 7 reports as "reader
    /// throughput".
    pub fn per_reader_throughput(&self) -> f64 {
        ReaderCostModel::default().samples_per_cpu_second(&self.metrics)
    }
}

/// A tier of identical reader nodes. Files of a partition are distributed
/// round-robin across the readers, which run in parallel threads.
#[derive(Debug)]
pub struct ReaderTier {
    readers: usize,
    config: ReaderConfig,
    pipeline_factory: fn() -> PreprocessPipeline,
}

impl ReaderTier {
    /// Creates a tier of `readers` identical readers. The pipeline factory
    /// builds each reader's preprocessing pipeline (pipelines hold boxed
    /// transforms and are not `Clone`).
    ///
    /// # Panics
    ///
    /// Panics if `readers` is zero.
    pub fn new(
        readers: usize,
        config: ReaderConfig,
        pipeline_factory: fn() -> PreprocessPipeline,
    ) -> Self {
        assert!(readers > 0, "a reader tier needs at least one reader");
        Self {
            readers,
            config,
            pipeline_factory,
        }
    }

    /// Runs the tier over a stored partition: files are assigned round-robin
    /// to readers, readers run in parallel, and their outputs are
    /// concatenated in reader order.
    ///
    /// # Errors
    ///
    /// Returns the first reader error encountered.
    pub fn run(
        &self,
        store: &TableStore,
        schema: &Schema,
        partition: &StoredPartition,
    ) -> Result<(Vec<ReaderOutput>, TierReport), Box<dyn std::error::Error + Send + Sync>> {
        let assignments: Vec<Vec<String>> = (0..self.readers)
            .map(|r| {
                partition
                    .files
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % self.readers == r)
                    .map(|(_, f)| f.clone())
                    .collect()
            })
            .collect();

        let outputs: Vec<Result<ReaderOutput, _>> = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .iter()
                .map(|files| {
                    let config = self.config.clone();
                    let pipeline = (self.pipeline_factory)();
                    scope.spawn(move || {
                        ReaderNode::new(config, pipeline).read_files(store, schema, files)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("reader thread must not panic"))
                .collect()
        });

        let mut report = TierReport {
            readers: self.readers,
            metrics: ReaderMetrics::default(),
        };
        let mut collected = Vec::with_capacity(outputs.len());
        for output in outputs {
            let output = output?;
            report.metrics += output.metrics;
            collected.push(output);
        }
        Ok((collected, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_core::DataLoaderConfig;
    use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
    use recd_storage::TectonicSim;

    #[test]
    fn tier_splits_files_and_aggregates_metrics() {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        let p = gen.generate_partition();
        let store = TableStore::new(TectonicSim::new(4), 16, 1);
        let (stored, _) = store.land_partition(&p.schema, "t", 0, &p.samples);
        assert!(stored.files.len() >= 3, "need several files to split");

        let config = ReaderConfig::new(64, DataLoaderConfig::from_schema(&p.schema));
        let tier = ReaderTier::new(3, config, PreprocessPipeline::new);
        let (outputs, report) = tier.run(&store, &p.schema, &stored).unwrap();
        assert_eq!(outputs.len(), 3);
        assert_eq!(report.readers, 3);
        assert_eq!(report.metrics.samples, p.samples.len());
        assert!(report.per_reader_throughput() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one reader")]
    fn zero_readers_panics() {
        let config = ReaderConfig::new(1, DataLoaderConfig::new());
        ReaderTier::new(0, config, PreprocessPipeline::new);
    }
}
