//! A single reader node: fill, convert, process.

use crate::metrics::ReaderMetrics;
use crate::phases::PhaseEngine;
use crate::transforms::PreprocessPipeline;
use recd_core::{ConvertedBatch, DataLoaderConfig};
use recd_data::{Sample, SampleBatch, Schema};
use recd_storage::{StoredPartition, TableStore};

/// Configuration of one reader node.
#[derive(Debug, Clone)]
pub struct ReaderConfig {
    /// Training batch size the reader assembles.
    pub batch_size: usize,
    /// DataLoader specification (which features become KJTs vs IKJTs).
    pub dataloader: DataLoaderConfig,
    /// Whether the RecD deduplicating conversion is enabled (O3). When
    /// false, the reader produces baseline KJT-only batches even if the
    /// dataloader declares dedup groups.
    pub dedup_enabled: bool,
}

impl ReaderConfig {
    /// Creates a reader configuration.
    pub fn new(batch_size: usize, dataloader: DataLoaderConfig) -> Self {
        Self {
            batch_size: batch_size.max(1),
            dataloader,
            dedup_enabled: true,
        }
    }

    /// Disables deduplication (baseline reader).
    #[must_use]
    pub fn without_dedup(mut self) -> Self {
        self.dedup_enabled = false;
        self
    }
}

/// The output of one reader run over a set of files.
#[derive(Debug)]
pub struct ReaderOutput {
    /// Preprocessed batches, in row order.
    pub batches: Vec<ConvertedBatch>,
    /// Per-phase accounting.
    pub metrics: ReaderMetrics,
}

/// A stateless reader node: a thin orchestration shell around the shared
/// [`PhaseEngine`], which both this batch reader and the streaming
/// `recd-dpp` service use for the actual phase work.
#[derive(Debug)]
pub struct ReaderNode {
    engine: PhaseEngine,
}

impl ReaderNode {
    /// Creates a reader with the standard preprocessing pipeline.
    pub fn new(config: ReaderConfig, pipeline: PreprocessPipeline) -> Self {
        Self {
            engine: PhaseEngine::new(config, pipeline),
        }
    }

    /// Borrows the reader configuration.
    pub fn config(&self) -> &ReaderConfig {
        self.engine.config()
    }

    /// Fill phase: fetch the listed files from storage, decompress and decode
    /// them into rows.
    ///
    /// # Errors
    ///
    /// Propagates storage errors for missing or corrupt files.
    pub fn fill(
        &self,
        store: &TableStore,
        schema: &Schema,
        files: &[String],
        metrics: &mut ReaderMetrics,
    ) -> recd_storage::Result<Vec<Sample>> {
        self.engine.fill(store, schema, files, metrics)
    }

    /// Convert phase: rows → KJT/IKJT tensors.
    ///
    /// # Errors
    ///
    /// Propagates conversion errors (malformed dataloader configuration).
    pub fn convert(
        &self,
        batch: &SampleBatch,
        metrics: &mut ReaderMetrics,
    ) -> recd_core::Result<ConvertedBatch> {
        self.engine.convert(batch, metrics)
    }

    /// Process phase: run the preprocessing pipeline over the converted
    /// tensors (in place, reusing the engine's scratch).
    pub fn process(&mut self, batch: &mut ConvertedBatch, metrics: &mut ReaderMetrics) {
        self.engine.process(batch, metrics)
    }

    /// Runs the full fill→convert→process loop over a stored partition,
    /// producing preprocessed batches of `batch_size` rows.
    ///
    /// # Errors
    ///
    /// Propagates storage and conversion errors.
    pub fn read_partition(
        &mut self,
        store: &TableStore,
        schema: &Schema,
        partition: &StoredPartition,
    ) -> Result<ReaderOutput, Box<dyn std::error::Error + Send + Sync>> {
        self.read_files(store, schema, &partition.files)
    }

    /// Runs the full loop over an explicit list of files (the unit of work a
    /// reader tier assigns to one reader).
    ///
    /// # Errors
    ///
    /// Propagates storage and conversion errors.
    pub fn read_files(
        &mut self,
        store: &TableStore,
        schema: &Schema,
        files: &[String],
    ) -> Result<ReaderOutput, Box<dyn std::error::Error + Send + Sync>> {
        let mut metrics = ReaderMetrics::default();
        let rows = self
            .engine
            .fill_columnar(store, schema, files, &mut metrics)?;
        let batch_size = self.engine.config().batch_size;
        let mut batches = Vec::new();
        let mut start = 0;
        while start < rows.len() {
            let end = (start + batch_size).min(rows.len());
            let chunk = rows.slice_rows(start..end);
            batches.push(self.engine.run_batch_columnar(&chunk, &mut metrics)?);
            start = end;
        }
        Ok(ReaderOutput { batches, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
    use recd_etl::cluster_by_session;
    use recd_storage::TectonicSim;

    struct Setup {
        schema: Schema,
        store: TableStore,
        partition: StoredPartition,
        samples: Vec<Sample>,
    }

    fn setup(clustered: bool) -> Setup {
        let gen = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
        let p = gen.generate_partition();
        let samples = if clustered {
            cluster_by_session(&p.samples)
        } else {
            p.samples.clone()
        };
        let store = TableStore::new(TectonicSim::new(4), 32, 4);
        let (partition, _) = store.land_partition(&p.schema, "t", 0, &samples);
        Setup {
            schema: p.schema,
            store,
            partition,
            samples,
        }
    }

    fn dataloader(schema: &Schema) -> DataLoaderConfig {
        DataLoaderConfig::from_schema(schema)
    }

    #[test]
    fn reader_round_trips_all_samples_into_batches() {
        let s = setup(true);
        let mut reader = ReaderNode::new(
            ReaderConfig::new(64, dataloader(&s.schema)),
            PreprocessPipeline::new(),
        );
        let out = reader
            .read_partition(&s.store, &s.schema, &s.partition)
            .unwrap();
        assert_eq!(out.metrics.samples, s.samples.len());
        assert_eq!(
            out.batches.iter().map(|b| b.batch_size).sum::<usize>(),
            s.samples.len()
        );
        assert_eq!(out.metrics.batches, out.batches.len());
        assert!(out.metrics.fill.bytes > 0);
        assert!(out.metrics.egress_bytes > 0);
        assert!(out.metrics.total_cpu_nanos() > 0);
        // Labels survive the conversion in order.
        let first_batch = &out.batches[0];
        assert_eq!(first_batch.labels[0], s.samples[0].label);
    }

    #[test]
    fn dedup_reader_sends_fewer_bytes_than_baseline_on_clustered_data() {
        let s = setup(true);
        let mut recd = ReaderNode::new(
            ReaderConfig::new(128, dataloader(&s.schema)),
            PreprocessPipeline::standard(1 << 20, 64),
        );
        let mut baseline = ReaderNode::new(
            ReaderConfig::new(128, dataloader(&s.schema)).without_dedup(),
            PreprocessPipeline::standard(1 << 20, 64),
        );
        let recd_out = recd
            .read_partition(&s.store, &s.schema, &s.partition)
            .unwrap();
        let baseline_out = baseline
            .read_partition(&s.store, &s.schema, &s.partition)
            .unwrap();
        assert_eq!(recd_out.metrics.samples, baseline_out.metrics.samples);
        assert!(
            recd_out.metrics.egress_bytes < baseline_out.metrics.egress_bytes,
            "dedup egress {} should be below baseline {}",
            recd_out.metrics.egress_bytes,
            baseline_out.metrics.egress_bytes
        );
        // Fewer values run through preprocessing with O4.
        assert!(recd_out.metrics.process.items < baseline_out.metrics.process.items);
    }

    #[test]
    fn clustered_batches_dedupe_better_than_interleaved() {
        let clustered = setup(true);
        let interleaved = setup(false);
        let make_reader = |schema: &Schema| {
            ReaderNode::new(
                ReaderConfig::new(128, dataloader(schema)),
                PreprocessPipeline::new(),
            )
        };
        let c_out = make_reader(&clustered.schema)
            .read_partition(&clustered.store, &clustered.schema, &clustered.partition)
            .unwrap();
        let i_out = make_reader(&interleaved.schema)
            .read_partition(
                &interleaved.store,
                &interleaved.schema,
                &interleaved.partition,
            )
            .unwrap();
        let dedupe = |out: &ReaderOutput| {
            let logical: usize = out.batches.iter().map(|b| b.logical_sparse_values()).sum();
            let stored: usize = out.batches.iter().map(|b| b.stored_sparse_values()).sum();
            logical as f64 / stored.max(1) as f64
        };
        assert!(
            dedupe(&c_out) > dedupe(&i_out),
            "clustering should increase the in-batch dedupe factor ({:.2} vs {:.2})",
            dedupe(&c_out),
            dedupe(&i_out)
        );
    }

    #[test]
    fn missing_file_surfaces_as_error() {
        let s = setup(true);
        let mut reader = ReaderNode::new(
            ReaderConfig::new(64, dataloader(&s.schema)),
            PreprocessPipeline::new(),
        );
        let err = reader
            .read_files(&s.store, &s.schema, &["nope".to_string()])
            .unwrap_err();
        assert!(err.to_string().contains("not found"));
    }
}
