//! Regenerates every table and figure of the RecD paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! experiments [all|fig3|fig4|scribe|fig7|fig8|fig9|fig10|table2|table3|table4|
//!              single_node|dedupe_factor|accuracy|storage_balance|cache_sweep]
//!             [--smoke]
//! ```
//!
//! `--smoke` runs every experiment at a reduced scale (the size the
//! integration tests use).

use recd_pipeline::experiments::{self, ExperimentScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = if smoke {
        ExperimentScale::Smoke
    } else {
        ExperimentScale::Full
    };
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };

    for name in which {
        run_one(name, scale);
    }
}

fn run_one(name: &str, scale: ExperimentScale) {
    let all = name == "all";
    let mut ran = false;

    if all || name == "fig3" || name == "fig4" {
        let exp = experiments::characterization(scale);
        if all || name == "fig3" {
            print!("{}", exp.render_fig3());
            println!();
        }
        if all || name == "fig4" {
            print!("{}", exp.render_fig4());
            println!();
        }
        ran = true;
    }
    if all || name == "scribe" {
        print!("{}", experiments::scribe_compression(scale).render());
        println!();
        ran = true;
    }
    if all || name == "fig7" {
        print!("{}", experiments::fig7(scale).render());
        println!();
        ran = true;
    }
    if all || name == "fig8" {
        print!("{}", experiments::fig8(scale).render());
        println!();
        ran = true;
    }
    if all || name == "fig9" {
        print!("{}", experiments::fig9(scale).render());
        println!();
        ran = true;
    }
    if all || name == "fig10" {
        print!("{}", experiments::fig10(scale).render());
        println!();
        ran = true;
    }
    if all || name == "table2" {
        print!("{}", experiments::table2(scale).render());
        println!();
        ran = true;
    }
    if all || name == "table3" {
        print!("{}", experiments::table3(scale).render());
        println!();
        ran = true;
    }
    if all || name == "table4" {
        print!("{}", experiments::table4(scale).render());
        println!();
        ran = true;
    }
    if all || name == "single_node" {
        print!("{}", experiments::single_node(scale).render());
        println!();
        ran = true;
    }
    if all || name == "dedupe_factor" {
        print!("{}", experiments::dedupe_factor_sweep(scale).render());
        println!();
        ran = true;
    }
    if all || name == "accuracy" {
        print!("{}", experiments::accuracy(scale).render());
        println!();
        ran = true;
    }
    if all || name == "storage_balance" {
        print!("{}", experiments::storage_load_balance(scale).render());
        println!();
        ran = true;
    }
    if all || name == "cache_sweep" {
        print!("{}", experiments::cache_size_sweep(scale).render());
        println!();
        ran = true;
    }

    if !ran {
        eprintln!("unknown experiment `{name}`");
        eprintln!(
            "known experiments: all fig3 fig4 scribe fig7 fig8 fig9 fig10 table2 table3 table4 single_node dedupe_factor accuracy storage_balance cache_sweep"
        );
        std::process::exit(2);
    }
}
