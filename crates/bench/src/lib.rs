//! # recd-bench
//!
//! Benchmark harness for the RecD reproduction.
//!
//! * `src/bin/experiments.rs` — regenerates every table and figure of the
//!   paper's evaluation (run `cargo run --release -p recd-bench --bin
//!   experiments -- all`).
//! * `benches/` — Criterion micro-benchmarks for the hot paths: jagged
//!   tensor operations, the deduplicating feature converter, the codec
//!   stack, pooling modules, and the per-figure cost-model evaluation.
//!
//! The library portion only exposes small helpers shared by the benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use recd_core::{ConvertedBatch, DataLoaderConfig, FeatureConverter};
use recd_data::{Sample, SampleBatch, Schema};
use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
use recd_etl::cluster_by_session;

/// A ready-to-use benchmark fixture: a clustered batch of samples plus the
/// converters needed to turn it into baseline or deduplicated tensors.
#[derive(Debug)]
pub struct BenchFixture {
    /// Dataset schema.
    pub schema: Schema,
    /// Clustered samples (sessions adjacent).
    pub samples: Vec<Sample>,
    /// Converter producing IKJTs for the schema's dedup groups.
    pub dedup_converter: FeatureConverter,
    /// Converter producing baseline KJT-only batches.
    pub baseline_converter: FeatureConverter,
}

impl BenchFixture {
    /// Builds the standard fixture used across the benches.
    pub fn new(sessions: usize) -> Self {
        let config = WorkloadConfig::preset(WorkloadPreset::Small).with_sessions(sessions);
        let generator = DatasetGenerator::new(config);
        let partition = generator.generate_partition();
        let schema = partition.schema.clone();
        let samples = cluster_by_session(&partition.samples);
        Self {
            dedup_converter: FeatureConverter::new(DataLoaderConfig::from_schema(&schema)),
            baseline_converter: FeatureConverter::new(DataLoaderConfig::baseline_from_schema(
                &schema,
            )),
            schema,
            samples,
        }
    }

    /// The first `batch_size` samples as a batch.
    pub fn batch(&self, batch_size: usize) -> SampleBatch {
        SampleBatch::new(self.samples[..batch_size.min(self.samples.len())].to_vec())
    }

    /// The first `batch_size` samples in columnar form (schema-shaped).
    pub fn columnar_batch(&self, batch_size: usize) -> recd_data::ColumnarBatch {
        recd_data::ColumnarBatch::from_samples(
            &self.samples[..batch_size.min(self.samples.len())],
            self.schema.dense_count(),
            self.schema.sparse_count(),
        )
    }

    /// A deduplicated converted batch of the given size.
    pub fn dedup_batch(&self, batch_size: usize) -> ConvertedBatch {
        self.dedup_converter
            .convert(&self.batch(batch_size))
            .expect("fixture conversion succeeds")
    }

    /// A baseline converted batch of the given size.
    pub fn baseline_batch(&self, batch_size: usize) -> ConvertedBatch {
        self.baseline_converter
            .convert_baseline(&self.batch(batch_size))
            .expect("fixture conversion succeeds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_produces_usable_batches() {
        let fixture = BenchFixture::new(40);
        let dedup = fixture.dedup_batch(64);
        let baseline = fixture.baseline_batch(64);
        assert_eq!(dedup.batch_size, baseline.batch_size);
        assert!(!dedup.ikjts.is_empty());
        assert!(baseline.ikjts.is_empty());
        assert!(dedup.stored_sparse_values() < baseline.stored_sparse_values());
    }
}
