//! Benchmarks of the streaming DPP service vs. the one-shot reader tier:
//! end-to-end wall-clock over the same landed partition, across compute
//! worker counts. Streaming throughput should scale with workers because
//! fill, conversion (O3), and preprocessing (O4) overlap across the
//! pipeline's bounded queues.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use recd_bench::BenchFixture;
use recd_core::DataLoaderConfig;
use recd_dpp::{DppConfig, DppService, ShardPolicy};
use recd_reader::{PreprocessPipeline, ReaderConfig, ReaderTier};
use recd_storage::{StoredPartition, TableStore, TectonicSim};
use std::sync::Arc;

struct LandedFixture {
    schema: recd_data::Schema,
    store: Arc<TableStore>,
    partition: StoredPartition,
}

fn landed_fixture() -> LandedFixture {
    let fixture = BenchFixture::new(120);
    // Simulated per-fetch RPC latency: production fill is I/O-bound, and
    // overlapping those waits is precisely what the streaming tier buys, so
    // the worker-count scaling is observable even on a single core.
    let blob_store = TectonicSim::new(8).with_get_latency(std::time::Duration::from_micros(750));
    let store = Arc::new(TableStore::new(blob_store, 32, 2));
    let (partition, _) = store.land_partition(&fixture.schema, "bench", 0, &fixture.samples);
    LandedFixture {
        schema: fixture.schema,
        store,
        partition,
    }
}

fn reader_config(schema: &recd_data::Schema) -> ReaderConfig {
    ReaderConfig::new(128, DataLoaderConfig::from_schema(schema))
}

fn bench_streaming_vs_one_shot(c: &mut Criterion) {
    let f = landed_fixture();
    let mut group = c.benchmark_group("dpp_end_to_end");
    group.sample_size(10);

    group.bench_function("one_shot_tier_2_readers", |b| {
        b.iter(|| {
            let tier = ReaderTier::new(2, reader_config(&f.schema), || {
                PreprocessPipeline::standard(1 << 20, 64)
            });
            tier.run(black_box(&f.store), &f.schema, &f.partition)
                .unwrap()
        })
    });

    for workers in [1, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("streaming_workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    // `workers` scales the whole service: fill decode and
                    // compute both parallelize, shards follow compute.
                    let config = DppConfig::new(reader_config(&f.schema))
                        .with_policy(ShardPolicy::SessionAffine)
                        .with_fill_workers(workers)
                        .with_compute_workers(workers)
                        .with_shards(workers)
                        .with_pipeline_factory(|| PreprocessPipeline::standard(1 << 20, 64));
                    let mut handle =
                        DppService::start(config, Arc::clone(&f.store), f.schema.clone());
                    handle.submit_partition(black_box(&f.partition));
                    handle.finish().expect("clean bench run")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_streaming_vs_one_shot);
criterion_main!(benches);
