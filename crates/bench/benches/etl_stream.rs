//! Continuous-pipeline benchmarks: the log-tail → join → cluster → land →
//! `recd-dpp` → trainer path end-to-end, and the seal-to-ingest hand-off
//! latency.
//!
//! * `etl_stream/tail_to_trainer` — wall-clock of one full continuous run: a
//!   jittered `LogTail` over the raw log stream drives the streaming ETL
//!   (incremental join, watermarked hourly seals, landing) while a running
//!   DPP service ingests every landed partition and two simulated trainers
//!   drain their lanes. This is the number the ROADMAP's "make the whole
//!   pipeline continuous" item asks for.
//! * `etl_stream/seal_to_ingest` — latency from "an hourly partition just
//!   sealed" to "its batches sit at the trainer endpoints": land + ingest +
//!   a `flush_partition` barrier, against a warm running service.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use recd_core::DataLoaderConfig;
use recd_data::{LogRecord, Schema};
use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
use recd_dpp::{DppConfig, DppService, ShardPolicy};
use recd_etl::{
    cluster_by_session, join_logs, EtlService, EtlStreamConfig, HourlyPartitioner, ManualClock,
    TableLayout,
};
use recd_reader::{PreprocessPipeline, ReaderConfig};
use recd_scribe::{LogTail, TailConfig};
use recd_storage::{StoredPartition, TableStore, TectonicSim};
use std::sync::Arc;

fn logs_fixture() -> (Schema, Vec<LogRecord>) {
    let generator =
        DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Small).with_sessions(120));
    let (records, partition) = generator.generate_logs();
    (partition.schema, records)
}

fn dpp_config(schema: &Schema, trainers: usize) -> DppConfig {
    DppConfig::new(ReaderConfig::new(
        128,
        DataLoaderConfig::from_schema(schema),
    ))
    .with_policy(ShardPolicy::SessionAffine)
    .with_shards(4)
    .with_fill_workers(2)
    .with_compute_workers(4)
    .with_trainers(trainers)
    .with_pipeline_factory(|| PreprocessPipeline::standard(1 << 20, 64))
}

/// One full continuous run; returns the trainer-consumed sample count.
fn run_tail_to_trainer(schema: &Schema, records: Vec<LogRecord>) -> u64 {
    let store = Arc::new(TableStore::new(TectonicSim::new(8), 64, 2));
    let mut handle = DppService::start(dpp_config(schema, 2), Arc::clone(&store), schema.clone());
    let consumers: Vec<_> = handle
        .take_trainers()
        .into_iter()
        .map(|trainer| {
            std::thread::spawn(move || {
                let mut samples = 0u64;
                while let Some(item) = trainer.recv() {
                    samples += item.batch.batch_size as u64;
                }
                samples
            })
        })
        .collect();
    let tail = LogTail::new(
        records,
        &TailConfig::default().with_jitter_ms(2_000).with_seed(1),
    );
    let service = EtlService::new(
        tail,
        EtlStreamConfig::new(TableLayout::ClusteredBySession).with_window_ms(10_000),
        Arc::clone(&store),
        schema.clone(),
        "bench",
    );
    let output = service.run(
        ManualClock::new(),
        60_000,
        &mut |stored: &StoredPartition, _| {
            handle.ingest_partition(stored);
        },
    );
    let report = handle.finish().expect("clean bench run").report;
    assert_eq!(report.partitions_ingested, output.report.landed_partitions);
    let consumed: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
    assert_eq!(consumed, output.report.etl.counters.joined_samples);
    consumed
}

fn bench_tail_to_trainer(c: &mut Criterion) {
    let (schema, records) = logs_fixture();
    let mut group = c.benchmark_group("etl_stream");
    group.sample_size(10);
    group.bench_function("tail_to_trainer", |b| {
        b.iter(|| black_box(run_tail_to_trainer(&schema, records.clone())))
    });
    group.finish();
}

fn bench_seal_to_ingest(c: &mut Criterion) {
    let (schema, records) = logs_fixture();
    // One sealed hour's worth of rows, laid out exactly as the ETL seals it.
    let joined = join_logs(&records);
    let mut partitions = HourlyPartitioner::partition(joined.samples);
    let first = partitions.remove(0);
    let samples = cluster_by_session(&first.samples);

    let mut group = c.benchmark_group("etl_stream");
    group.sample_size(10);
    group.bench_function("seal_to_ingest", |b| {
        let store = Arc::new(TableStore::new(TectonicSim::new(8), 64, 2));
        let mut handle =
            DppService::start(dpp_config(&schema, 2), Arc::clone(&store), schema.clone());
        let consumers: Vec<_> = handle
            .take_trainers()
            .into_iter()
            .map(|trainer| std::thread::spawn(move || trainer.drain().len()))
            .collect();
        let mut seal = 0u64;
        b.iter(|| {
            // Each iteration lands under a fresh table segment, mirroring a
            // re-sealed hour; the barrier returns once every batch of the
            // partition sits at a trainer endpoint.
            let (stored, _) =
                store.land_partition(&schema, &format!("bench-{seal}"), first.hour, &samples);
            seal += 1;
            handle.ingest_partition(&stored);
            assert!(handle.flush_partition(), "barrier must resolve");
        });
        handle.finish().expect("clean bench run");
        for consumer in consumers {
            consumer.join().expect("trainer consumer thread");
        }
    });
    group.finish();
}

criterion_group!(benches, bench_tail_to_trainer, bench_seal_to_ingest);
criterion_main!(benches);
