//! Micro-benchmarks for the codec stack: block compression on clustered vs
//! interleaved rows, and the columnar encodings.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use recd_bench::BenchFixture;
use recd_codec::{delta, dict, rle, varint, Compressor};
use recd_etl::interleave_by_time;
use recd_storage::encode_stripe;

fn bench_block_compression(c: &mut Criterion) {
    let fixture = BenchFixture::new(60);
    let clustered = &fixture.samples[..512.min(fixture.samples.len())];
    let interleaved = interleave_by_time(clustered);

    let mut group = c.benchmark_group("stripe_encode");
    group.sample_size(15);
    group.bench_function("clustered_512_rows", |b| {
        b.iter(|| encode_stripe(black_box(&fixture.schema), black_box(clustered)))
    });
    group.bench_function("interleaved_512_rows", |b| {
        b.iter(|| encode_stripe(black_box(&fixture.schema), black_box(&interleaved)))
    });
    group.finish();

    // Raw LZ round trip throughput on a redundant byte stream.
    let data: Vec<u8> = clustered
        .iter()
        .flat_map(|s| s.sparse.iter().flatten().flat_map(|v| v.to_le_bytes()))
        .collect();
    let compressed = Compressor::Lz.compress(&data);
    let mut group = c.benchmark_group("lz");
    group.sample_size(15);
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("compress", |b| {
        b.iter(|| Compressor::Lz.compress(black_box(&data)))
    });
    group.throughput(Throughput::Bytes(compressed.len() as u64));
    group.bench_function("decompress", |b| {
        b.iter(|| Compressor::Lz.decompress(black_box(&compressed)).unwrap())
    });
    group.finish();
}

fn bench_integer_encodings(c: &mut Criterion) {
    let offsets: Vec<u64> = (0..4096u64).map(|i| i * 97).collect();
    let repeated: Vec<u64> = (0..4096u64).map(|i| 1_000_000 + (i % 9)).collect();

    let mut group = c.benchmark_group("int_encodings_4096");
    group.sample_size(30);
    group.bench_function("varint", |b| {
        b.iter(|| varint::encode_u64_slice(black_box(&offsets)))
    });
    group.bench_function("delta", |b| b.iter(|| delta::encode(black_box(&offsets))));
    group.bench_function("rle", |b| b.iter(|| rle::encode(black_box(&repeated))));
    group.bench_function("dictionary", |b| {
        b.iter(|| dict::encode(black_box(&repeated)))
    });
    group.finish();
}

criterion_group!(benches, bench_block_compression, bench_integer_encodings);
criterion_main!(benches);
