//! Benchmarks of the feature-conversion step (O3) and deduplicated
//! preprocessing (O4): baseline KJT conversion vs IKJT conversion, and the
//! preprocessing pipeline over both.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use recd_bench::BenchFixture;
use recd_reader::PreprocessPipeline;

fn bench_conversion(c: &mut Criterion) {
    let fixture = BenchFixture::new(80);
    let mut group = c.benchmark_group("feature_conversion");
    group.sample_size(15);
    for &batch_size in &[128usize, 512] {
        let batch = fixture.batch(batch_size);
        group.bench_with_input(
            BenchmarkId::new("baseline_kjt", batch_size),
            &batch,
            |b, batch| {
                b.iter(|| {
                    fixture
                        .baseline_converter
                        .convert_baseline(black_box(batch))
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("recd_ikjt", batch_size),
            &batch,
            |b, batch| b.iter(|| fixture.dedup_converter.convert(black_box(batch)).unwrap()),
        );
    }
    group.finish();
}

fn bench_preprocessing(c: &mut Criterion) {
    let fixture = BenchFixture::new(80);
    let dedup = fixture.dedup_batch(512);
    let baseline = fixture.baseline_batch(512);
    let mut group = c.benchmark_group("preprocess_512");
    group.sample_size(15);
    group.bench_function("baseline_kjt", |b| {
        b.iter_batched(
            || baseline.clone(),
            |mut batch| PreprocessPipeline::standard(1 << 20, 64).apply(black_box(&mut batch)),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("dedup_ikjt", |b| {
        b.iter_batched(
            || dedup.clone(),
            |mut batch| PreprocessPipeline::standard(1 << 20, 64).apply(black_box(&mut batch)),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_conversion, bench_preprocessing);
criterion_main!(benches);
