//! Fan-out and elastic-scaling benchmarks for the streaming DPP service.
//!
//! * `dpp_fanout/trainers_{1,4}` — end-to-end wall-clock of the same landed
//!   partition delivered to 1 vs 4 trainer endpoints, where each simulated
//!   trainer spends a fixed per-batch iteration cost. With a single trainer
//!   that cost is serial; fan-out overlaps it across lanes, which is
//!   precisely the multi-trainer capacity the paper's DPP tier exists to
//!   provide.
//! * `dpp_scaleup/first_grow` — latency from fill-pressure onset to the
//!   scaling controller's first observed grow event (sustain window plus
//!   detection), measured under an injected storage latency that a single
//!   fill worker cannot hide.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use recd_bench::BenchFixture;
use recd_core::DataLoaderConfig;
use recd_dpp::{DppConfig, DppService, ScalerConfig, ShardPolicy, TrainerAssignPolicy};
use recd_reader::{PreprocessPipeline, ReaderConfig};
use recd_storage::{StoredPartition, TableStore, TectonicSim};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct LandedFixture {
    schema: recd_data::Schema,
    store: Arc<TableStore>,
    blob: TectonicSim,
    partition: StoredPartition,
}

fn landed_fixture() -> LandedFixture {
    let fixture = BenchFixture::new(120);
    let blob = TectonicSim::new(8);
    let store = Arc::new(TableStore::new(blob.clone(), 32, 2));
    let (partition, _) = store.land_partition(&fixture.schema, "bench", 0, &fixture.samples);
    LandedFixture {
        schema: fixture.schema,
        store,
        blob,
        partition,
    }
}

fn reader_config(schema: &recd_data::Schema) -> ReaderConfig {
    ReaderConfig::new(128, DataLoaderConfig::from_schema(schema))
}

/// Modeled per-batch trainer iteration cost: long enough that one serial
/// trainer dominates the run (the partition yields ~27 batches, so a single
/// trainer owes ~27ms of iteration time vs ~10ms of preprocessing), short
/// enough to keep the bench quick.
const TRAINER_STEP: Duration = Duration::from_millis(1);

fn run_with_trainers(f: &LandedFixture, trainers: usize) -> usize {
    let config = DppConfig::new(reader_config(&f.schema))
        .with_policy(ShardPolicy::SessionAffine)
        .with_fill_workers(2)
        .with_compute_workers(4)
        .with_shards(4)
        .with_trainers(trainers)
        .with_assign_policy(TrainerAssignPolicy::ShardPinned)
        .with_pipeline_factory(|| PreprocessPipeline::standard(1 << 20, 64));
    let mut handle = DppService::start(config, Arc::clone(&f.store), f.schema.clone());
    let consumers: Vec<_> = handle
        .take_trainers()
        .into_iter()
        .map(|trainer| {
            std::thread::spawn(move || {
                let mut batches = 0usize;
                while let Some(item) = trainer.recv() {
                    std::thread::sleep(TRAINER_STEP);
                    black_box(item.batch.batch_size);
                    batches += 1;
                }
                batches
            })
        })
        .collect();
    handle.submit_partition(&f.partition);
    let report = handle.finish().expect("clean bench run").report;
    let consumed: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
    assert_eq!(consumed, report.batches);
    consumed
}

fn bench_fanout(c: &mut Criterion) {
    let f = landed_fixture();
    let mut group = c.benchmark_group("dpp_fanout");
    group.sample_size(10);
    group.bench_function("trainers_1", |b| b.iter(|| run_with_trainers(&f, 1)));
    group.bench_function("trainers_4", |b| b.iter(|| run_with_trainers(&f, 4)));
    group.finish();
}

fn bench_scaleup_latency(c: &mut Criterion) {
    let f = landed_fixture();
    let mut group = c.benchmark_group("dpp_scaleup");
    group.sample_size(10);
    group.bench_function("first_grow", |b| {
        b.iter(|| {
            // Pressure on: a single fill worker stalls on every fetch.
            f.blob.set_get_latency(Duration::from_millis(1));
            let config = DppConfig::new(reader_config(&f.schema))
                .with_fill_workers(1)
                .with_compute_workers(2)
                .with_shards(2)
                .with_queue_depth(4)
                .with_scaling(
                    ScalerConfig::bounds(1, 4)
                        .with_sustain_ticks(2)
                        .with_tick_period(Duration::from_millis(4)),
                )
                .with_pipeline_factory(|| PreprocessPipeline::standard(1 << 20, 64));
            let mut handle = DppService::start(config, Arc::clone(&f.store), f.schema.clone());
            let source = handle.snapshot_source();
            handle.submit_partition(&f.partition);
            // The measured quantity: pressure onset → first grow event.
            let deadline = Instant::now() + Duration::from_secs(10);
            while source.snapshot().scale_ups == 0 {
                assert!(Instant::now() < deadline, "controller never scaled up");
                std::thread::yield_now();
            }
            f.blob.set_get_latency(Duration::ZERO);
            handle.finish().expect("clean bench run")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fanout, bench_scaleup_latency);
criterion_main!(benches);
