//! Benchmarks of the columnar zero-copy fill→convert path against the
//! row-wise path it replaces, swept over low/high dedup-factor and
//! wide/narrow sparse distributions, plus the end-to-end
//! decode+convert comparison on the default datagen workload.
//!
//! `scripts/bench_snapshot.sh` parses this bench's output into
//! `BENCH_pipeline.json`, the repo's performance trajectory record.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use recd_bench::BenchFixture;
use recd_core::{DataLoaderConfig, FeatureConverter, InverseKeyedJaggedTensor};
use recd_data::{ColumnarBatch, FeatureId, RequestId, Sample, SampleBatch, SessionId, Timestamp};
use recd_reader::PreprocessPipeline;
use recd_storage::{decode_stripe, decode_stripe_columnar, encode_stripe};

const BATCH: usize = 512;

/// One synthetic workload shape: how often rows repeat and how many ids a
/// sparse row carries.
struct Scenario {
    name: &'static str,
    /// Consecutive rows sharing one feature tuple (the in-batch dup factor).
    dup_factor: usize,
    /// Ids per row of the deduplicated feature (the non-dedup feature gets
    /// a quarter of this, minimum one).
    width: usize,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "low_dup_narrow",
        dup_factor: 1,
        width: 4,
    },
    Scenario {
        name: "low_dup_wide",
        dup_factor: 1,
        width: 32,
    },
    Scenario {
        name: "high_dup_narrow",
        dup_factor: 8,
        width: 4,
    },
    Scenario {
        name: "high_dup_wide",
        dup_factor: 8,
        width: 32,
    },
];

/// Deterministic synthetic batch: `BATCH` rows, each distinct feature tuple
/// repeated `dup_factor` times consecutively (sessions clustered, as the ETL
/// stage guarantees).
fn scenario_samples(s: &Scenario) -> Vec<Sample> {
    let narrow = (s.width / 4).max(1);
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut samples = Vec::with_capacity(BATCH);
    while samples.len() < BATCH {
        let session = samples.len() / s.dup_factor;
        let f0: Vec<u64> = (0..s.width).map(|_| next() % 100_000).collect();
        let f1: Vec<u64> = (0..narrow).map(|_| next() % 100_000).collect();
        for _ in 0..s.dup_factor {
            if samples.len() >= BATCH {
                break;
            }
            let i = samples.len() as u64;
            samples.push(
                Sample::builder(
                    SessionId::new(session as u64),
                    RequestId::new(i),
                    Timestamp::from_millis(i),
                )
                .label((i % 2) as f32)
                .dense(vec![i as f32, session as f32])
                .sparse(vec![f0.clone(), f1.clone()]),
            );
        }
    }
    samples.into_iter().map(|b| b.build()).collect()
}

fn scenario_converter() -> FeatureConverter {
    FeatureConverter::new(
        DataLoaderConfig::new()
            .with_kjt_features([FeatureId::new(1)])
            .with_dedup_group([FeatureId::new(0)])
            .with_dense_features(2),
    )
}

/// Convert phase only: row-wise `convert` vs `convert_columnar` over
/// prebuilt batches, across the dup-factor/width sweep.
fn bench_convert_scenarios(c: &mut Criterion) {
    let converter = scenario_converter();
    let mut group = c.benchmark_group("columnar_convert");
    group.sample_size(20);
    for s in SCENARIOS {
        let samples = scenario_samples(s);
        let batch = SampleBatch::new(samples.clone());
        let columnar = ColumnarBatch::from_samples(&samples, 2, 2);
        group.throughput(Throughput::Elements(batch.sparse_value_count() as u64));
        group.bench_with_input(BenchmarkId::new("rowwise", s.name), &batch, |b, batch| {
            b.iter(|| converter.convert(black_box(batch)).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("columnar", s.name),
            &columnar,
            |b, columnar| b.iter(|| converter.convert_columnar(black_box(columnar)).unwrap()),
        );
    }
    group.finish();
}

/// IKJT dedup only: the flat-table columnar dedup vs the row-wise batch
/// dedup, across the sweep.
fn bench_dedup_scenarios(c: &mut Criterion) {
    let group_features = [FeatureId::new(0), FeatureId::new(1)];
    let mut group = c.benchmark_group("columnar_dedup");
    group.sample_size(20);
    for s in SCENARIOS {
        let samples = scenario_samples(s);
        let batch = SampleBatch::new(samples.clone());
        let columnar = ColumnarBatch::from_samples(&samples, 2, 2);
        group.throughput(Throughput::Elements(batch.sparse_value_count() as u64));
        group.bench_with_input(
            BenchmarkId::new("from_batch", s.name),
            &batch,
            |b, batch| {
                b.iter(|| {
                    InverseKeyedJaggedTensor::dedup_from_batch(black_box(batch), &group_features)
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("from_columnar", s.name),
            &columnar,
            |b, columnar| {
                b.iter(|| {
                    InverseKeyedJaggedTensor::dedup_from_columnar(
                        black_box(columnar),
                        &group_features,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

/// Convert phase on the default datagen workload (the same fixture and
/// batch size as `dedup_conversion`'s `feature_conversion/recd_ikjt/512`,
/// for cross-version comparison): row-wise vs columnar conversion.
fn bench_convert_datagen(c: &mut Criterion) {
    let fixture = BenchFixture::new(80);
    let batch = fixture.batch(BATCH);
    let columnar = fixture.columnar_batch(BATCH);
    let mut group = c.benchmark_group("datagen_convert_512");
    group.sample_size(20);
    group.throughput(Throughput::Elements(batch.sparse_value_count() as u64));
    group.bench_function("rowwise", |b| {
        b.iter(|| fixture.dedup_converter.convert(black_box(&batch)).unwrap())
    });
    group.bench_function("columnar", |b| {
        b.iter(|| {
            fixture
                .dedup_converter
                .convert_columnar(black_box(&columnar))
                .unwrap()
        })
    });
    group.finish();
}

/// The headline comparison on the default datagen workload: one stored
/// stripe decoded and converted, row-wise (materialize `Vec<Sample>`, then
/// `convert`) vs columnar (flat decode, then `convert_columnar`). This is
/// the path every reader and streaming compute worker runs per batch.
fn bench_fill_convert_datagen(c: &mut Criterion) {
    let fixture = BenchFixture::new(120);
    let rows = &fixture.samples[..BATCH.min(fixture.samples.len())];
    let (block, _) = encode_stripe(&fixture.schema, rows);
    let values: usize = rows.iter().map(Sample::sparse_value_count).sum();

    let mut group = c.benchmark_group("pipeline_fill_convert");
    group.sample_size(20);
    group.throughput(Throughput::Elements(values as u64));
    group.bench_function("rowwise", |b| {
        b.iter(|| {
            let samples = decode_stripe(&fixture.schema, black_box(&block)).unwrap();
            fixture
                .dedup_converter
                .convert(&SampleBatch::new(samples))
                .unwrap()
        })
    });
    group.bench_function("columnar", |b| {
        b.iter(|| {
            let batch = decode_stripe_columnar(&fixture.schema, black_box(&block)).unwrap();
            fixture.dedup_converter.convert_columnar(&batch).unwrap()
        })
    });
    group.finish();
}

/// Process phase (O4) on the default datagen workload: the flat in-place
/// transform path vs the row-wise allocate-per-apply reference, over both a
/// baseline (KJT-only) batch and a deduplicated (IKJT) batch. The
/// `rowwise/baseline` ÷ `flat/baseline` ratio is the headline
/// `process_speedup_flat_vs_rowwise` metric in `BENCH_pipeline.json`.
fn bench_preprocess(c: &mut Criterion) {
    let fixture = BenchFixture::new(80);
    let baseline = fixture.baseline_batch(BATCH);
    let dedup = fixture.dedup_batch(BATCH);
    let pipeline = PreprocessPipeline::standard(1 << 20, 64);

    let mut group = c.benchmark_group("preprocess");
    group.sample_size(20);
    for (name, batch) in [("baseline", &baseline), ("dedup", &dedup)] {
        group.throughput(Throughput::Elements(batch.stored_sparse_values() as u64));
        group.bench_with_input(BenchmarkId::new("rowwise", name), batch, |b, batch| {
            b.iter_batched(
                || batch.clone(),
                |mut batch| pipeline.apply_rowwise(black_box(&mut batch)),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("flat", name), batch, |b, batch| {
            b.iter_batched(
                || batch.clone(),
                |mut batch| pipeline.apply(black_box(&mut batch)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_convert_scenarios,
    bench_dedup_scenarios,
    bench_convert_datagen,
    bench_fill_convert_datagen,
    bench_preprocess
);
criterion_main!(benches);
