//! Micro-benchmarks for the core tensor operations: KJT/IKJT construction,
//! jagged index select vs the densify-then-select baseline, and partial
//! IKJT packing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use recd_bench::BenchFixture;
use recd_core::{
    dense_index_select, jagged_index_select, InverseKeyedJaggedTensor, JaggedTensor,
    KeyedJaggedTensor, PartialIkjt,
};
use recd_data::FeatureId;

fn sequence_tensor(rows: usize, len: usize, duplicates: usize) -> JaggedTensor<u64> {
    // `duplicates` consecutive rows share a value, emulating a clustered batch.
    let lists: Vec<Vec<u64>> = (0..rows)
        .map(|r| {
            let base = (r / duplicates.max(1)) as u64;
            (0..len as u64).map(|i| base * 10_000 + i).collect()
        })
        .collect();
    JaggedTensor::from_lists(&lists)
}

fn bench_dedup_and_select(c: &mut Criterion) {
    let feature = FeatureId::new(0);
    let tensor = sequence_tensor(512, 64, 12);
    let kjt = KeyedJaggedTensor::from_tensors(vec![(feature, tensor.clone())]).unwrap();

    c.bench_function("ikjt_dedup_from_kjt_512x64", |b| {
        b.iter(|| InverseKeyedJaggedTensor::dedup_from_kjt(black_box(&kjt), &[feature]).unwrap())
    });

    let ikjt = InverseKeyedJaggedTensor::dedup_from_kjt(&kjt, &[feature]).unwrap();
    let slots = ikjt.feature(feature).unwrap().clone();
    let lookup = ikjt.inverse_lookup().to_vec();
    c.bench_function("jagged_index_select_512x64", |b| {
        b.iter(|| jagged_index_select(black_box(&slots), black_box(&lookup)).unwrap())
    });
    c.bench_function("dense_index_select_512x64", |b| {
        b.iter(|| dense_index_select(black_box(&slots), black_box(&lookup)).unwrap())
    });
    c.bench_function("ikjt_to_kjt_expand_512x64", |b| {
        b.iter(|| black_box(&ikjt).to_kjt().unwrap())
    });

    let rows: Vec<Vec<u64>> = tensor.iter().map(<[u64]>::to_vec).collect();
    c.bench_function("partial_ikjt_pack_512x64", |b| {
        b.iter(|| PartialIkjt::dedup_from_rows(feature, black_box(&rows)))
    });
}

fn bench_kjt_from_batch(c: &mut Criterion) {
    let fixture = BenchFixture::new(60);
    let batch = fixture.batch(256);
    let features: Vec<FeatureId> = fixture
        .schema
        .sparse_features()
        .iter()
        .map(|f| f.id)
        .collect();
    c.bench_function("kjt_from_batch_256_rows", |b| {
        b.iter(|| KeyedJaggedTensor::from_batch(black_box(&batch), black_box(&features)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dedup_and_select, bench_kjt_from_batch
}
criterion_main!(benches);
