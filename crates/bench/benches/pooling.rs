//! Benchmarks of the trainer forward pass: baseline (per-row) vs
//! deduplicated (per-slot) execution of embedding lookup + pooling (O5/O7).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use recd_bench::BenchFixture;
use recd_trainer::{pool_sequence, Dlrm, DlrmConfig, ExecutionMode, PoolingKind};

fn bench_pool_sequence(c: &mut Criterion) {
    let sequence: Vec<Vec<f32>> = (0..96)
        .map(|i| (0..64).map(|j| ((i * 64 + j) as f32).sin()).collect())
        .collect();
    let mut group = c.benchmark_group("pool_one_sequence_96x64");
    group.sample_size(30);
    for kind in [
        PoolingKind::Sum,
        PoolingKind::Mean,
        PoolingKind::Max,
        PoolingKind::Attention,
        PoolingKind::Transformer,
    ] {
        group.bench_function(format!("{kind:?}").to_lowercase(), |b| {
            b.iter(|| pool_sequence(kind, black_box(&sequence), 64))
        });
    }
    group.finish();
}

fn bench_dlrm_forward(c: &mut Criterion) {
    let fixture = BenchFixture::new(60);
    let batch = fixture.dedup_batch(256);
    let config = DlrmConfig::from_schema(&fixture.schema, 32, PoolingKind::Attention);
    let mut group = c.benchmark_group("dlrm_forward_256");
    group.sample_size(10);
    group.bench_function("baseline_kjt_path", |b| {
        let mut model = Dlrm::new(config.clone());
        b.iter(|| model.forward(black_box(&batch), ExecutionMode::Baseline))
    });
    group.bench_function("dedup_ikjt_path", |b| {
        let mut model = Dlrm::new(config.clone());
        b.iter(|| model.forward(black_box(&batch), ExecutionMode::Deduplicated))
    });
    group.finish();
}

criterion_group!(benches, bench_pool_sequence, bench_dlrm_forward);
criterion_main!(benches);
