//! # recd-data
//!
//! Shared data model for the RecD reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: strongly-typed identifiers ([`SessionId`], [`RequestId`],
//! [`FeatureId`]), feature values ([`IdList`], [`ScoreList`]), training
//! [`Sample`]s, raw inference-time logs ([`FeatureLog`], [`EventLog`]), the
//! dataset [`Schema`] describing every dense and sparse feature, and batches
//! of samples ([`SampleBatch`]) as they flow from the data-generation
//! pipeline through storage, readers, and trainers.
//!
//! The types here intentionally carry no behavior beyond construction,
//! validation, and size accounting. The interesting machinery — columnar
//! encoding, deduplicated tensor formats, cost models — lives in the crates
//! layered on top.
//!
//! # Example
//!
//! ```
//! use recd_data::{Sample, SessionId, RequestId, Timestamp};
//!
//! let sample = Sample::builder(SessionId::new(7), RequestId::new(42), Timestamp::from_millis(1_000))
//!     .label(1.0)
//!     .dense(vec![0.25, 0.5])
//!     .sparse(vec![vec![10, 11, 12], vec![99]])
//!     .build();
//! assert_eq!(sample.session_id, SessionId::new(7));
//! assert_eq!(sample.sparse_value_count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod columnar;
pub mod error;
pub mod ids;
pub mod log;
pub mod sample;
pub mod schema;

pub use batch::SampleBatch;
pub use columnar::{ColumnarBatch, ColumnsMut, SparseColumn};
pub use error::DataError;
pub use ids::{FeatureId, RequestId, SessionId, ShardId, Timestamp, UserId};
pub use log::{EventLog, FeatureLog, LogRecord};
pub use sample::{IdList, Sample, SampleBuilder, ScoreList};
pub use schema::{
    DedupGroupId, DenseFeatureSpec, FeatureClass, FeatureKind, Schema, SchemaBuilder,
    SparseFeatureSpec,
};

/// A convenient result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, DataError>;
