//! Strongly-typed identifiers used throughout the RecD pipeline.
//!
//! Every identifier is a thin newtype over an unsigned integer so that the
//! different id spaces (sessions, requests, features, shards) cannot be mixed
//! up at compile time, following the newtype guidance of the Rust API
//! guidelines (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $inner:ty) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name($inner);

        impl $name {
            /// Creates a new identifier from its raw integer value.
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// Returns the raw integer value of this identifier.
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for $inner {
            fn from(id: $name) -> Self {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_newtype!(
    /// Identifies a user session: a set of impressions within a fixed time
    /// window (paper §3, footnote 1). All samples produced during one session
    /// share a `SessionId`, which is the key RecD shards and clusters by.
    SessionId,
    u64
);

id_newtype!(
    /// Identifies a single inference request (one impression candidate batch
    /// element). The ETL join matches [`FeatureLog`](crate::FeatureLog) and
    /// [`EventLog`](crate::EventLog) records on `RequestId`.
    RequestId,
    u64
);

id_newtype!(
    /// Identifies a user. Used by the workload generator to derive session
    /// behavior; not needed by the training pipeline itself.
    UserId,
    u64
);

id_newtype!(
    /// Identifies a Scribe shard (a physical buffer/storage node in the
    /// message-passing tier).
    ShardId,
    u32
);

id_newtype!(
    /// Identifies a feature within a [`Schema`](crate::Schema). Dense and
    /// sparse features live in separate positional id spaces; a `FeatureId`
    /// is the position of the feature within its schema section.
    FeatureId,
    u32
);

impl FeatureId {
    /// Returns the feature id as a `usize` index, convenient for indexing
    /// per-feature vectors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A millisecond-resolution event timestamp.
///
/// Timestamps order impressions within a session and drive hourly
/// partitioning in the ETL stage.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(u64);

impl Timestamp {
    /// Number of milliseconds in one hour.
    pub const MILLIS_PER_HOUR: u64 = 3_600_000;

    /// Creates a timestamp from milliseconds since an arbitrary epoch.
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis)
    }

    /// Returns the timestamp in milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Returns the hour bucket this timestamp falls into, used for hourly
    /// table partitioning.
    pub const fn hour_bucket(self) -> u64 {
        self.0 / Self::MILLIS_PER_HOUR
    }

    /// Returns a timestamp advanced by `millis` milliseconds.
    #[must_use]
    pub const fn advanced_by(self, millis: u64) -> Self {
        Self(self.0 + millis)
    }

    /// Returns the absolute difference between two timestamps in milliseconds.
    pub const fn abs_diff(self, other: Self) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(millis: u64) -> Self {
        Self(millis)
    }
}

impl From<Timestamp> for u64 {
    fn from(ts: Timestamp) -> Self {
        ts.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip_and_ordering() {
        let a = SessionId::new(3);
        let b = SessionId::new(7);
        assert!(a < b);
        assert_eq!(a.raw(), 3);
        assert_eq!(SessionId::from(3u64), a);
        assert_eq!(u64::from(b), 7);
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; here we just confirm display output
        // differentiates the types for debugging.
        assert_eq!(SessionId::new(1).to_string(), "SessionId(1)");
        assert_eq!(RequestId::new(1).to_string(), "RequestId(1)");
        assert_eq!(ShardId::new(2).to_string(), "ShardId(2)");
    }

    #[test]
    fn feature_id_index() {
        assert_eq!(FeatureId::new(12).index(), 12);
    }

    #[test]
    fn timestamp_hour_bucket() {
        let t = Timestamp::from_millis(Timestamp::MILLIS_PER_HOUR * 5 + 17);
        assert_eq!(t.hour_bucket(), 5);
        assert_eq!(t.advanced_by(1).as_millis(), t.as_millis() + 1);
        assert_eq!(t.abs_diff(Timestamp::from_millis(0)), t.as_millis());
    }

    #[test]
    fn timestamp_display_and_default() {
        assert_eq!(Timestamp::default().as_millis(), 0);
        assert_eq!(Timestamp::from_millis(42).to_string(), "42ms");
    }

    // The ids are `#[serde(transparent)]` newtypes; with serialization
    // stubbed out offline, assert the transparent contract directly: the
    // raw value round-trips and fully determines identity.
    #[test]
    fn raw_value_round_trip() {
        let id = SessionId::new(99);
        assert_eq!(id.raw(), 99);
        let back = SessionId::new(id.raw());
        assert_eq!(back, id);
    }
}
