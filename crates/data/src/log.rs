//! Raw inference-time logs, as emitted by inference servers before the ETL
//! join turns them into labeled [`Sample`](crate::Sample)s (paper §2.1).
//!
//! Inference servers log the features used for each request (to avoid data
//! leakage), while user-facing services log impression outcomes (events).
//! Both log streams flow through the Scribe tier and are joined on
//! [`RequestId`] by the ETL stage.

use crate::ids::{RequestId, SessionId, Timestamp};
use crate::sample::IdList;
use serde::{Deserialize, Serialize};

/// A feature log record: the inputs of one inference request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureLog {
    /// The request whose features are logged.
    pub request_id: RequestId,
    /// Session the request belongs to (the RecD shard/cluster key).
    pub session_id: SessionId,
    /// Time the request was served.
    pub timestamp: Timestamp,
    /// Dense feature values in schema order.
    pub dense: Vec<f32>,
    /// Sparse feature values in schema order.
    pub sparse: Vec<IdList>,
}

impl FeatureLog {
    /// Approximate payload size of the record in bytes, used for Scribe
    /// network and storage accounting.
    pub fn payload_bytes(&self) -> usize {
        const HEADER: usize = 8 + 8 + 8;
        HEADER + self.dense.len() * 4 + self.sparse.iter().map(|l| l.len() * 8).sum::<usize>()
    }
}

/// An event log record: the observed outcome of one impression.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    /// The request whose outcome is logged.
    pub request_id: RequestId,
    /// Session the request belongs to.
    pub session_id: SessionId,
    /// Time the outcome was observed.
    pub timestamp: Timestamp,
    /// The label (e.g. 1.0 for a click).
    pub label: f32,
}

impl EventLog {
    /// Payload size of the record in bytes.
    pub const fn payload_bytes(&self) -> usize {
        8 + 8 + 8 + 4
    }
}

/// Either kind of raw log record, as transported by the Scribe tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// Feature log from an inference server.
    Feature(FeatureLog),
    /// Event log from a user-facing service.
    Event(EventLog),
}

impl LogRecord {
    /// Session id of the record (the RecD shard key).
    pub fn session_id(&self) -> SessionId {
        match self {
            LogRecord::Feature(f) => f.session_id,
            LogRecord::Event(e) => e.session_id,
        }
    }

    /// Request id of the record (the ETL join key).
    pub fn request_id(&self) -> RequestId {
        match self {
            LogRecord::Feature(f) => f.request_id,
            LogRecord::Event(e) => e.request_id,
        }
    }

    /// Timestamp of the record.
    pub fn timestamp(&self) -> Timestamp {
        match self {
            LogRecord::Feature(f) => f.timestamp,
            LogRecord::Event(e) => e.timestamp,
        }
    }

    /// Payload size of the record in bytes.
    pub fn payload_bytes(&self) -> usize {
        match self {
            LogRecord::Feature(f) => f.payload_bytes(),
            LogRecord::Event(e) => e.payload_bytes(),
        }
    }
}

impl From<FeatureLog> for LogRecord {
    fn from(value: FeatureLog) -> Self {
        LogRecord::Feature(value)
    }
}

impl From<EventLog> for LogRecord {
    fn from(value: EventLog) -> Self {
        LogRecord::Event(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feature_log() -> FeatureLog {
        FeatureLog {
            request_id: RequestId::new(1),
            session_id: SessionId::new(2),
            timestamp: Timestamp::from_millis(3),
            dense: vec![1.0, 2.0],
            sparse: vec![vec![1, 2, 3], vec![4]],
        }
    }

    #[test]
    fn payload_sizes() {
        let f = feature_log();
        assert_eq!(f.payload_bytes(), 24 + 8 + 32);
        let e = EventLog {
            request_id: RequestId::new(1),
            session_id: SessionId::new(2),
            timestamp: Timestamp::from_millis(3),
            label: 1.0,
        };
        assert_eq!(e.payload_bytes(), 28);
    }

    #[test]
    fn log_record_accessors() {
        let rec: LogRecord = feature_log().into();
        assert_eq!(rec.session_id(), SessionId::new(2));
        assert_eq!(rec.request_id(), RequestId::new(1));
        assert_eq!(rec.timestamp().as_millis(), 3);
        assert!(rec.payload_bytes() > 0);

        let rec: LogRecord = EventLog {
            request_id: RequestId::new(9),
            session_id: SessionId::new(8),
            timestamp: Timestamp::from_millis(7),
            label: 0.0,
        }
        .into();
        assert_eq!(rec.session_id(), SessionId::new(8));
        assert_eq!(rec.request_id(), RequestId::new(9));
    }
}
