//! Dataset schema: the description of every dense and sparse feature carried
//! by a training sample.
//!
//! The schema is the single source of truth shared by the workload generator
//! (which needs per-feature update probabilities and lengths), the storage
//! layer (which flattens each feature into its own column), the reader tier
//! (which converts rows into KJTs/IKJTs), and the trainer (which maps sparse
//! features onto embedding tables).

use crate::error::DataError;
use crate::ids::FeatureId;
use crate::sample::Sample;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifies a deduplication group: a set of sparse features that are
/// updated synchronously across a session's samples and therefore share an
/// `inverse_lookup` slice when encoded as a grouped IKJT (paper §4.2).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct DedupGroupId(u32);

impl DedupGroupId {
    /// Creates a group id from its raw value.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the group id as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DedupGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DedupGroup({})", self.0)
    }
}

/// The physical kind of a sparse feature column (paper §2.1, Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    /// A variable-length list of categorical ids (`map<int, list[int]>`).
    IdList,
    /// A variable-length list of `(id, score)` pairs (`map<int, map<int, float>>`).
    ScoreList,
}

impl fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureKind::IdList => write!(f, "id-list"),
            FeatureKind::ScoreList => write!(f, "score-list"),
        }
    }
}

/// Whether a sparse feature reflects user, item, or request-context traits.
///
/// User features (e.g. "last N liked item ids") are highly duplicated across
/// a session's samples; item features (the candidate being ranked) are not
/// (paper §3, Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureClass {
    /// Derived from the user's history; mostly static within a session.
    User,
    /// Derived from the candidate item; changes across impressions.
    Item,
    /// Derived from the request context (device, surface, time of day).
    Context,
}

impl fmt::Display for FeatureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureClass::User => write!(f, "user"),
            FeatureClass::Item => write!(f, "item"),
            FeatureClass::Context => write!(f, "context"),
        }
    }
}

/// Description of a single dense (float) feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseFeatureSpec {
    /// Positional id of this feature within the schema's dense section.
    pub id: FeatureId,
    /// Human-readable feature name, unique within the schema.
    pub name: String,
}

/// Description of a single sparse feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseFeatureSpec {
    /// Positional id of this feature within the schema's sparse section.
    pub id: FeatureId,
    /// Human-readable feature name, unique within the schema.
    pub name: String,
    /// Physical column kind.
    pub kind: FeatureKind,
    /// Whether the feature reflects user, item, or context traits.
    pub class: FeatureClass,
    /// Average list length `l(f)` used by the analytical DedupeFactor model
    /// and by the workload generator.
    pub avg_len: f64,
    /// The paper's `d(f)`: the probability that the feature's value remains
    /// identical across two adjacent samples of the same session.
    pub stay_prob: f64,
    /// Size of the categorical id space the values are drawn from.
    pub cardinality: u64,
    /// Embedding dimension used when this feature is looked up in an
    /// embedding table.
    pub embedding_dim: usize,
    /// Deduplication group this feature belongs to, if it is configured for
    /// IKJT encoding. `None` means the feature stays in KJT form.
    pub dedup_group: Option<DedupGroupId>,
}

impl SparseFeatureSpec {
    /// Returns true when this feature is configured for IKJT deduplication.
    pub fn is_deduplicated(&self) -> bool {
        self.dedup_group.is_some()
    }
}

/// The full dataset schema: dense features, sparse features, and dedup-group
/// declarations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    dense: Vec<DenseFeatureSpec>,
    sparse: Vec<SparseFeatureSpec>,
    group_count: u32,
    #[serde(skip)]
    sparse_by_name: HashMap<String, FeatureId>,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::new()
    }

    /// Number of dense features.
    pub fn dense_count(&self) -> usize {
        self.dense.len()
    }

    /// Number of sparse features.
    pub fn sparse_count(&self) -> usize {
        self.sparse.len()
    }

    /// Number of declared deduplication groups.
    pub fn dedup_group_count(&self) -> usize {
        self.group_count as usize
    }

    /// Returns the dense feature specs in positional order.
    pub fn dense_features(&self) -> &[DenseFeatureSpec] {
        &self.dense
    }

    /// Returns the sparse feature specs in positional order.
    pub fn sparse_features(&self) -> &[SparseFeatureSpec] {
        &self.sparse
    }

    /// Looks up a sparse feature spec by id.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownFeature`] if the id is out of range.
    pub fn sparse(&self, id: FeatureId) -> Result<&SparseFeatureSpec, DataError> {
        self.sparse
            .get(id.index())
            .ok_or(DataError::UnknownFeature {
                feature: id.raw(),
                count: self.sparse.len(),
            })
    }

    /// Looks up a sparse feature spec by name.
    pub fn sparse_by_name(&self, name: &str) -> Option<&SparseFeatureSpec> {
        self.sparse_by_name
            .get(name)
            .and_then(|id| self.sparse.get(id.index()))
    }

    /// Returns the sparse feature ids belonging to the given dedup group, in
    /// positional order.
    pub fn group_members(&self, group: DedupGroupId) -> Vec<FeatureId> {
        self.sparse
            .iter()
            .filter(|f| f.dedup_group == Some(group))
            .map(|f| f.id)
            .collect()
    }

    /// Returns every declared dedup group id together with its member
    /// features, in group order. Groups with no members are included (empty).
    pub fn groups(&self) -> Vec<(DedupGroupId, Vec<FeatureId>)> {
        (0..self.group_count)
            .map(DedupGroupId::new)
            .map(|g| (g, self.group_members(g)))
            .collect()
    }

    /// Returns the ids of sparse features that are *not* part of any dedup
    /// group (and therefore stay KJT-encoded).
    pub fn undeduplicated_sparse(&self) -> Vec<FeatureId> {
        self.sparse
            .iter()
            .filter(|f| f.dedup_group.is_none())
            .map(|f| f.id)
            .collect()
    }

    /// Validates that a sample's dense and sparse arities match this schema.
    ///
    /// # Errors
    ///
    /// Returns an arity-mismatch error if the sample does not match.
    pub fn validate_sample(&self, sample: &Sample) -> Result<(), DataError> {
        if sample.dense.len() != self.dense.len() {
            return Err(DataError::DenseArityMismatch {
                expected: self.dense.len(),
                actual: sample.dense.len(),
            });
        }
        if sample.sparse.len() != self.sparse.len() {
            return Err(DataError::SparseArityMismatch {
                expected: self.sparse.len(),
                actual: sample.sparse.len(),
            });
        }
        Ok(())
    }

    /// Rebuilds the name lookup table. Called automatically by the builder;
    /// exposed for deserialized schemas whose lookup table was skipped.
    pub fn rebuild_index(&mut self) {
        self.sparse_by_name = self.sparse.iter().map(|f| (f.name.clone(), f.id)).collect();
    }
}

/// Incrementally builds a [`Schema`].
///
/// # Example
///
/// ```
/// use recd_data::{Schema, FeatureClass, FeatureKind};
///
/// let schema = Schema::builder()
///     .dense("time_of_day")
///     .sparse("f_like", FeatureClass::User, 100.0, 0.9, 1 << 20)
///     .sparse("f_item", FeatureClass::Item, 1.0, 0.1, 1 << 24)
///     .build()
///     .expect("valid schema");
/// assert_eq!(schema.dense_count(), 1);
/// assert_eq!(schema.sparse_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    dense: Vec<DenseFeatureSpec>,
    sparse: Vec<SparseFeatureSpec>,
    group_count: u32,
    names: HashMap<String, ()>,
    error: Option<DataError>,
}

impl SchemaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn register_name(&mut self, name: &str) {
        if self.error.is_none() && self.names.insert(name.to_string(), ()).is_some() {
            self.error = Some(DataError::DuplicateFeatureName {
                name: name.to_string(),
            });
        }
    }

    /// Adds a dense (float) feature.
    pub fn dense(mut self, name: &str) -> Self {
        self.register_name(name);
        let id = FeatureId::new(self.dense.len() as u32);
        self.dense.push(DenseFeatureSpec {
            id,
            name: name.to_string(),
        });
        self
    }

    /// Adds a sparse id-list feature with default embedding dimension 64 and
    /// no dedup group.
    pub fn sparse(
        self,
        name: &str,
        class: FeatureClass,
        avg_len: f64,
        stay_prob: f64,
        cardinality: u64,
    ) -> Self {
        self.sparse_with(name, class, avg_len, stay_prob, cardinality, 64, None)
    }

    /// Adds a sparse id-list feature with full control over embedding
    /// dimension and dedup group membership.
    #[allow(clippy::too_many_arguments)]
    pub fn sparse_with(
        mut self,
        name: &str,
        class: FeatureClass,
        avg_len: f64,
        stay_prob: f64,
        cardinality: u64,
        embedding_dim: usize,
        dedup_group: Option<DedupGroupId>,
    ) -> Self {
        self.register_name(name);
        let id = FeatureId::new(self.sparse.len() as u32);
        self.sparse.push(SparseFeatureSpec {
            id,
            name: name.to_string(),
            kind: FeatureKind::IdList,
            class,
            avg_len,
            stay_prob: stay_prob.clamp(0.0, 1.0),
            cardinality: cardinality.max(1),
            embedding_dim: embedding_dim.max(1),
            dedup_group,
        });
        self
    }

    /// Declares `count` dedup groups (ids `0..count`). Sparse features added
    /// with a `dedup_group` must reference one of the declared groups.
    pub fn dedup_groups(mut self, count: u32) -> Self {
        self.group_count = self.group_count.max(count);
        self
    }

    /// Finalizes the schema.
    ///
    /// # Errors
    ///
    /// Returns an error if a feature name was duplicated or a dedup group was
    /// referenced but never declared.
    pub fn build(self) -> Result<Schema, DataError> {
        if let Some(err) = self.error {
            return Err(err);
        }
        for f in &self.sparse {
            if let Some(g) = f.dedup_group {
                if g.raw() >= self.group_count {
                    return Err(DataError::UnknownDedupGroup { group: g.raw() });
                }
            }
        }
        let mut schema = Schema {
            dense: self.dense,
            sparse: self.sparse,
            group_count: self.group_count,
            sparse_by_name: HashMap::new(),
        };
        schema.rebuild_index();
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{RequestId, SessionId, Timestamp};

    fn small_schema() -> Schema {
        Schema::builder()
            .dense("d0")
            .dense("d1")
            .dedup_groups(2)
            .sparse_with(
                "f_like",
                FeatureClass::User,
                50.0,
                0.9,
                1 << 20,
                64,
                Some(DedupGroupId::new(0)),
            )
            .sparse_with(
                "f_share",
                FeatureClass::User,
                30.0,
                0.95,
                1 << 20,
                64,
                Some(DedupGroupId::new(0)),
            )
            .sparse("f_item", FeatureClass::Item, 1.0, 0.1, 1 << 24)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_assigns_positional_ids() {
        let schema = small_schema();
        assert_eq!(schema.dense_count(), 2);
        assert_eq!(schema.sparse_count(), 3);
        assert_eq!(schema.sparse_features()[0].id, FeatureId::new(0));
        assert_eq!(schema.sparse_features()[2].id, FeatureId::new(2));
        assert_eq!(schema.dedup_group_count(), 2);
    }

    #[test]
    fn group_membership_and_undeduplicated() {
        let schema = small_schema();
        let members = schema.group_members(DedupGroupId::new(0));
        assert_eq!(members, vec![FeatureId::new(0), FeatureId::new(1)]);
        assert!(schema.group_members(DedupGroupId::new(1)).is_empty());
        assert_eq!(schema.undeduplicated_sparse(), vec![FeatureId::new(2)]);
        assert_eq!(schema.groups().len(), 2);
    }

    #[test]
    fn lookup_by_name_and_id() {
        let schema = small_schema();
        assert_eq!(
            schema.sparse_by_name("f_item").unwrap().class,
            FeatureClass::Item
        );
        assert!(schema.sparse_by_name("missing").is_none());
        assert!(schema.sparse(FeatureId::new(2)).is_ok());
        assert!(matches!(
            schema.sparse(FeatureId::new(99)),
            Err(DataError::UnknownFeature { .. })
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::builder()
            .sparse("dup", FeatureClass::User, 1.0, 0.5, 10)
            .sparse("dup", FeatureClass::Item, 1.0, 0.5, 10)
            .build()
            .unwrap_err();
        assert!(matches!(err, DataError::DuplicateFeatureName { .. }));
    }

    #[test]
    fn undeclared_group_rejected() {
        let err = Schema::builder()
            .sparse_with(
                "f",
                FeatureClass::User,
                1.0,
                0.5,
                10,
                64,
                Some(DedupGroupId::new(3)),
            )
            .build()
            .unwrap_err();
        assert!(matches!(err, DataError::UnknownDedupGroup { group: 3 }));
    }

    #[test]
    fn validate_sample_checks_arity() {
        let schema = small_schema();
        let good = Sample::builder(
            SessionId::new(1),
            RequestId::new(1),
            Timestamp::from_millis(0),
        )
        .dense(vec![0.0, 1.0])
        .sparse(vec![vec![1], vec![2], vec![3]])
        .build();
        assert!(schema.validate_sample(&good).is_ok());

        let bad = Sample::builder(
            SessionId::new(1),
            RequestId::new(2),
            Timestamp::from_millis(0),
        )
        .dense(vec![0.0])
        .sparse(vec![vec![1], vec![2], vec![3]])
        .build();
        assert!(matches!(
            schema.validate_sample(&bad),
            Err(DataError::DenseArityMismatch { .. })
        ));
    }

    #[test]
    fn stay_prob_is_clamped() {
        let schema = Schema::builder()
            .sparse("f", FeatureClass::User, 1.0, 1.5, 10)
            .build()
            .unwrap();
        assert_eq!(schema.sparse_features()[0].stay_prob, 1.0);
    }

    // The name index is `#[serde(skip)]`; with serialization stubbed out
    // offline, simulate a deserialized schema (empty index) directly and
    // assert `rebuild_index` restores lookups.
    #[test]
    fn rebuild_index_restores_name_lookups() {
        let schema = small_schema();
        let mut back = schema.clone();
        back.sparse_by_name.clear();
        assert!(back.sparse_by_name("f_like").is_none());
        back.rebuild_index();
        assert_eq!(back.sparse_by_name("f_like").unwrap().id, FeatureId::new(0));
        assert_eq!(back, schema);
    }
}
