//! Training samples: one labeled impression with its dense and sparse
//! features.

use crate::ids::{RequestId, SessionId, Timestamp};
use serde::{Deserialize, Serialize};

/// A variable-length list of categorical ids — the value of one sparse
/// feature for one sample.
pub type IdList = Vec<u64>;

/// A variable-length list of `(id, score)` pairs — the value of one
/// score-list feature for one sample.
pub type ScoreList = Vec<(u64, f32)>;

/// One labeled training sample (an impression and its outcome), as stored in
/// a table row (paper §2.1).
///
/// Dense and sparse features are stored positionally in schema order rather
/// than as maps; the [`Schema`](crate::Schema) gives positions meaning. This
/// keeps samples compact, which matters because the workload generator and
/// storage layer handle hundreds of thousands of them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Session this impression belongs to.
    pub session_id: SessionId,
    /// Inference request that produced this impression.
    pub request_id: RequestId,
    /// Time the impression was served.
    pub timestamp: Timestamp,
    /// Impression outcome (e.g. click = 1.0, no click = 0.0).
    pub label: f32,
    /// Dense feature values in schema order.
    pub dense: Vec<f32>,
    /// Sparse id-list feature values in schema order.
    pub sparse: Vec<IdList>,
}

impl Sample {
    /// Starts building a sample with the mandatory identifiers.
    pub fn builder(
        session_id: SessionId,
        request_id: RequestId,
        timestamp: Timestamp,
    ) -> SampleBuilder {
        SampleBuilder {
            sample: Sample {
                session_id,
                request_id,
                timestamp,
                label: 0.0,
                dense: Vec::new(),
                sparse: Vec::new(),
            },
        }
    }

    /// Total number of sparse ids carried by this sample across all features.
    pub fn sparse_value_count(&self) -> usize {
        self.sparse.iter().map(Vec::len).sum()
    }

    /// Approximate in-memory payload size of this sample in bytes: 8 bytes
    /// per sparse id, 4 bytes per dense value, plus fixed header fields.
    ///
    /// This is the figure used for "bytes" accounting throughout the
    /// pipeline (storage raw size, reader egress, SDD payloads).
    pub fn payload_bytes(&self) -> usize {
        const HEADER: usize = 8 + 8 + 8 + 4; // session, request, timestamp, label
        HEADER + self.dense.len() * 4 + self.sparse_value_count() * 8
    }

    /// Returns the value of sparse feature `index`, or an empty slice if the
    /// sample carries fewer features.
    pub fn sparse_value(&self, index: usize) -> &[u64] {
        self.sparse.get(index).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Builder for [`Sample`].
#[derive(Debug, Clone)]
pub struct SampleBuilder {
    sample: Sample,
}

impl SampleBuilder {
    /// Sets the label (impression outcome).
    pub fn label(mut self, label: f32) -> Self {
        self.sample.label = label;
        self
    }

    /// Sets the dense feature values (schema order).
    pub fn dense(mut self, dense: Vec<f32>) -> Self {
        self.sample.dense = dense;
        self
    }

    /// Sets the sparse feature values (schema order).
    pub fn sparse(mut self, sparse: Vec<IdList>) -> Self {
        self.sample.sparse = sparse;
        self
    }

    /// Finalizes the sample.
    pub fn build(self) -> Sample {
        self.sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Sample {
        Sample::builder(
            SessionId::new(5),
            RequestId::new(9),
            Timestamp::from_millis(123),
        )
        .label(1.0)
        .dense(vec![0.5, 0.25, 0.125])
        .sparse(vec![vec![1, 2, 3], vec![], vec![42]])
        .build()
    }

    #[test]
    fn builder_populates_all_fields() {
        let s = sample();
        assert_eq!(s.session_id, SessionId::new(5));
        assert_eq!(s.request_id, RequestId::new(9));
        assert_eq!(s.timestamp.as_millis(), 123);
        assert_eq!(s.label, 1.0);
        assert_eq!(s.dense.len(), 3);
        assert_eq!(s.sparse.len(), 3);
    }

    #[test]
    fn sparse_value_count_and_bytes() {
        let s = sample();
        assert_eq!(s.sparse_value_count(), 4);
        // header 28 + dense 12 + sparse 32
        assert_eq!(s.payload_bytes(), 28 + 12 + 32);
    }

    #[test]
    fn sparse_value_out_of_range_is_empty() {
        let s = sample();
        assert_eq!(s.sparse_value(1), &[] as &[u64]);
        assert_eq!(s.sparse_value(2), &[42]);
        assert_eq!(s.sparse_value(17), &[] as &[u64]);
    }

    // With serialization stubbed out offline, round-trip through the
    // builder instead: every field a serializer would visit must survive
    // reconstruction.
    #[test]
    fn builder_round_trip() {
        let s = sample();
        let back = Sample::builder(s.session_id, s.request_id, s.timestamp)
            .label(s.label)
            .dense(s.dense.clone())
            .sparse(s.sparse.clone())
            .build();
        assert_eq!(back, s);
    }
}
