//! Error type for data-model validation failures.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating data-model values.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataError {
    /// A sample's dense feature vector length did not match the schema.
    DenseArityMismatch {
        /// Number of dense features declared by the schema.
        expected: usize,
        /// Number of dense values carried by the sample.
        actual: usize,
    },
    /// A sample's sparse feature vector length did not match the schema.
    SparseArityMismatch {
        /// Number of sparse features declared by the schema.
        expected: usize,
        /// Number of sparse lists carried by the sample.
        actual: usize,
    },
    /// A feature id referenced a feature that does not exist in the schema.
    UnknownFeature {
        /// The offending feature id (raw value).
        feature: u32,
        /// Number of features of that kind in the schema.
        count: usize,
    },
    /// A feature name was registered twice while building a schema.
    DuplicateFeatureName {
        /// The duplicated name.
        name: String,
    },
    /// A dedup group referenced by a sparse feature spec was never declared.
    UnknownDedupGroup {
        /// The offending group id (raw value).
        group: u32,
    },
    /// An operation required a non-empty batch but the batch had no samples.
    EmptyBatch,
    /// A columnar batch's buffers violated a shape invariant.
    ColumnarInvariant {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DenseArityMismatch { expected, actual } => write!(
                f,
                "dense feature count {actual} does not match schema ({expected} expected)"
            ),
            DataError::SparseArityMismatch { expected, actual } => write!(
                f,
                "sparse feature count {actual} does not match schema ({expected} expected)"
            ),
            DataError::UnknownFeature { feature, count } => write!(
                f,
                "feature id {feature} is out of range for schema with {count} features"
            ),
            DataError::DuplicateFeatureName { name } => {
                write!(f, "feature name `{name}` registered more than once")
            }
            DataError::UnknownDedupGroup { group } => {
                write!(f, "dedup group {group} was referenced but never declared")
            }
            DataError::EmptyBatch => write!(f, "operation requires a non-empty batch"),
            DataError::ColumnarInvariant { reason } => {
                write!(f, "columnar batch invariant violated: {reason}")
            }
        }
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = DataError::DenseArityMismatch {
            expected: 3,
            actual: 1,
        };
        let msg = err.to_string();
        assert!(msg.contains('3') && msg.contains('1'));
        assert!(msg.chars().next().unwrap().is_lowercase());

        let err = DataError::DuplicateFeatureName {
            name: "f_like".to_string(),
        };
        assert!(err.to_string().contains("f_like"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<DataError>();
    }
}
