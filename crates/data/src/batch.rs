//! Batches of samples, as assembled by readers and consumed by trainers.

use crate::error::DataError;
use crate::ids::SessionId;
use crate::sample::Sample;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An ordered batch of training samples.
///
/// Sample order matters: RecD's clustering optimization (O2) works precisely
/// because a session's samples become adjacent within each batch, which is
/// what lets the feature-conversion step deduplicate them.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SampleBatch {
    samples: Vec<Sample>,
}

impl SampleBatch {
    /// Creates a batch from a vector of samples.
    pub fn new(samples: Vec<Sample>) -> Self {
        Self { samples }
    }

    /// Creates an empty batch.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns true if the batch has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Borrows the samples in order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Consumes the batch and returns its samples.
    pub fn into_samples(self) -> Vec<Sample> {
        self.samples
    }

    /// Appends a sample to the batch.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Total payload bytes across all samples in the batch.
    pub fn payload_bytes(&self) -> usize {
        self.samples.iter().map(Sample::payload_bytes).sum()
    }

    /// Total number of sparse ids across all samples in the batch.
    pub fn sparse_value_count(&self) -> usize {
        self.samples.iter().map(Sample::sparse_value_count).sum()
    }

    /// Number of distinct sessions represented in the batch.
    pub fn distinct_sessions(&self) -> usize {
        let mut seen: HashMap<SessionId, ()> = HashMap::with_capacity(self.samples.len());
        for s in &self.samples {
            seen.insert(s.session_id, ());
        }
        seen.len()
    }

    /// Average number of samples per session within the batch — the quantity
    /// the paper reports as 16.5 for a clustered partition and 1.15 for an
    /// interleaved 4096-sample batch (Figure 3).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyBatch`] if the batch is empty.
    pub fn samples_per_session(&self) -> Result<f64, DataError> {
        if self.samples.is_empty() {
            return Err(DataError::EmptyBatch);
        }
        Ok(self.samples.len() as f64 / self.distinct_sessions() as f64)
    }

    /// Splits the batch into consecutive chunks of at most `chunk_size`
    /// samples (the last chunk may be smaller).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn chunks(&self, chunk_size: usize) -> Vec<SampleBatch> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        self.samples
            .chunks(chunk_size)
            .map(|c| SampleBatch::new(c.to_vec()))
            .collect()
    }
}

impl FromIterator<Sample> for SampleBatch {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl Extend<Sample> for SampleBatch {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

impl IntoIterator for SampleBatch {
    type Item = Sample;
    type IntoIter = std::vec::IntoIter<Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.into_iter()
    }
}

impl<'a> IntoIterator for &'a SampleBatch {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{RequestId, Timestamp};

    fn sample(session: u64, request: u64) -> Sample {
        Sample::builder(
            SessionId::new(session),
            RequestId::new(request),
            Timestamp::from_millis(request),
        )
        .sparse(vec![vec![session, request]])
        .build()
    }

    #[test]
    fn batch_basic_accounting() {
        let batch: SampleBatch = (0..6).map(|i| sample(i / 2, i)).collect();
        assert_eq!(batch.len(), 6);
        assert!(!batch.is_empty());
        assert_eq!(batch.distinct_sessions(), 3);
        assert_eq!(batch.samples_per_session().unwrap(), 2.0);
        assert_eq!(batch.sparse_value_count(), 12);
        assert!(batch.payload_bytes() > 0);
    }

    #[test]
    fn empty_batch_behaviour() {
        let batch = SampleBatch::empty();
        assert!(batch.is_empty());
        assert_eq!(batch.distinct_sessions(), 0);
        assert!(matches!(
            batch.samples_per_session(),
            Err(DataError::EmptyBatch)
        ));
    }

    #[test]
    fn chunks_preserve_order_and_sizes() {
        let batch: SampleBatch = (0..10).map(|i| sample(i, i)).collect();
        let chunks = batch.chunks(4);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[2].len(), 2);
        assert_eq!(
            chunks[1].samples()[0].request_id,
            RequestId::new(4),
            "chunking must preserve order"
        );
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        SampleBatch::empty().chunks(0);
    }

    #[test]
    fn extend_and_iterate() {
        let mut batch = SampleBatch::empty();
        batch.extend((0..3).map(|i| sample(i, i)));
        batch.push(sample(3, 3));
        assert_eq!(batch.iter().count(), 4);
        let collected: Vec<_> = (&batch).into_iter().map(|s| s.session_id.raw()).collect();
        assert_eq!(collected, vec![0, 1, 2, 3]);
        let owned: Vec<_> = batch.into_iter().collect();
        assert_eq!(owned.len(), 4);
    }
}
