//! Columnar batches: flat, allocation-light row storage for the hot
//! fill→convert path.
//!
//! A [`ColumnarBatch`] stores what a `Vec<Sample>` stores, but flat: one
//! buffer per header column (sessions, requests, timestamps, labels), one
//! flat row-major dense buffer, and one jagged `(values, offsets)` pair per
//! sparse feature ([`SparseColumn`]). Where the row-wise representation pays
//! two-plus heap allocations per sample (and one more per sparse feature),
//! a columnar batch of any size owns a fixed number of buffers — which is
//! what lets the storage decoder write straight into it and the feature
//! converter read straight out of it without materializing intermediate
//! per-row `Vec`s.
//!
//! Conversion to and from row-wise form is lossless for *schema-shaped*
//! samples (every sample carrying exactly `dense_cols` dense values and
//! `sparse_cols` id lists — the shape every stored stripe decodes to).
//! Samples with fewer values are padded exactly like the storage encoder
//! pads them, so `from_samples` ∘ `to_samples` agrees with a storage
//! round trip.

use crate::error::DataError;
use crate::ids::{RequestId, SessionId, Timestamp};
use crate::sample::Sample;
use serde::{Deserialize, Serialize};

/// One sparse feature for a whole batch: a flat value buffer plus row
/// offsets (`offsets.len() == rows + 1`, `offsets[0] == 0`).
///
/// This is the same jagged layout `recd-core`'s `JaggedTensor` uses; it is
/// re-declared here (rather than imported) because `recd-data` sits below
/// `recd-core` in the crate graph.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SparseColumn {
    values: Vec<u64>,
    offsets: Vec<usize>,
}

impl SparseColumn {
    /// Creates an empty column with zero rows.
    pub fn new() -> Self {
        Self {
            values: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Creates an empty column with preallocated capacity.
    pub fn with_capacity(rows: usize, values: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        Self {
            values: Vec::with_capacity(values),
            offsets,
        }
    }

    /// Builds a column from a flat value buffer and per-row lengths, taking
    /// ownership of `values` without copying it (the storage decoder's
    /// zero-copy entry point).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ColumnarInvariant`] if the lengths do not sum to
    /// `values.len()`.
    pub fn from_lengths(values: Vec<u64>, lengths: &[u64]) -> Result<Self, DataError> {
        let mut offsets = Vec::with_capacity(lengths.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for &len in lengths {
            total += len as usize;
            offsets.push(total);
        }
        if total != values.len() {
            return Err(DataError::ColumnarInvariant {
                reason: format!(
                    "sparse lengths sum to {total} but the value buffer holds {}",
                    values.len()
                ),
            });
        }
        Ok(Self { values, offsets })
    }

    /// Builds a column from raw parts.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ColumnarInvariant`] if the offsets slice is
    /// empty, does not start at zero, is decreasing, or does not end at
    /// `values.len()`.
    pub fn from_parts(values: Vec<u64>, offsets: Vec<usize>) -> Result<Self, DataError> {
        let column = Self { values, offsets };
        column.check_invariants()?;
        Ok(column)
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of values across all rows.
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.row_count()`.
    pub fn row(&self, i: usize) -> &[u64] {
        &self.values[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Length of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.row_count()`.
    pub fn row_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Borrows the flat value buffer.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Borrows the offsets slice (`row_count() + 1` entries).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Appends one row.
    pub fn push_row(&mut self, row: &[u64]) {
        self.values.extend_from_slice(row);
        self.offsets.push(self.values.len());
    }

    /// Appends every row of `other`.
    pub fn append(&mut self, other: &SparseColumn) {
        let base = self.values.len();
        self.values.extend_from_slice(&other.values);
        self.offsets
            .extend(other.offsets[1..].iter().map(|&o| base + o));
    }

    /// Removes every row, keeping the buffer capacity for reuse.
    pub fn clear(&mut self) {
        self.values.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// Mutable access to the raw `(values, offsets)` buffers, for decoders
    /// that refill a recycled column in place.
    ///
    /// The caller must restore the jagged invariants (offsets start at zero,
    /// are non-decreasing, and end at the value count) before the column is
    /// read again; [`ColumnarBatch::check_invariants`] validates them.
    pub fn parts_mut(&mut self) -> (&mut Vec<u64>, &mut Vec<usize>) {
        (&mut self.values, &mut self.offsets)
    }

    /// Validates the jagged invariants, as [`SparseColumn::from_parts`]
    /// does on construction.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ColumnarInvariant`] describing the violation.
    pub fn check_invariants(&self) -> Result<(), DataError> {
        if self.offsets.first() != Some(&0) {
            return Err(DataError::ColumnarInvariant {
                reason: "sparse offsets must start at zero".to_string(),
            });
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(DataError::ColumnarInvariant {
                reason: "sparse offsets must be non-decreasing".to_string(),
            });
        }
        if *self.offsets.last().expect("checked non-empty") != self.values.len() {
            return Err(DataError::ColumnarInvariant {
                reason: "sparse offsets must end at the value buffer length".to_string(),
            });
        }
        Ok(())
    }
}

/// A batch of samples in columnar form: flat header/label/dense buffers plus
/// one [`SparseColumn`] per sparse feature, in schema order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ColumnarBatch {
    sessions: Vec<u64>,
    requests: Vec<u64>,
    timestamps: Vec<u64>,
    labels: Vec<f32>,
    /// Row-major `[rows, dense_cols]` dense values. The storage decoder
    /// fills this column-by-column (strided writes into the one flat
    /// allocation); consumers read it row-by-row or move the whole buffer.
    dense: Vec<f32>,
    dense_cols: usize,
    sparse: Vec<SparseColumn>,
}

impl ColumnarBatch {
    /// Creates an empty batch with the given column shape.
    pub fn new(dense_cols: usize, sparse_cols: usize) -> Self {
        Self {
            sessions: Vec::new(),
            requests: Vec::new(),
            timestamps: Vec::new(),
            labels: Vec::new(),
            dense: Vec::new(),
            dense_cols,
            sparse: (0..sparse_cols).map(|_| SparseColumn::new()).collect(),
        }
    }

    /// Creates an empty batch with preallocated row capacity.
    pub fn with_capacity(dense_cols: usize, sparse_cols: usize, rows: usize) -> Self {
        Self {
            sessions: Vec::with_capacity(rows),
            requests: Vec::with_capacity(rows),
            timestamps: Vec::with_capacity(rows),
            labels: Vec::with_capacity(rows),
            dense: Vec::with_capacity(rows * dense_cols),
            dense_cols,
            sparse: (0..sparse_cols)
                .map(|_| SparseColumn::with_capacity(rows, 0))
                .collect(),
        }
    }

    /// Builds a batch from raw column buffers, validating that every column
    /// agrees on the row count.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ColumnarInvariant`] describing the first
    /// mismatched column.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        sessions: Vec<u64>,
        requests: Vec<u64>,
        timestamps: Vec<u64>,
        labels: Vec<f32>,
        dense: Vec<f32>,
        dense_cols: usize,
        sparse: Vec<SparseColumn>,
    ) -> Result<Self, DataError> {
        let batch = Self {
            sessions,
            requests,
            timestamps,
            labels,
            dense,
            dense_cols,
            sparse,
        };
        batch.check_invariants()?;
        Ok(batch)
    }

    /// Converts row-wise samples into columnar form. Samples with fewer than
    /// `dense_cols` dense values or `sparse_cols` id lists are zero-padded /
    /// empty-padded, exactly as the storage encoder pads them; extra values
    /// are ignored.
    pub fn from_samples(samples: &[Sample], dense_cols: usize, sparse_cols: usize) -> Self {
        let mut batch = Self::with_capacity(dense_cols, sparse_cols, samples.len());
        for sample in samples {
            batch.push_sample(sample);
        }
        batch
    }

    /// Appends one row-wise sample (padding/truncating to the batch shape).
    pub fn push_sample(&mut self, sample: &Sample) {
        self.sessions.push(sample.session_id.raw());
        self.requests.push(sample.request_id.raw());
        self.timestamps.push(sample.timestamp.as_millis());
        self.labels.push(sample.label);
        for c in 0..self.dense_cols {
            self.dense.push(sample.dense.get(c).copied().unwrap_or(0.0));
        }
        for (f, col) in self.sparse.iter_mut().enumerate() {
            col.push_row(sample.sparse.get(f).map(Vec::as_slice).unwrap_or(&[]));
        }
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns true if the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of dense feature columns.
    pub fn dense_cols(&self) -> usize {
        self.dense_cols
    }

    /// Number of sparse feature columns.
    pub fn sparse_cols(&self) -> usize {
        self.sparse.len()
    }

    /// Session id of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn session_id(&self, i: usize) -> SessionId {
        SessionId::new(self.sessions[i])
    }

    /// Request id of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn request_id(&self, i: usize) -> RequestId {
        RequestId::new(self.requests[i])
    }

    /// Timestamp of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn timestamp(&self, i: usize) -> Timestamp {
        Timestamp::from_millis(self.timestamps[i])
    }

    /// Labels in batch order.
    pub fn labels(&self) -> &[f32] {
        &self.labels
    }

    /// The flat row-major dense buffer (`len() * dense_cols()` values).
    pub fn dense_values(&self) -> &[f32] {
        &self.dense
    }

    /// Dense row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn dense_row(&self, i: usize) -> &[f32] {
        &self.dense[i * self.dense_cols..(i + 1) * self.dense_cols]
    }

    /// The sparse column of feature `f` (schema order), if present.
    pub fn sparse_column(&self, f: usize) -> Option<&SparseColumn> {
        self.sparse.get(f)
    }

    /// All sparse columns in schema order.
    pub fn sparse_columns(&self) -> &[SparseColumn] {
        &self.sparse
    }

    /// The id list of sparse feature `f` at row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `f >= self.sparse_cols()` or `i >= self.len()`.
    pub fn sparse_row(&self, f: usize, i: usize) -> &[u64] {
        self.sparse[f].row(i)
    }

    /// Total number of sparse ids across all features and rows.
    pub fn sparse_value_count(&self) -> usize {
        self.sparse.iter().map(SparseColumn::value_count).sum()
    }

    /// Approximate in-memory payload of the batch, with the same per-row
    /// accounting as [`Sample::payload_bytes`] (28-byte header, 4 bytes per
    /// dense value, 8 bytes per sparse id).
    pub fn payload_bytes(&self) -> usize {
        const HEADER: usize = 8 + 8 + 8 + 4;
        self.len() * HEADER + self.dense.len() * 4 + self.sparse_value_count() * 8
    }

    /// Removes every row, keeping all buffer capacity and the column shape —
    /// the reset a recycled batch gets before it is refilled.
    pub fn clear(&mut self) {
        self.sessions.clear();
        self.requests.clear();
        self.timestamps.clear();
        self.labels.clear();
        self.dense.clear();
        for col in &mut self.sparse {
            col.clear();
        }
    }

    /// Clears the batch and adjusts it to the given column shape, reusing
    /// existing buffers where the shape already matches.
    pub fn reset(&mut self, dense_cols: usize, sparse_cols: usize) {
        self.clear();
        self.dense_cols = dense_cols;
        self.sparse.resize_with(sparse_cols, SparseColumn::new);
    }

    /// Mutable views of every column buffer, for decoders that refill a
    /// recycled batch in place.
    ///
    /// The caller must leave every column at one common row count (and every
    /// sparse column with valid offsets) before the batch is read again;
    /// [`ColumnarBatch::check_invariants`] validates exactly that.
    pub fn columns_mut(&mut self) -> ColumnsMut<'_> {
        ColumnsMut {
            sessions: &mut self.sessions,
            requests: &mut self.requests,
            timestamps: &mut self.timestamps,
            labels: &mut self.labels,
            dense: &mut self.dense,
            dense_cols: self.dense_cols,
            sparse: &mut self.sparse,
        }
    }

    /// Validates that every column agrees on the row count and every sparse
    /// column satisfies its jagged invariants — the same checks
    /// [`ColumnarBatch::from_parts`] performs on construction.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ColumnarInvariant`] describing the first
    /// violation.
    pub fn check_invariants(&self) -> Result<(), DataError> {
        let rows = self.labels.len();
        if self.sessions.len() != rows
            || self.requests.len() != rows
            || self.timestamps.len() != rows
        {
            return Err(DataError::ColumnarInvariant {
                reason: format!(
                    "header columns disagree on row count ({}/{}/{} vs {rows} labels)",
                    self.sessions.len(),
                    self.requests.len(),
                    self.timestamps.len()
                ),
            });
        }
        if self.dense.len() != rows * self.dense_cols {
            return Err(DataError::ColumnarInvariant {
                reason: format!(
                    "dense buffer holds {} values but {rows} rows x {} cols were declared",
                    self.dense.len(),
                    self.dense_cols
                ),
            });
        }
        for (i, col) in self.sparse.iter().enumerate() {
            col.check_invariants()?;
            if col.row_count() != rows {
                return Err(DataError::ColumnarInvariant {
                    reason: format!(
                        "sparse column {i} has {} rows but the batch has {rows}",
                        col.row_count()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Appends every row of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ColumnarInvariant`] if the two batches disagree
    /// on dense or sparse column counts.
    pub fn append(&mut self, other: &ColumnarBatch) -> Result<(), DataError> {
        if other.dense_cols != self.dense_cols || other.sparse.len() != self.sparse.len() {
            return Err(DataError::ColumnarInvariant {
                reason: format!(
                    "cannot append a {}x{} batch onto a {}x{} batch",
                    other.dense_cols,
                    other.sparse.len(),
                    self.dense_cols,
                    self.sparse.len()
                ),
            });
        }
        self.sessions.extend_from_slice(&other.sessions);
        self.requests.extend_from_slice(&other.requests);
        self.timestamps.extend_from_slice(&other.timestamps);
        self.labels.extend_from_slice(&other.labels);
        self.dense.extend_from_slice(&other.dense);
        for (dst, src) in self.sparse.iter_mut().zip(&other.sparse) {
            dst.append(src);
        }
        Ok(())
    }

    /// Appends row `row` of `src`. The batches must share a column shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ or `row >= src.len()`.
    pub fn push_row_from(&mut self, src: &ColumnarBatch, row: usize) {
        assert_eq!(self.dense_cols, src.dense_cols, "dense shape mismatch");
        assert_eq!(self.sparse.len(), src.sparse.len(), "sparse shape mismatch");
        self.sessions.push(src.sessions[row]);
        self.requests.push(src.requests[row]);
        self.timestamps.push(src.timestamps[row]);
        self.labels.push(src.labels[row]);
        self.dense.extend_from_slice(src.dense_row(row));
        for (dst, col) in self.sparse.iter_mut().zip(&src.sparse) {
            dst.push_row(col.row(row));
        }
    }

    /// Copies rows `range` into a new batch (flat slice copies, no per-row
    /// allocation).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice_rows(&self, range: std::ops::Range<usize>) -> ColumnarBatch {
        let rows = range.end - range.start;
        let mut out = ColumnarBatch::with_capacity(self.dense_cols, self.sparse.len(), rows);
        out.sessions
            .extend_from_slice(&self.sessions[range.clone()]);
        out.requests
            .extend_from_slice(&self.requests[range.clone()]);
        out.timestamps
            .extend_from_slice(&self.timestamps[range.clone()]);
        out.labels.extend_from_slice(&self.labels[range.clone()]);
        out.dense.extend_from_slice(
            &self.dense[range.start * self.dense_cols..range.end * self.dense_cols],
        );
        for (dst, col) in out.sparse.iter_mut().zip(&self.sparse) {
            let start = col.offsets[range.start];
            let end = col.offsets[range.end];
            dst.values.extend_from_slice(&col.values[start..end]);
            dst.offsets.extend(
                col.offsets[range.start + 1..=range.end]
                    .iter()
                    .map(|&o| o - start),
            );
        }
        out
    }

    /// Materializes the batch back into row-wise samples.
    pub fn to_samples(&self) -> Vec<Sample> {
        (0..self.len())
            .map(|i| {
                Sample::builder(self.session_id(i), self.request_id(i), self.timestamp(i))
                    .label(self.labels[i])
                    .dense(self.dense_row(i).to_vec())
                    .sparse(self.sparse.iter().map(|col| col.row(i).to_vec()).collect())
                    .build()
            })
            .collect()
    }

    /// Consumes the batch, materializing row-wise samples.
    pub fn into_samples(self) -> Vec<Sample> {
        self.to_samples()
    }
}

/// Mutable views of a [`ColumnarBatch`]'s column buffers, produced by
/// [`ColumnarBatch::columns_mut`] for in-place decoders.
#[derive(Debug)]
pub struct ColumnsMut<'a> {
    /// Session-id column.
    pub sessions: &'a mut Vec<u64>,
    /// Request-id column.
    pub requests: &'a mut Vec<u64>,
    /// Timestamp column (milliseconds).
    pub timestamps: &'a mut Vec<u64>,
    /// Label column.
    pub labels: &'a mut Vec<f32>,
    /// Flat row-major dense buffer (`rows * dense_cols` values).
    pub dense: &'a mut Vec<f32>,
    /// Declared dense width the refilled buffer must honor.
    pub dense_cols: usize,
    /// Sparse columns in schema order.
    pub sparse: &'a mut [SparseColumn],
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(session: u64, request: u64, dense: Vec<f32>, sparse: Vec<Vec<u64>>) -> Sample {
        Sample::builder(
            SessionId::new(session),
            RequestId::new(request),
            Timestamp::from_millis(request * 10),
        )
        .label((request % 2) as f32)
        .dense(dense)
        .sparse(sparse)
        .build()
    }

    fn shaped_samples() -> Vec<Sample> {
        vec![
            sample(1, 0, vec![0.5, 1.0], vec![vec![1, 2], vec![]]),
            sample(1, 1, vec![0.25, 2.0], vec![vec![1, 2], vec![9]]),
            sample(2, 2, vec![0.0, 3.0], vec![vec![7], vec![8, 8, 8]]),
        ]
    }

    #[test]
    fn round_trip_is_lossless_for_shaped_samples() {
        let samples = shaped_samples();
        let batch = ColumnarBatch::from_samples(&samples, 2, 2);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.dense_cols(), 2);
        assert_eq!(batch.sparse_cols(), 2);
        assert_eq!(batch.sparse_row(1, 2), &[8, 8, 8]);
        assert_eq!(batch.dense_row(1), &[0.25, 2.0]);
        assert_eq!(batch.session_id(2), SessionId::new(2));
        assert_eq!(batch.to_samples(), samples);
    }

    #[test]
    fn from_samples_pads_like_the_storage_encoder() {
        let ragged = vec![sample(3, 7, vec![1.0], vec![vec![5]])];
        let batch = ColumnarBatch::from_samples(&ragged, 2, 2);
        let back = &batch.to_samples()[0];
        assert_eq!(back.dense, vec![1.0, 0.0]);
        assert_eq!(back.sparse, vec![vec![5], vec![]]);
    }

    #[test]
    fn append_and_slice_preserve_rows() {
        let samples = shaped_samples();
        let mut a = ColumnarBatch::from_samples(&samples[..1], 2, 2);
        let b = ColumnarBatch::from_samples(&samples[1..], 2, 2);
        a.append(&b).unwrap();
        assert_eq!(a.to_samples(), samples);
        assert_eq!(a.slice_rows(1..3).to_samples(), samples[1..].to_vec());
        assert!(a.slice_rows(1..1).is_empty());

        let mismatched = ColumnarBatch::new(1, 2);
        let mut target = ColumnarBatch::new(2, 2);
        assert!(matches!(
            target.append(&mismatched),
            Err(DataError::ColumnarInvariant { .. })
        ));
    }

    #[test]
    fn push_row_from_copies_single_rows() {
        let samples = shaped_samples();
        let src = ColumnarBatch::from_samples(&samples, 2, 2);
        let mut dst = ColumnarBatch::new(2, 2);
        dst.push_row_from(&src, 2);
        dst.push_row_from(&src, 0);
        let back = dst.to_samples();
        assert_eq!(back[0], samples[2]);
        assert_eq!(back[1], samples[0]);
    }

    #[test]
    fn sparse_column_from_lengths_validates() {
        let col = SparseColumn::from_lengths(vec![1, 2, 3], &[2, 0, 1]).unwrap();
        assert_eq!(col.row_count(), 3);
        assert_eq!(col.row(0), &[1, 2]);
        assert_eq!(col.row(1), &[] as &[u64]);
        assert_eq!(col.row(2), &[3]);
        assert_eq!(col.row_len(2), 1);
        assert!(matches!(
            SparseColumn::from_lengths(vec![1, 2], &[3]),
            Err(DataError::ColumnarInvariant { .. })
        ));
    }

    #[test]
    fn sparse_column_from_parts_validates() {
        assert!(SparseColumn::from_parts(vec![1, 2], vec![0, 1, 2]).is_ok());
        for bad in [vec![], vec![1, 2], vec![0, 2, 1], vec![0, 1]] {
            assert!(matches!(
                SparseColumn::from_parts(vec![1, 2], bad),
                Err(DataError::ColumnarInvariant { .. })
            ));
        }
    }

    #[test]
    fn from_parts_validates_row_counts() {
        let ok = ColumnarBatch::from_parts(
            vec![1],
            vec![2],
            vec![3],
            vec![0.0],
            vec![1.0, 2.0],
            2,
            vec![SparseColumn::from_lengths(vec![5], &[1]).unwrap()],
        );
        assert!(ok.is_ok());
        let bad_header =
            ColumnarBatch::from_parts(vec![1, 2], vec![2], vec![3], vec![0.0], vec![], 0, vec![]);
        assert!(matches!(
            bad_header,
            Err(DataError::ColumnarInvariant { .. })
        ));
        let bad_dense =
            ColumnarBatch::from_parts(vec![1], vec![2], vec![3], vec![0.0], vec![1.0], 2, vec![]);
        assert!(matches!(
            bad_dense,
            Err(DataError::ColumnarInvariant { .. })
        ));
        let bad_sparse = ColumnarBatch::from_parts(
            vec![1],
            vec![2],
            vec![3],
            vec![0.0],
            vec![],
            0,
            vec![SparseColumn::new()],
        );
        assert!(matches!(
            bad_sparse,
            Err(DataError::ColumnarInvariant { .. })
        ));
    }

    #[test]
    fn payload_accounting_matches_row_wise() {
        let samples = shaped_samples();
        let batch = ColumnarBatch::from_samples(&samples, 2, 2);
        let row_wise: usize = samples.iter().map(Sample::payload_bytes).sum();
        assert_eq!(batch.payload_bytes(), row_wise);
        assert_eq!(
            batch.sparse_value_count(),
            samples
                .iter()
                .map(Sample::sparse_value_count)
                .sum::<usize>()
        );
    }
}
