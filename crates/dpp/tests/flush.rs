//! `DppHandle::flush_partition` coverage: interleaved submits and flushes
//! must deliver every pre-flush batch to a trainer endpoint before the call
//! returns, partial shard accumulators must flush as short batches, and the
//! idle / already-drained edge cases must return immediately.

use recd_core::DataLoaderConfig;
use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
use recd_dpp::{DppConfig, DppService, ShardPolicy, TrainerAssignPolicy};
use recd_etl::cluster_by_session;
use recd_reader::{PreprocessPipeline, ReaderConfig};
use recd_storage::{StoredPartition, TableStore, TectonicSim};
use std::sync::Arc;

struct Fixture {
    schema: recd_data::Schema,
    store: Arc<TableStore>,
    partition: StoredPartition,
    rows: usize,
}

fn fixture() -> Fixture {
    let generator = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
    let partition = generator.generate_partition();
    let samples = cluster_by_session(&partition.samples);
    let store = Arc::new(TableStore::new(TectonicSim::new(4), 16, 1));
    let (stored, _) = store.land_partition(&partition.schema, "t", 0, &samples);
    Fixture {
        schema: partition.schema,
        store,
        partition: stored,
        rows: samples.len(),
    }
}

fn config(f: &Fixture) -> DppConfig {
    DppConfig::new(ReaderConfig::new(
        64,
        DataLoaderConfig::from_schema(&f.schema),
    ))
    .with_policy(ShardPolicy::SessionAffine)
    .with_shards(3)
    .with_pipeline_factory(|| PreprocessPipeline::standard(1 << 20, 64))
}

/// Interleaved submits and flushes in fan-out mode: when each
/// `flush_partition` returns, every sample submitted before it has been
/// delivered onto some trainer lane — no batch from a flushed partition is
/// still in flight.
#[test]
fn every_pre_flush_batch_is_delivered_before_flush_returns() {
    let f = fixture();
    let config = config(&f)
        .with_trainers(2)
        .with_assign_policy(TrainerAssignPolicy::ShardPinned);
    let mut handle = DppService::start(config, Arc::clone(&f.store), f.schema.clone());
    // Trainers must keep consuming while a flush waits (a full lane cannot
    // accept the flushed batches).
    let consumers: Vec<_> = handle
        .take_trainers()
        .into_iter()
        .map(|trainer| std::thread::spawn(move || trainer.drain().len()))
        .collect();

    let snapshot_source = handle.snapshot_source();
    for round in 1..=3 {
        handle.submit_partition(&f.partition);
        assert!(handle.flush_partition(), "flush must complete");
        let snapshot = snapshot_source.snapshot();
        let delivered: u64 = snapshot.trainers.iter().map(|t| t.delivered_samples).sum();
        assert_eq!(
            delivered as usize,
            round * f.rows,
            "round {round}: every pre-flush sample must already sit at a trainer endpoint"
        );
        // The flush cut partial accumulators, so the routed/emitted totals
        // agree exactly — nothing is stranded mid-pipeline.
        assert_eq!(snapshot.samples_out as usize, round * f.rows);
    }

    let output = handle.finish().expect("clean run");
    let consumed: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
    assert_eq!(consumed, output.report.batches);
    // One barrier per flush crossed the phase pipeline, and at least one
    // shard accumulator held a partial batch when it did.
    assert_eq!(output.report.reader_metrics.barrier_flushes, 3);
    assert!(output.report.reader_metrics.flushed_partial_batches > 0);
}

/// The same guarantee in collect mode (no trainers): the barrier resolves
/// once the sink has collected everything emitted before it.
#[test]
fn flush_works_in_collect_mode_and_cuts_partial_batches() {
    let f = fixture();
    let mut handle = DppService::start(config(&f), Arc::clone(&f.store), f.schema.clone());
    handle.submit_partition(&f.partition);
    assert!(handle.flush_partition());
    let mid = handle.snapshot();
    assert_eq!(mid.samples_out as usize, f.rows);

    // A second partition after the flush: its rows land in fresh batches.
    handle.submit_partition(&f.partition);
    let output = handle.finish().expect("clean run");
    assert_eq!(output.report.samples, 2 * f.rows);
    assert_eq!(
        output.batches.iter().map(|b| b.batch_size).sum::<usize>(),
        2 * f.rows
    );

    // Without any flush the same stream coalesces across the partition
    // boundary, so the flushed run has at least as many (shorter) batches.
    let mut unflushed = DppService::start(config(&f), Arc::clone(&f.store), f.schema.clone());
    unflushed.submit_partition(&f.partition);
    unflushed.submit_partition(&f.partition);
    let baseline = unflushed.finish().expect("clean run");
    assert!(
        output.batches.len() > baseline.batches.len(),
        "a mid-stream flush must cut partial batches ({} vs {})",
        output.batches.len(),
        baseline.batches.len()
    );
}

/// Edge cases: flushing an idle service (nothing ever submitted), flushing
/// twice in a row, and flushing after everything already drained must all
/// return promptly and truthfully.
#[test]
fn flush_while_idle_and_after_drain_return_immediately() {
    let f = fixture();
    let config = config(&f).with_trainers(2);
    let mut handle = DppService::start(config, Arc::clone(&f.store), f.schema.clone());
    let consumers: Vec<_> = handle
        .take_trainers()
        .into_iter()
        .map(|trainer| std::thread::spawn(move || trainer.drain().len()))
        .collect();

    // Flush-while-idle: no work was ever submitted.
    assert!(handle.flush_partition(), "idle flush must complete");
    assert!(
        handle.flush_partition(),
        "repeated idle flush must complete"
    );
    assert_eq!(handle.snapshot().samples_out, 0);

    // Flush after the stream already drained: the barrier crosses an empty
    // pipeline.
    handle.submit_partition(&f.partition);
    assert!(handle.flush_partition());
    // Everything is already delivered; a second flush has nothing to wait
    // for and a third keeps the invariant.
    assert!(handle.flush_partition());
    assert!(handle.flush_partition());
    let snapshot = handle.snapshot();
    let delivered: u64 = snapshot.trainers.iter().map(|t| t.delivered_samples).sum();
    assert_eq!(delivered as usize, f.rows);

    let output = handle.finish().expect("clean run");
    let consumed: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
    assert_eq!(consumed, output.report.batches);
    // Five barriers crossed; only the post-submit one found partial
    // accumulators to cut.
    assert_eq!(output.report.reader_metrics.barrier_flushes, 5);
}

/// A conversion failure must not leave a hole in a shard's sequence stream:
/// the skip marker keeps the resequencer's cursor moving, so a flush over an
/// all-errors run still returns, the drain completes, and the errors are
/// reported — nothing hangs and nothing panics.
#[test]
fn conversion_errors_do_not_wedge_the_resequencer_or_flush() {
    let f = fixture();
    // Every conversion fails: the dataloader names one feature both as a
    // plain KJT feature and inside a dedup group.
    let broken = recd_core::DataLoaderConfig::new()
        .with_kjt_features([recd_data::FeatureId::new(0)])
        .with_dedup_group([recd_data::FeatureId::new(0)]);
    let config = DppConfig::new(ReaderConfig::new(64, broken))
        .with_policy(ShardPolicy::SessionAffine)
        .with_shards(3)
        .with_trainers(2);
    let mut handle = DppService::start(config, Arc::clone(&f.store), f.schema.clone());
    let consumers: Vec<_> = handle
        .take_trainers()
        .into_iter()
        .map(|trainer| std::thread::spawn(move || trainer.drain().len()))
        .collect();
    handle.submit_partition(&f.partition);
    // The barrier's cuts cover sequence slots that all failed; the skip
    // markers must satisfy them.
    assert!(
        handle.flush_partition(),
        "flush must resolve across error holes"
    );
    let err = handle.finish().expect_err("all conversions failed");
    assert!(!err.errors.is_empty());
    assert!(err.errors.iter().all(|e| e.contains("convert")));
    assert_eq!(err.output.report.samples, 0);
    let consumed: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
    assert_eq!(consumed, 0, "no batch survives an all-errors run");
}
