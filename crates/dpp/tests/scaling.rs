//! Deterministic dynamic-scaling harness: a `SlowStore` (shared-latency
//! `TectonicSim`) injects fill pressure, and a paused `ManualClock` hands
//! the scaling controller exactly one evaluation per step, so grow/shrink
//! decisions happen when the test says so — never on a wall-clock race.

use recd_core::DataLoaderConfig;
use recd_datagen::{DatasetGenerator, WorkloadConfig, WorkloadPreset};
use recd_dpp::{DppConfig, DppService, ManualClock, ScalerConfig, ShardPolicy};
use recd_etl::cluster_by_session;
use recd_reader::{PreprocessPipeline, ReaderConfig};
use recd_storage::{StoredPartition, TableStore, TectonicSim};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The storage-pressure lever: a handle on the blob store's shared fetch
/// latency. While throttled, every fill worker's decode stalls on the
/// simulated RPC, so the input queue backs up and the controller sees
/// sustained pressure; clearing it lets the pipeline drain.
struct SlowStore {
    blob: TectonicSim,
}

impl SlowStore {
    fn throttle(&self, latency: Duration) {
        self.blob.set_get_latency(latency);
    }

    fn clear(&self) {
        self.blob.set_get_latency(Duration::ZERO);
    }
}

struct Fixture {
    schema: recd_data::Schema,
    store: Arc<TableStore>,
    partition: StoredPartition,
    rows: usize,
    slow: SlowStore,
}

fn fixture() -> Fixture {
    let generator = DatasetGenerator::new(WorkloadConfig::preset(WorkloadPreset::Tiny));
    let partition = generator.generate_partition();
    let samples = cluster_by_session(&partition.samples);
    let blob = TectonicSim::new(4);
    let slow = SlowStore { blob: blob.clone() };
    let store = Arc::new(TableStore::new(blob, 16, 1));
    let (stored, _) = store.land_partition(&partition.schema, "t", 0, &samples);
    assert!(stored.files.len() >= 8, "fixture must span many files");
    Fixture {
        schema: partition.schema,
        store,
        partition: stored,
        rows: samples.len(),
        slow,
    }
}

const QUEUE_DEPTH: usize = 4;
const MIN_FILL: usize = 1;
const MAX_FILL: usize = 3;
const MIN_COMPUTE: usize = 1;
const MAX_COMPUTE: usize = 2;

fn base_config(f: &Fixture) -> DppConfig {
    DppConfig::new(ReaderConfig::new(
        64,
        DataLoaderConfig::from_schema(&f.schema),
    ))
    .with_policy(ShardPolicy::SessionAffine)
    .with_shards(2)
    .with_fill_workers(1)
    .with_compute_workers(1)
    .with_queue_depth(QUEUE_DEPTH)
    .with_pipeline_factory(|| PreprocessPipeline::standard(1 << 20, 64))
}

/// Polls `predicate` until it holds or `timeout` elapses.
fn wait_until(timeout: Duration, mut predicate: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if predicate() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    predicate()
}

const WAIT: Duration = Duration::from_secs(10);

/// The acceptance criterion: under injected fill latency the pool grows (at
/// least one observed grow event), after the pressure clears it shrinks back
/// (at least one shrink event), the `[min, max]` bounds are never violated,
/// and the elastic run's output is byte-identical to a fixed-pool run.
#[test]
fn workers_scale_up_under_pressure_then_back_down_within_bounds() {
    let f = fixture();
    let rounds = 6;

    // Fixed-pool reference first (no latency, no scaling): scaling must not
    // change what is emitted, only how fast.
    let mut fixed = DppService::start(base_config(&f), Arc::clone(&f.store), f.schema.clone());
    for _ in 0..rounds {
        fixed.submit_partition(&f.partition);
    }
    let fixed_out = fixed.finish().expect("clean fixed-pool run");

    // Elastic run under a throttled store and a paused clock.
    f.slow.throttle(Duration::from_millis(2));
    let clock = Arc::new(ManualClock::new());
    let scaling = ScalerConfig::bounds(1, 1)
        .with_fill_bounds(MIN_FILL, MAX_FILL)
        .with_compute_bounds(MIN_COMPUTE, MAX_COMPUTE)
        .with_sustain_ticks(2)
        .with_clock(Arc::clone(&clock) as Arc<dyn recd_dpp::ScaleClock>);
    let config = base_config(&f).with_scaling(scaling);
    let mut handle = DppService::start(config, Arc::clone(&f.store), f.schema.clone());
    let source = handle.snapshot_source();

    let total_files = rounds * f.partition.files.len();
    // The feeder owns the handle: submissions block on backpressure, which
    // is exactly the sustained pressure the controller should see.
    let partition = f.partition.clone();
    let feeder = std::thread::spawn(move || {
        for _ in 0..rounds {
            handle.submit_partition(&partition);
        }
        handle
    });

    // Phase 1 — pressure: the single slow fill worker cannot keep up, so
    // the input queue saturates past the high watermark (ceil(0.75 * 4) = 3).
    assert!(
        wait_until(WAIT, || source.snapshot().input_queue_depth >= 3),
        "input queue must saturate under fill latency"
    );
    // Two sustained pressured samples trigger the first grow.
    assert!(clock.step() && clock.step());
    assert!(
        wait_until(WAIT, || source.snapshot().fill_workers_live >= 2),
        "fill pool must grow under sustained pressure"
    );
    // Keep sampling under pressure: growth must saturate at max_fill.
    for _ in 0..6 {
        assert!(clock.step());
    }
    let pressured = source.snapshot();
    assert!(
        pressured.fill_workers_live <= MAX_FILL,
        "fill pool exceeded its max bound: {}",
        pressured.fill_workers_live
    );
    assert!(pressured.scale_ups >= 1);

    // Phase 2 — relief: clear the latency, let everything drain.
    f.slow.clear();
    let mut handle = feeder.join().expect("feeder");
    assert!(
        wait_until(WAIT, || {
            let s = source.snapshot();
            s.files_filled as usize == total_files && s.input_queue_depth == 0
        }),
        "pipeline must drain once the latency clears"
    );
    // Sustained idle samples walk the pool back down to min, one retirement
    // per pair of ticks, and never below the floor.
    for _ in 0..10 {
        assert!(clock.step());
    }
    assert!(
        wait_until(WAIT, || source.snapshot().fill_workers_live == MIN_FILL),
        "fill pool must shrink back to min once pressure clears"
    );
    let relieved = source.snapshot();
    assert!(relieved.scale_downs >= 1);
    assert!(relieved.fill_workers_live >= MIN_FILL);

    // A post-drain flush then finish: the elastic run must emit exactly what
    // the fixed-pool run emitted.
    assert!(handle.flush_partition(), "flush across a scaled pipeline");
    let out = handle.finish().expect("clean elastic run");

    assert_eq!(out.report.samples, rounds * f.rows);
    assert_eq!(out.batches.len(), fixed_out.batches.len());
    for (i, (elastic, fixed)) in out.batches.iter().zip(&fixed_out.batches).enumerate() {
        assert_eq!(elastic, fixed, "batch {i} diverged under dynamic scaling");
    }

    let events = &out.report.scale_events;
    assert!(
        events.iter().any(|e| e.pool == "fill" && e.is_grow()),
        "must record at least one observed grow event"
    );
    assert!(
        events.iter().any(|e| e.pool == "fill" && !e.is_grow()),
        "must record at least one observed shrink event"
    );
    for event in events {
        let (min, max) = match event.pool.as_str() {
            "fill" => (MIN_FILL, MAX_FILL),
            "compute" => (MIN_COMPUTE, MAX_COMPUTE),
            other => panic!("unknown pool in event: {other}"),
        };
        assert!(
            (min..=max).contains(&event.from) && (min..=max).contains(&event.to),
            "scale event out of bounds: {event:?}"
        );
    }
    assert!(out.report.peak_fill_workers >= 2);
    assert!(out.report.peak_fill_workers <= MAX_FILL);
    assert!(out.report.peak_compute_workers <= MAX_COMPUTE);

    // The batch pool shrank along with the pools: its capacity started
    // sized for the maximum population and scale-downs reduced it.
    let initial_capacity = QUEUE_DEPTH * 2 + 2 + MAX_FILL + MAX_COMPUTE;
    assert!(
        out.report.batch_pool.capacity < initial_capacity,
        "batch pool capacity must shrink on scale-down ({} vs initial {})",
        out.report.batch_pool.capacity,
        initial_capacity
    );
}

/// Without a scaling policy the pools stay exactly as configured and no
/// events are recorded.
#[test]
fn scaling_disabled_keeps_pools_fixed() {
    let f = fixture();
    let mut handle = DppService::start(
        base_config(&f).with_fill_workers(2).with_compute_workers(2),
        Arc::clone(&f.store),
        f.schema.clone(),
    );
    handle.submit_partition(&f.partition);
    let mid = handle.snapshot();
    assert_eq!(mid.fill_workers_live, 2);
    assert_eq!(mid.compute_workers_live, 2);
    let out = handle.finish().expect("clean run");
    assert!(out.report.scale_events.is_empty());
    assert_eq!(out.report.peak_fill_workers, 2);
    assert_eq!(out.report.peak_compute_workers, 2);
}

/// Initial worker counts outside the scaling bounds are clamped into them
/// at start.
#[test]
fn initial_workers_are_clamped_into_scaling_bounds() {
    let f = fixture();
    let scaling = ScalerConfig::bounds(2, 3).with_tick_period(Duration::from_secs(3600));
    let mut handle = DppService::start(
        // Configured below min (1) and above max (8): both clamp.
        base_config(&f)
            .with_fill_workers(1)
            .with_compute_workers(8)
            .with_scaling(scaling),
        Arc::clone(&f.store),
        f.schema.clone(),
    );
    let snapshot = handle.snapshot();
    assert_eq!(snapshot.fill_workers_live, 2, "clamped up to min");
    assert_eq!(snapshot.compute_workers_live, 3, "clamped down to max");
    handle.submit_partition(&f.partition);
    let out = handle.finish().expect("clean run");
    assert_eq!(out.report.samples, f.rows);
}
